//! Umbrella crate for the Tashkent reproduction.
//!
//! This package exists to host the repository-level integration tests
//! (`tests/cluster_integration.rs`, `tests/smoke.rs`) and the runnable
//! examples (`examples/*.rs`), and to offer a single convenience import for
//! downstream experiments.  All functionality lives in the workspace crates:
//!
//! * [`tashkent`] (re-exported at the root here) — the public cluster API.
//! * [`workloads`] — TPC-B-style generators and the closed-loop driver.
//!
//! Start from [`tashkent::Cluster`] and the `quickstart` example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tashkent;

/// Workload generators and the multi-threaded closed-loop driver.
pub use tashkent_workloads as workloads;
