//! Cross-crate integration tests: real workloads running on real clusters of
//! every system kind, checking convergence, conflict handling and recovery.

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, SystemKind, Value, Version};
use tashkent_workloads::{run_driver, AllUpdates, DriverConfig, TpcB, TpcWBrowsing, Workload};

fn small_cluster(system: SystemKind, replicas: usize) -> Arc<Cluster> {
    let mut config = ClusterConfig::small(system);
    config.replicas = replicas;
    Arc::new(Cluster::new(config).unwrap())
}

fn sharded_cluster(system: SystemKind, replicas: usize, shards: usize) -> Arc<Cluster> {
    let mut config = ClusterConfig::small(system);
    config.replicas = replicas;
    config.certifier_shards = shards;
    Arc::new(Cluster::new(config).unwrap())
}

#[test]
fn allupdates_driver_converges_on_every_system() {
    for system in SystemKind::ALL {
        let cluster = small_cluster(system, 3);
        let workload: Arc<dyn Workload> = Arc::new(AllUpdates::default());
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 3,
                duration: Duration::from_millis(250),
                seed: 11,
                ..DriverConfig::default()
            },
        );
        assert!(report.committed > 0, "system {system}");
        // AllUpdates clients write disjoint keys, so aborts are rare (they
        // can only come from scheduling races under heavy test parallelism,
        // never from data conflicts).
        assert!(
            report.aborted <= report.committed / 10,
            "system {system}: {} aborts vs {} commits",
            report.aborted,
            report.committed
        );
        // Every transaction the driver observed as committed was ordered by
        // the certifier (the certifier may have ordered a few more whose
        // responses raced with the end of the measurement window).
        assert!(
            cluster.system_version().value() >= report.committed,
            "system {system}"
        );
        // After syncing, every replica holds the full prefix.
        cluster.sync_all().unwrap();
        for (replica, version) in cluster.replica_versions() {
            assert_eq!(
                version,
                cluster.system_version(),
                "system {system} replica {replica}"
            );
        }
    }
}

#[test]
fn tpcb_conflicts_abort_but_invariants_hold_across_replicas() {
    for system in [SystemKind::TashkentMw, SystemKind::TashkentApi] {
        let cluster = small_cluster(system, 2);
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 2,
            tellers_per_branch: 2,
            accounts_per_branch: 100,
        });
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 2,
                duration: Duration::from_millis(200),
                seed: 13,
                ..DriverConfig::default()
            },
        );
        assert!(report.committed > 0, "system {system}");
        cluster.sync_all().unwrap();
        // The TPC-B invariant holds identically on every replica.
        let mut totals = Vec::new();
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let branches = db.table_id("branches").unwrap();
            let tx = db.begin();
            let total: i64 = tx
                .scan(branches)
                .unwrap()
                .iter()
                .filter_map(|(_, row)| row.get("balance").and_then(Value::as_int))
                .sum();
            tx.abort();
            totals.push(total);
        }
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "system {system}: {totals:?}");
    }
}

#[test]
fn sharded_cluster_converges_under_tpcb_load() {
    for shards in [2usize, 4] {
        let cluster = sharded_cluster(SystemKind::TashkentApi, 2, shards);
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 2,
            tellers_per_branch: 2,
            accounts_per_branch: 100,
        });
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 2,
                duration: Duration::from_millis(200),
                seed: 17,
                ..DriverConfig::default()
            },
        );
        assert!(report.committed > 0, "{shards} shards");
        cluster.sync_all().unwrap();
        // No lost or duplicated versions: the merged shard streams cover
        // exactly 1..=system_version.
        let system = cluster.system_version();
        let versions: Vec<u64> = cluster
            .certifier()
            .writesets_after(Version::ZERO)
            .iter()
            .map(|r| r.commit_version.value())
            .collect();
        assert_eq!(versions, (1..=system.value()).collect::<Vec<u64>>());
        // Replicas converge and the TPC-B invariant holds identically.
        let mut totals = Vec::new();
        for r in 0..cluster.replica_count() {
            assert_eq!(cluster.replica(r).version(), system, "{shards} shards");
            let db = cluster.replica(r).database();
            let branches = db.table_id("branches").unwrap();
            let tx = db.begin();
            let total: i64 = tx
                .scan(branches)
                .unwrap()
                .iter()
                .filter_map(|(_, row)| row.get("balance").and_then(Value::as_int))
                .sum();
            tx.abort();
            totals.push(total);
        }
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "{shards} shards: {totals:?}");
    }
}

#[test]
fn browsing_mix_runs_on_a_sharded_cluster() {
    let cluster = sharded_cluster(SystemKind::TashkentMw, 2, 2);
    let workload: Arc<dyn Workload> =
        Arc::new(TpcWBrowsing::new(Duration::from_millis(1)).with_catalogue(100, 20));
    workload.setup(&cluster);
    let report = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 3,
            duration: Duration::from_millis(250),
            seed: 23,
                ..DriverConfig::default()
            },
    );
    assert!(report.committed > 0);
    // Browsing mix: the vast majority of interactions are read-only and
    // never reach the certifier.
    assert!(report.read_only * 2 > report.committed, "{report:?}");
    cluster.sync_all().unwrap();
    let system = cluster.system_version();
    for (replica, version) in cluster.replica_versions() {
        assert_eq!(version, system, "replica {replica}");
    }
}

/// The crash-fault injection seed (ROADMAP): kill one node of one certifier
/// shard's replicated group *mid-load*, let the shard fail over, recover the
/// node via state transfer, and prove no commit was lost or reordered.
///
/// Promoted from PR 4's hand-rolled injector thread to a fixed-seed
/// [`FaultPlan`]: the plan generator (seed 0, certifier-only targeting)
/// draws exactly the original schedule — crash shard 1's current leader
/// mid-load, recover it later — and the invariant oracle now performs the
/// dense-stream, durable-log-agreement, durable-coverage and convergence
/// checks the test used to hand-roll.
#[test]
fn certifier_shard_node_crash_and_recovery_mid_load_loses_nothing() {
    use tashkent::ShardId;
    use tashkent_faults::{
        check_cluster, FaultAction, FaultExecutor, FaultPlan, FaultTarget, NodePick, PlanConfig,
    };

    let cluster = sharded_cluster(SystemKind::TashkentApi, 2, 2);
    let workload: Arc<dyn Workload> = Arc::new(AllUpdates::default());
    workload.setup(&cluster);

    // The fixed-seed plan replays identically run to run: one leader-
    // targeted crash/recover of shard 1's replicated group.
    let mut plan_config = PlanConfig::for_cluster(2, 2, 3);
    plan_config.faults = 1;
    plan_config.target_replicas = false;
    let plan = FaultPlan::generate(0, &plan_config);
    assert!(
        plan.events.iter().any(|e| matches!(
            e.action,
            FaultAction::Crash {
                target: FaultTarget::CertifierNode {
                    shard: ShardId(1),
                    pick: NodePick::Leader,
                },
                ..
            }
        )),
        "seed 0 pins the original schedule (shard 1, leader):\n{plan}"
    );

    let injector = FaultExecutor::new(Arc::clone(&cluster), plan).start();
    let report = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 3,
            duration: Duration::from_millis(300),
            seed: 29,
            resilient: true,
        },
    );
    let trace = injector.finish().unwrap();

    // The shard kept a majority throughout, so load never stalled...
    assert!(report.committed > 50, "only {} commits", report.committed);
    assert!(cluster.certifier().is_available());
    // ...and every commit the clients observed is in the certified history.
    assert!(cluster.system_version().value() >= report.committed);
    // The executor resolved the leader pick and fired both halves.
    assert_eq!(trace.fired.len(), 2);
    assert!(trace.fired[0].crash && !trace.fired[1].crash);
    assert_eq!(trace.fired[0].node, trace.fired[1].node);

    // The oracle performs the full battery: dense gap-free stream,
    // record-for-record durable-log agreement with the shard leader (the
    // recovered node included), durable home-shard coverage of the whole
    // history, and replica convergence/agreement.
    let violations = check_cluster(&cluster, None);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn replica_recovery_during_load_loses_nothing() {
    let cluster = small_cluster(SystemKind::TashkentMw, 2);
    let table = cluster.create_table("kv", &["v"]);
    for key in 0..25 {
        let tx = cluster.session(0).begin();
        tx.insert(table, key, vec![("v".into(), Value::Int(key))]).unwrap();
        tx.commit().unwrap();
        if key == 10 {
            cluster.sync_all().unwrap();
            cluster.replica(1).take_dump();
        }
    }
    cluster.replica(1).crash();
    let applied = cluster.replica(1).recover().unwrap();
    assert!(applied >= 14, "applied {applied}");
    assert_eq!(cluster.replica(1).version(), Version(25));
    let tx = cluster.session(1).begin();
    for key in 0..25 {
        assert!(tx.read(table, key).unwrap().is_some());
    }
    tx.commit().unwrap();
}

#[test]
fn snapshot_reads_are_stable_while_updates_flow() {
    let cluster = small_cluster(SystemKind::TashkentApi, 2);
    let table = cluster.create_table("kv", &["v"]);
    let tx = cluster.session(0).begin();
    tx.insert(table, 1, vec![("v".into(), Value::Int(1))]).unwrap();
    tx.commit().unwrap();
    cluster.sync_all().unwrap();

    // A long-running read-only transaction on replica 1 keeps its snapshot
    // while replica 0 keeps committing new versions of the row.
    let reader_session = cluster.session(1);
    let reader = reader_session.begin();
    let before = reader.read(table, 1).unwrap().unwrap();
    for i in 2..6 {
        let tx = cluster.session(0).begin();
        tx.update(table, 1, vec![("v".into(), Value::Int(i))]).unwrap();
        tx.commit().unwrap();
        cluster.replica(1).proxy().refresh().unwrap();
    }
    let after = reader.read(table, 1).unwrap().unwrap();
    assert_eq!(before, after, "read-only snapshot must be stable");
    reader.commit().unwrap();
    // A fresh transaction sees the latest version.
    let tx = cluster.session(1).begin();
    assert_eq!(
        tx.read(table, 1).unwrap().unwrap().get("v"),
        Some(&Value::Int(5))
    );
    tx.commit().unwrap();
}
