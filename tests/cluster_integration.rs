//! Cross-crate integration tests: real workloads running on real clusters of
//! every system kind, checking convergence, conflict handling and recovery.

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, SystemKind, Value, Version};
use tashkent_workloads::{run_driver, AllUpdates, DriverConfig, TpcB, Workload};

fn small_cluster(system: SystemKind, replicas: usize) -> Arc<Cluster> {
    let mut config = ClusterConfig::small(system);
    config.replicas = replicas;
    Arc::new(Cluster::new(config).unwrap())
}

#[test]
fn allupdates_driver_converges_on_every_system() {
    for system in SystemKind::ALL {
        let cluster = small_cluster(system, 3);
        let workload: Arc<dyn Workload> = Arc::new(AllUpdates::default());
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 3,
                duration: Duration::from_millis(250),
                seed: 11,
            },
        );
        assert!(report.committed > 0, "system {system}");
        // AllUpdates clients write disjoint keys, so aborts are rare (they
        // can only come from scheduling races under heavy test parallelism,
        // never from data conflicts).
        assert!(
            report.aborted <= report.committed / 10,
            "system {system}: {} aborts vs {} commits",
            report.aborted,
            report.committed
        );
        // Every transaction the driver observed as committed was ordered by
        // the certifier (the certifier may have ordered a few more whose
        // responses raced with the end of the measurement window).
        assert!(
            cluster.system_version().value() >= report.committed,
            "system {system}"
        );
        // After syncing, every replica holds the full prefix.
        cluster.sync_all().unwrap();
        for (replica, version) in cluster.replica_versions() {
            assert_eq!(
                version,
                cluster.system_version(),
                "system {system} replica {replica}"
            );
        }
    }
}

#[test]
fn tpcb_conflicts_abort_but_invariants_hold_across_replicas() {
    for system in [SystemKind::TashkentMw, SystemKind::TashkentApi] {
        let cluster = small_cluster(system, 2);
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 2,
            tellers_per_branch: 2,
            accounts_per_branch: 100,
        });
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 2,
                duration: Duration::from_millis(200),
                seed: 13,
            },
        );
        assert!(report.committed > 0, "system {system}");
        cluster.sync_all().unwrap();
        // The TPC-B invariant holds identically on every replica.
        let mut totals = Vec::new();
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let branches = db.table_id("branches").unwrap();
            let tx = db.begin();
            let total: i64 = tx
                .scan(branches)
                .unwrap()
                .iter()
                .filter_map(|(_, row)| row.get("balance").and_then(Value::as_int))
                .sum();
            tx.abort();
            totals.push(total);
        }
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "system {system}: {totals:?}");
    }
}

#[test]
fn replica_recovery_during_load_loses_nothing() {
    let cluster = small_cluster(SystemKind::TashkentMw, 2);
    let table = cluster.create_table("kv", &["v"]);
    for key in 0..25 {
        let tx = cluster.session(0).begin();
        tx.insert(table, key, vec![("v".into(), Value::Int(key))]).unwrap();
        tx.commit().unwrap();
        if key == 10 {
            cluster.sync_all().unwrap();
            cluster.replica(1).take_dump();
        }
    }
    cluster.replica(1).crash();
    let applied = cluster.replica(1).recover().unwrap();
    assert!(applied >= 14, "applied {applied}");
    assert_eq!(cluster.replica(1).version(), Version(25));
    let tx = cluster.session(1).begin();
    for key in 0..25 {
        assert!(tx.read(table, key).unwrap().is_some());
    }
    tx.commit().unwrap();
}

#[test]
fn snapshot_reads_are_stable_while_updates_flow() {
    let cluster = small_cluster(SystemKind::TashkentApi, 2);
    let table = cluster.create_table("kv", &["v"]);
    let tx = cluster.session(0).begin();
    tx.insert(table, 1, vec![("v".into(), Value::Int(1))]).unwrap();
    tx.commit().unwrap();
    cluster.sync_all().unwrap();

    // A long-running read-only transaction on replica 1 keeps its snapshot
    // while replica 0 keeps committing new versions of the row.
    let reader_session = cluster.session(1);
    let reader = reader_session.begin();
    let before = reader.read(table, 1).unwrap().unwrap();
    for i in 2..6 {
        let tx = cluster.session(0).begin();
        tx.update(table, 1, vec![("v".into(), Value::Int(i))]).unwrap();
        tx.commit().unwrap();
        cluster.replica(1).proxy().refresh().unwrap();
    }
    let after = reader.read(table, 1).unwrap().unwrap();
    assert_eq!(before, after, "read-only snapshot must be stable");
    reader.commit().unwrap();
    // A fresh transaction sees the latest version.
    let tx = cluster.session(1).begin();
    assert_eq!(
        tx.read(table, 1).unwrap().unwrap().get("v"),
        Some(&Value::Int(5))
    );
    tx.commit().unwrap();
}
