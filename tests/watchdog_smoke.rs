//! Watchdog smoke test (run by PR CI): the anomaly watchdog attaches to a
//! live cluster, stays silent under healthy load, fires on a synthetic
//! anomaly, and its diagnostic bundles round-trip from disk.
//!
//! The deterministic detector-threshold tests live with the detectors in
//! `tashkent::watchdog`; this suite checks the wiring end to end through
//! the public `Cluster` API.

use std::sync::Arc;
use std::time::Duration;

use tashkent::{
    AnomalyKind, Cluster, ClusterConfig, CounterId, DiagnosticBundle, SystemKind, Value, Watchdog,
    WatchdogConfig,
};
use tashkent_workloads::{run_driver, AllUpdates, DriverConfig, Workload};

/// Healthy load on a Tashkent-MW cluster must not trip either detector:
/// AllUpdates clients write disjoint key ranges, so no abort trickle can
/// form, and MW replicas run with the WAL off, so the stall signature's
/// fsync heartbeat cannot appear at all.
#[test]
fn watchdog_stays_silent_under_healthy_load() {
    let mut config = ClusterConfig::small(SystemKind::TashkentMw);
    config.replicas = 2;
    config.clients_per_replica = 2;
    let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
    let workload: Arc<dyn Workload> = Arc::new(AllUpdates::default());
    workload.setup(&cluster);
    let watchdog = cluster.start_watchdog(WatchdogConfig {
        interval: Duration::from_millis(20),
        ..WatchdogConfig::default()
    });
    let _ = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 2,
            duration: Duration::from_millis(300),
            seed: 0x57A7_0001,
            ..DriverConfig::default()
        },
    );
    let fired = watchdog.stop();
    assert!(
        fired.is_empty(),
        "watchdog fired under healthy load: {fired:?}"
    );
}

/// A synthetic drain stall — commits frozen while something keeps fsyncing
/// — must fire the detector and leave a decodable bundle on disk.
#[test]
fn watchdog_fires_on_a_synthetic_stall_and_the_bundle_round_trips() {
    let bundle_dir =
        std::env::temp_dir().join(format!("tashkent-watchdog-smoke-{}", std::process::id()));
    let cluster =
        Arc::new(Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).expect("valid"));
    let table = cluster.create_table("accounts", &["balance"]);
    // A little real history so the bundle has events and traces to carry.
    for key in 0..5 {
        let tx = cluster.session(0).begin();
        tx.insert(table, key, vec![("balance".into(), Value::Int(key))])
            .expect("insert");
        tx.commit().expect("commit");
    }
    let registry = cluster.metrics();
    let capture_cluster = Arc::clone(&cluster);
    let capture_dir = bundle_dir.clone();
    let watchdog = Watchdog::start(
        cluster.metrics(),
        WatchdogConfig {
            convoy_window: 1024, // out of reach: this test is about the stall
            stall_window: 3,
            stall_min_fsyncs: 2,
            interval: Duration::from_millis(5),
            ..WatchdogConfig::default()
        },
        Box::new(move |verdict| {
            let bundle = capture_cluster.diagnostic_bundle(verdict.kind.label(), &verdict.to_string());
            let _ = bundle.write_to(&capture_dir);
            bundle
        }),
    );
    // The synthetic anomaly: no commits, but a live fsync heartbeat.
    for _ in 0..100 {
        registry.incr(CounterId::WalFsyncs);
        std::thread::sleep(Duration::from_millis(5));
        if !watchdog.fired().is_empty() {
            break;
        }
    }
    let fired = watchdog.stop();
    assert!(
        fired
            .iter()
            .any(|f| f.verdict.kind == AnomalyKind::DrainStall),
        "synthetic stall did not fire: {fired:?}"
    );

    let mut paths: Vec<_> = std::fs::read_dir(&bundle_dir)
        .expect("bundle dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no bundle written");
    let bundle = DiagnosticBundle::read_from(&paths[0]).expect("bundle decodes");
    assert_eq!(bundle.kind, "stall");
    assert!(bundle.detail.contains("commits stopped"), "{}", bundle.detail);
    // The bundle carries the cluster's real state: the five commits above
    // appear in the counters, the journal and the progress vector.
    assert!(bundle.snapshot.counter(CounterId::TxCommitted) >= 5);
    assert!(!bundle.events.is_empty(), "bundle lost the event journal");
    assert_eq!(bundle.progress.len(), cluster.replica_count());
    assert!(bundle.progress.iter().any(|(_, version)| *version >= 5));
    let _ = std::fs::remove_dir_all(&bundle_dir);
}

/// `Cluster::diagnostic_bundle` captures a consistent oracle-style bundle
/// on demand (the fault harness path) and it survives its codec.
#[test]
fn cluster_diagnostic_bundle_round_trips() {
    let cluster = Cluster::new(ClusterConfig::small(SystemKind::TashkentApi)).expect("valid");
    let table = cluster.create_table("accounts", &["balance"]);
    let tx = cluster.session(0).begin();
    tx.insert(table, 1, vec![("balance".into(), Value::Int(1))])
        .expect("insert");
    tx.commit().expect("commit");

    let bundle = cluster.diagnostic_bundle("oracle", "dense-history: gap at version 3");
    let decoded = DiagnosticBundle::from_bytes(&bundle.to_bytes()).expect("decodes");
    assert_eq!(decoded.kind, "oracle");
    assert_eq!(decoded.detail, "dense-history: gap at version 3");
    assert_eq!(decoded.events, bundle.events);
    assert!(!decoded.events.is_empty());
    assert_eq!(decoded.progress.len(), cluster.replica_count());
    assert_eq!(decoded.to_bytes(), bundle.to_bytes());
}
