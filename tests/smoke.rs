//! Smoke tests for the public entry points: every [`SystemKind`] must be
//! able to build a cluster, commit one transaction through a session, and
//! read it back on every replica after a sync.
//!
//! These run in milliseconds and exist so that a broken wiring of the
//! workspace (crate graph, root `tests/` target, re-exports) fails loudly
//! even before the heavier integration and property suites get a chance to.

use tashkent::{Cluster, ClusterConfig, SystemKind, Value, Version};

#[test]
fn every_system_kind_commits_one_transaction() {
    for system in SystemKind::ALL {
        let cluster = Cluster::new(ClusterConfig::small(system))
            .unwrap_or_else(|e| panic!("building {system} cluster: {e}"));
        let table = cluster.create_table("accounts", &["balance"]);

        let session = cluster.session(0);
        let tx = session.begin();
        tx.insert(table, 1, vec![("balance".into(), Value::Int(100))])
            .unwrap_or_else(|e| panic!("insert on {system}: {e}"));
        tx.commit()
            .unwrap_or_else(|e| panic!("commit on {system}: {e}"));
        assert_eq!(cluster.system_version(), Version(1), "system {system}");

        // After a sync the committed row is visible through every replica.
        cluster.sync_all().unwrap();
        for replica in 0..cluster.replica_count() {
            let tx = cluster.session(replica).begin();
            let row = tx
                .read(table, 1)
                .unwrap_or_else(|e| panic!("read on {system} replica {replica}: {e}"))
                .unwrap_or_else(|| panic!("row missing on {system} replica {replica}"));
            assert_eq!(row.get("balance"), Some(&Value::Int(100)));
            tx.commit().unwrap();
        }
    }
}

#[test]
fn read_only_transactions_commit_without_certification() {
    for system in SystemKind::ALL {
        let cluster = Cluster::new(ClusterConfig::small(system)).unwrap();
        let table = cluster.create_table("kv", &["v"]);
        let tx = cluster.session(0).begin();
        assert!(tx.read(table, 42).unwrap().is_none());
        tx.commit()
            .unwrap_or_else(|e| panic!("read-only commit on {system}: {e}"));
        // A read-only commit must not advance the global commit order.
        assert_eq!(cluster.system_version(), Version(0), "system {system}");
    }
}
