//! Transport equivalence: the cluster must take the *same decisions* and
//! converge to the *same contents* whether the replicas talk to the
//! certifier in-process, over the deterministic loopback network, or over
//! real TCP sockets.
//!
//! The trace is a fixed serial schedule driven by one thread — a
//! deterministic TPC-B-flavoured mix of transfers, deliberate write-write
//! conflicts (two transactions opened on the same snapshot writing the same
//! account) and cross-replica updates — so every run on every transport
//! replays the identical program order and the per-transaction outcomes are
//! comparable one-for-one.

use std::sync::Arc;

use tashkent::{
    Cluster, ClusterConfig, CounterId, RowKey, SystemKind, TableId, TransportKind, Value,
};

/// One observed transaction outcome, rendered comparable across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Commit { version: u64 },
    Abort,
}

struct Trace {
    /// Per-transaction decisions in program order.
    outcomes: Vec<Outcome>,
    /// Final `(key, balance)` rows of the accounts table, sorted by key.
    accounts: Vec<(i64, i64)>,
    /// Final replica versions (all equal after `sync_all`).
    final_version: u64,
}

const ACCOUNTS: i64 = 8;

fn build(system: SystemKind, transport: TransportKind) -> (Arc<Cluster>, TableId) {
    let mut config = ClusterConfig::small(system);
    config.replicas = 2;
    config.transport = transport;
    let cluster = Arc::new(Cluster::new(config).unwrap());
    let table = cluster.create_table("accounts", &["balance"]);
    for key in 0..ACCOUNTS {
        let tx = cluster.session(0).begin();
        tx.insert(table, key, vec![("balance".into(), Value::Int(100))])
            .unwrap();
        tx.commit().unwrap();
    }
    cluster.sync_all().unwrap();
    cluster.seal_baseline();
    (cluster, table)
}

/// Moves `amount` from one account to another on `replica`, read-modify-write.
fn transfer(
    cluster: &Cluster,
    table: TableId,
    replica: usize,
    from: i64,
    to: i64,
    amount: i64,
) -> Outcome {
    let tx = cluster.session(replica).begin();
    let read = |key: i64, tx: &tashkent::ProxyTransaction| -> i64 {
        tx.read(table, key)
            .unwrap()
            .and_then(|row| row.get("balance").cloned())
            .map_or(0, |v| match v {
                Value::Int(i) => i,
                _ => 0,
            })
    };
    let debit = read(from, &tx) - amount;
    let credit = read(to, &tx) + amount;
    let write = tx
        .update(table, from, vec![("balance".into(), Value::Int(debit))])
        .and_then(|()| tx.update(table, to, vec![("balance".into(), Value::Int(credit))]));
    match write.and_then(|()| tx.commit()) {
        Ok(outcome) => Outcome::Commit {
            version: outcome.commit_version.map_or(0, |v| v.value()),
        },
        Err(_) => Outcome::Abort,
    }
}

/// The fixed serial schedule: every run executes exactly this program.
fn drive(cluster: &Arc<Cluster>, table: TableId) -> Trace {
    let mut outcomes = Vec::new();
    // Phase 1: conflict-free transfers alternating between the replicas.
    for step in 0..12i64 {
        let replica = (step % 2) as usize;
        let from = step % ACCOUNTS;
        let to = (step + 3) % ACCOUNTS;
        outcomes.push(transfer(cluster, table, replica, from, to, 1 + step));
        if step % 4 == 3 {
            cluster.sync_all().unwrap();
        }
    }
    // Phase 2: deliberate first-committer-wins races.  Both transactions
    // open on the same snapshot and write account 0; the first commit wins,
    // the second must abort on every transport.
    for round in 0..3i64 {
        cluster.sync_all().unwrap();
        let tx_a = cluster.session(0).begin();
        let tx_b = cluster.session(1).begin();
        tx_a.update(table, 0, vec![("balance".into(), Value::Int(500 + round))])
            .unwrap();
        tx_b.update(table, 0, vec![("balance".into(), Value::Int(900 + round))])
            .unwrap();
        outcomes.push(match tx_a.commit() {
            Ok(outcome) => Outcome::Commit {
                version: outcome.commit_version.map_or(0, |v| v.value()),
            },
            Err(_) => Outcome::Abort,
        });
        outcomes.push(match tx_b.commit() {
            Ok(outcome) => Outcome::Commit {
                version: outcome.commit_version.map_or(0, |v| v.value()),
            },
            Err(_) => Outcome::Abort,
        });
    }
    // Phase 3: a read-only scan commits without certification everywhere.
    let tx = cluster.session(1).begin();
    let rows = tx.scan(table).unwrap().len();
    let ro = tx.commit().unwrap();
    assert!(ro.read_only, "a pure scan must commit read-only");
    assert_eq!(rows as i64, ACCOUNTS);

    cluster.sync_all().unwrap();
    let tx = cluster.session(0).begin();
    let mut accounts: Vec<(i64, i64)> = tx
        .scan(table)
        .unwrap()
        .into_iter()
        .map(|(key, row)| {
            let k = match key {
                RowKey::Int(i) => i,
                other => panic!("integer keys only, got {other:?}"),
            };
            let v = match row.get("balance") {
                Some(Value::Int(i)) => *i,
                other => panic!("unexpected balance {other:?}"),
            };
            (k, v)
        })
        .collect();
    tx.abort();
    accounts.sort_unstable();
    Trace {
        outcomes,
        accounts,
        final_version: cluster.system_version().value(),
    }
}

#[test]
fn every_transport_takes_identical_decisions_and_contents() {
    for system in [SystemKind::TashkentApi, SystemKind::TashkentMw] {
        let (cluster, table) = build(system, TransportKind::InProcess);
        let baseline = drive(&cluster, table);
        assert!(
            baseline
                .outcomes
                .iter()
                .filter(|o| matches!(o, Outcome::Abort))
                .count()
                >= 3,
            "{system}: the schedule must provoke its deliberate conflicts"
        );
        // Money conservation: transfers and overwrites kept 8 rows.
        assert_eq!(baseline.accounts.len() as i64, ACCOUNTS, "{system}");

        for transport in [TransportKind::Loopback, TransportKind::Tcp] {
            let (cluster, table) = build(system, transport);
            let trace = drive(&cluster, table);
            assert_eq!(
                trace.outcomes, baseline.outcomes,
                "{system}/{transport:?}: per-transaction decisions diverged from in-process"
            );
            assert_eq!(
                trace.accounts, baseline.accounts,
                "{system}/{transport:?}: final contents diverged from in-process"
            );
            assert_eq!(
                trace.final_version, baseline.final_version,
                "{system}/{transport:?}: commit clock diverged from in-process"
            );
            // The run demonstrably crossed the wire.
            assert!(
                cluster.metrics_snapshot().counter(CounterId::NetMessages) > 0,
                "{system}/{transport:?}: no traffic crossed the network transport"
            );
        }
    }
}
