//! Randomized multi-fault crash/recover schedules (the fault-schedule
//! harness's soak entry point, also run as the CI `fault-smoke` step).
//!
//! Knobs (environment variables):
//!
//! * `FAULT_SCHEDULES=N` — run N randomized schedules (default 5; longer
//!   local soaks use 50+).
//! * `FAULT_SEED=0x…` — replay exactly one schedule instead: the
//!   one-liner reproduction printed by a failing soak.
//!
//! A failing schedule prints its plan, the violated invariants, the replay
//! recipe, and a greedily minimized version of the plan.

use tashkent_faults::{
    run_schedule, shrink_failure, FaultAction, FaultPlan, FaultTarget, ScheduleConfig,
    ScheduleOutcome,
};

/// Base value mixed into per-schedule seeds so consecutive integers do not
/// produce near-identical xoshiro streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn parse_env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name}={raw} is not a number")))
}

fn run_and_report(seed: u64) -> bool {
    let outcome = run_schedule(seed);
    print!("{outcome}");
    if outcome.passed() {
        return true;
    }
    // Sharpen the report: shrink to the smallest still-failing subsequence.
    let minimized = shrink_failure(&outcome);
    println!(
        "minimized to {} fault(s) after {} extra runs:\n{}",
        minimized.plan.fault_count(),
        minimized.runs,
        minimized.plan
    );
    false
}

#[test]
fn randomized_fault_schedules_hold_every_invariant() {
    if let Some(seed) = parse_env_u64("FAULT_SEED") {
        // Replay mode: exactly the failing schedule, nothing else.
        assert!(run_and_report(seed), "schedule {seed:#x} failed (see above)");
        return;
    }
    let schedules = parse_env_u64("FAULT_SCHEDULES").unwrap_or(5);
    let mut failed = Vec::new();
    for i in 0..schedules {
        let seed = (i + 1).wrapping_mul(SEED_STRIDE);
        if !run_and_report(seed) {
            failed.push(seed);
        }
    }
    assert!(
        failed.is_empty(),
        "{} of {schedules} schedules failed: {:?} (replay each with FAULT_SEED=<seed>)",
        failed.len(),
        failed
            .iter()
            .map(|s| format!("{s:#x}"))
            .collect::<Vec<_>>()
    );
}

/// What a non-quorum-safe schedule must reach to qualify as a regression
/// target: every node of one certifier shard down at once, or every
/// replica down at once.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outage {
    FullShard,
    AllReplicas,
}

/// Deterministically finds the first seed whose generated schedule reaches
/// `want`.  Plan generation is pure and cheap, so the search replays
/// identically on every run and only the found seed is executed for real.
fn find_outage_seed(want: Outage) -> u64 {
    (0..50_000u64)
        .find(|&seed| {
            let config = ScheduleConfig::from_seed(seed);
            if !config.total_outage {
                return false;
            }
            let plan_config = config.plan_config();
            let plan = FaultPlan::generate(seed, &plan_config);
            let mut replica_down = vec![false; plan_config.replicas];
            let mut shard_down = vec![0usize; plan_config.certifier_shards];
            let mut targets: Vec<Option<FaultTarget>> = Vec::new();
            let mut hit = false;
            for event in &plan.events {
                match event.action {
                    FaultAction::Crash { fault, target } => {
                        if targets.len() <= fault {
                            targets.resize(fault + 1, None);
                        }
                        targets[fault] = Some(target);
                        match target {
                            FaultTarget::Replica(r) => {
                                replica_down[r] = true;
                                if want == Outage::AllReplicas
                                    && replica_down.iter().all(|d| *d)
                                {
                                    hit = true;
                                }
                            }
                            FaultTarget::CertifierNode { shard, .. } => {
                                shard_down[shard.index()] += 1;
                                if want == Outage::FullShard
                                    && shard_down[shard.index()] == plan_config.nodes_per_shard
                                {
                                    hit = true;
                                }
                            }
                        }
                    }
                    FaultAction::Recover { fault } => match targets[fault] {
                        Some(FaultTarget::Replica(r)) => replica_down[r] = false,
                        Some(FaultTarget::CertifierNode { shard, .. }) => {
                            shard_down[shard.index()] -= 1;
                        }
                        None => {}
                    },
                }
            }
            hit
        })
        .expect("some seed in range reaches the outage shape")
}

/// Shared assertions for the two total-outage regressions: the full oracle
/// passed, and the background trimmer demonstrably checkpointed and
/// truncated logs *during* the run (visible in the metrics).
fn assert_outage_outcome(outcome: &ScheduleOutcome) {
    use tashkent::{CounterId, GaugeId};
    assert!(outcome.passed(), "{outcome}");
    let snapshot = &outcome.snapshot;
    assert!(
        snapshot.counter(CounterId::CheckpointsSealed) > 0,
        "no checkpoint was sealed during the schedule"
    );
    assert!(
        snapshot.counter(CounterId::TrimmedLogEntries) > 0,
        "no certifier log entry was truncated during the schedule"
    );
    assert!(
        snapshot.gauge(GaugeId::TruncationWatermark).0 > 0,
        "the truncation watermark never advanced"
    );
}

/// Regression: a schedule that crashes *every* node of one certifier shard
/// — no donor, no quorum — must recover via the union-of-logs state
/// transfer and pass the full oracle, on logs the trimmer was actively
/// truncating.  The seed is found by a deterministic search, so this test
/// replays the identical schedule forever (`FAULT_SEED=<printed seed>`
/// reproduces it standalone).
#[test]
fn total_certifier_shard_outage_recovers_and_passes_the_oracle() {
    let seed = find_outage_seed(Outage::FullShard);
    println!("full-shard-outage regression seed: {seed:#x}");
    let outcome = run_schedule(seed);
    print!("{outcome}");
    assert_outage_outcome(&outcome);
}

/// Regression: a schedule that crashes *every* replica at once — the
/// workload fully stalls — must bootstrap each replica back from its
/// sealed checkpoint plus the retained log suffix and pass the full
/// oracle.
#[test]
fn total_replica_outage_recovers_and_passes_the_oracle() {
    let seed = find_outage_seed(Outage::AllReplicas);
    println!("all-replica-outage regression seed: {seed:#x}");
    let outcome = run_schedule(seed);
    print!("{outcome}");
    assert_outage_outcome(&outcome);
}

/// Regression: a seeded schedule that runs the cluster over the loopback
/// network and weaves link sever/heal events into the crash stream must
/// pass the full oracle, with the partition demonstrably exercised: link
/// events fired and the commit path crossed a real wire.  The seed is
/// found by a deterministic search, so the identical schedule replays
/// forever.
#[test]
fn seeded_partition_schedule_passes_the_oracle() {
    use tashkent::CounterId;
    let seed = (0..50_000u64)
        .find(|&seed| {
            let config = ScheduleConfig::from_seed(seed);
            config.partition
                && !config.total_outage
                && FaultPlan::generate(seed, &config.plan_config()).link_event_count() > 0
        })
        .expect("some seed in range draws a partition schedule");
    println!("partition regression seed: {seed:#x}");
    let outcome = run_schedule(seed);
    print!("{outcome}");
    assert!(outcome.passed(), "{outcome}");
    assert!(
        outcome.trace.link_events > 0,
        "the schedule must fire its link events"
    );
    assert!(
        outcome.snapshot.counter(CounterId::NetMessages) > 0,
        "a partition schedule runs over the loopback wire"
    );
}

/// The replay contract: one seed, one schedule.  Two full executions of the
/// same seed must produce the identical plan *and* resolve the identical
/// victims at the identical injection points.
#[test]
fn fixed_seed_replays_the_identical_schedule() {
    let seed = 0xFA_57_F0_0D;
    let first = run_schedule(seed);
    let second = run_schedule(seed);
    assert_eq!(first.plan, second.plan, "plans must replay identically");
    assert_eq!(
        first.trace.victims(),
        second.trace.victims(),
        "resolved victims must replay identically"
    );
    assert!(first.passed(), "{first}");
    assert!(second.passed(), "{second}");
}
