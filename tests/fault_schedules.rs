//! Randomized multi-fault crash/recover schedules (the fault-schedule
//! harness's soak entry point, also run as the CI `fault-smoke` step).
//!
//! Knobs (environment variables):
//!
//! * `FAULT_SCHEDULES=N` — run N randomized schedules (default 5; longer
//!   local soaks use 50+).
//! * `FAULT_SEED=0x…` — replay exactly one schedule instead: the
//!   one-liner reproduction printed by a failing soak.
//!
//! A failing schedule prints its plan, the violated invariants, the replay
//! recipe, and a greedily minimized version of the plan.

use tashkent_faults::{run_schedule, shrink_failure};

/// Base value mixed into per-schedule seeds so consecutive integers do not
/// produce near-identical xoshiro streams.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

fn parse_env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name}={raw} is not a number")))
}

fn run_and_report(seed: u64) -> bool {
    let outcome = run_schedule(seed);
    print!("{outcome}");
    if outcome.passed() {
        return true;
    }
    // Sharpen the report: shrink to the smallest still-failing subsequence.
    let minimized = shrink_failure(&outcome);
    println!(
        "minimized to {} fault(s) after {} extra runs:\n{}",
        minimized.plan.fault_count(),
        minimized.runs,
        minimized.plan
    );
    false
}

#[test]
fn randomized_fault_schedules_hold_every_invariant() {
    if let Some(seed) = parse_env_u64("FAULT_SEED") {
        // Replay mode: exactly the failing schedule, nothing else.
        assert!(run_and_report(seed), "schedule {seed:#x} failed (see above)");
        return;
    }
    let schedules = parse_env_u64("FAULT_SCHEDULES").unwrap_or(5);
    let mut failed = Vec::new();
    for i in 0..schedules {
        let seed = (i + 1).wrapping_mul(SEED_STRIDE);
        if !run_and_report(seed) {
            failed.push(seed);
        }
    }
    assert!(
        failed.is_empty(),
        "{} of {schedules} schedules failed: {:?} (replay each with FAULT_SEED=<seed>)",
        failed.len(),
        failed
            .iter()
            .map(|s| format!("{s:#x}"))
            .collect::<Vec<_>>()
    );
}

/// The replay contract: one seed, one schedule.  Two full executions of the
/// same seed must produce the identical plan *and* resolve the identical
/// victims at the identical injection points.
#[test]
fn fixed_seed_replays_the_identical_schedule() {
    let seed = 0xFA_57_F0_0D;
    let first = run_schedule(seed);
    let second = run_schedule(seed);
    assert_eq!(first.plan, second.plan, "plans must replay identically");
    assert_eq!(
        first.trace.victims(),
        second.trace.victims(),
        "resolved victims must replay identically"
    );
    assert!(first.passed(), "{first}");
    assert!(second.passed(), "{second}");
}
