//! Fault-tolerance walkthrough (Section 7): crash and recover a database
//! replica under each replication design, and fail over the certifier
//! leader, demonstrating that no committed transaction is ever lost.
//!
//! Run with: `cargo run --example failover_recovery`

use tashkent::{CertifierNodeId, Cluster, ClusterConfig, SystemKind, Value};

fn commit_key(cluster: &Cluster, table: tashkent::TableId, replica: usize, key: i64) {
    let session = cluster.session(replica);
    let tx = session.begin();
    tx.insert(table, key, vec![("v".into(), Value::Int(key * 10))])
        .unwrap();
    tx.commit().unwrap();
}

fn main() {
    for system in SystemKind::ALL {
        println!("=== {} ===", system.label());
        let mut config = ClusterConfig::small(system);
        config.replicas = 2;
        let cluster = Cluster::new(config).expect("valid configuration");
        let table = cluster.create_table("kv", &["v"]);

        // Commit ten transactions through replica 0.
        for key in 0..10 {
            commit_key(&cluster, table, 0, key);
        }
        cluster.sync_all().unwrap();

        // Tashkent-MW keeps durability in the middleware, so the middleware
        // periodically dumps each replica (Section 7.1).
        let dump_bytes = cluster.replica(1).take_dump();
        println!("  took replica dump: {dump_bytes} bytes at version {}", cluster.replica(1).version());

        // More commits after the dump, then crash replica 1.
        for key in 10..15 {
            commit_key(&cluster, table, 0, key);
        }
        cluster.replica(1).crash();
        println!("  replica 1 crashed at system version {}", cluster.system_version());

        // Certifier leader fail-over: progress continues with a majority.
        cluster.crash_certifier_node(CertifierNodeId(0));
        for key in 15..18 {
            commit_key(&cluster, table, 0, key);
        }
        println!(
            "  certifier leader crashed and failed over; system version now {}",
            cluster.system_version()
        );

        // Recover the replica: WAL redo (Base / Tashkent-API) or dump restore
        // (Tashkent-MW), then catch-up from the certifier log.
        let applied = cluster.replica(1).recover().unwrap();
        println!(
            "  replica 1 recovered, re-applied {applied} writesets, now at version {}",
            cluster.replica(1).version()
        );

        // Every committed row is present on the recovered replica.
        let session = cluster.session(1);
        let tx = session.begin();
        for key in 0..18 {
            let row = tx.read(table, key).unwrap().expect("row survived");
            assert_eq!(row.get("v"), Some(&Value::Int(key * 10)));
        }
        tx.commit().unwrap();
        println!("  all 18 committed rows verified on the recovered replica");

        // Bring the crashed certifier node back as well.
        cluster.recover_certifier_node(CertifierNodeId(0)).unwrap();
        println!("  certifier node 0 recovered via state transfer\n");
    }
}
