//! Quickstart: build a small Tashkent-MW cluster, run a few transactions and
//! show how updates propagate between replicas.
//!
//! Run with: `cargo run --example quickstart`

use tashkent::{Cluster, ClusterConfig, SystemKind, Value};

fn main() {
    // A 3-replica Tashkent-MW cluster: durability lives in the certifier's
    // group-committed log, replica commits are in-memory operations.
    let mut config = ClusterConfig::small(SystemKind::TashkentMw);
    config.replicas = 3;
    let cluster = Cluster::new(config).expect("valid configuration");
    let accounts = cluster.create_table("accounts", &["owner", "balance"]);

    // Populate two accounts through replica 0.
    let session = cluster.session(0);
    let tx = session.begin();
    tx.insert(
        accounts,
        1,
        vec![
            ("owner".into(), Value::Text("alice".into())),
            ("balance".into(), Value::Int(1_000)),
        ],
    )
    .unwrap();
    tx.insert(
        accounts,
        2,
        vec![
            ("owner".into(), Value::Text("bob".into())),
            ("balance".into(), Value::Int(500)),
        ],
    )
    .unwrap();
    let outcome = tx.commit().unwrap();
    println!(
        "populated accounts through replica 0 (commit version {:?})",
        outcome.commit_version
    );

    // Transfer money through replica 1: it first learns about the rows via
    // the remote writesets returned during certification.
    let session = cluster.session(1);
    session.proxy().refresh().unwrap();
    let tx = session.begin();
    let alice = tx.read(accounts, 1).unwrap().expect("replicated row");
    let bob = tx.read(accounts, 2).unwrap().expect("replicated row");
    let alice_balance = alice.get("balance").unwrap().as_int().unwrap();
    let bob_balance = bob.get("balance").unwrap().as_int().unwrap();
    tx.update(accounts, 1, vec![("balance".into(), Value::Int(alice_balance - 100))])
        .unwrap();
    tx.update(accounts, 2, vec![("balance".into(), Value::Int(bob_balance + 100))])
        .unwrap();
    println!("transfer writeset: {}", tx.writeset());
    tx.commit().unwrap();

    // Every replica converges to the same state in the same global order.
    cluster.sync_all().unwrap();
    for replica in 0..cluster.replica_count() {
        let session = cluster.session(replica);
        let tx = session.begin();
        let alice = tx.read(accounts, 1).unwrap().unwrap();
        let bob = tx.read(accounts, 2).unwrap().unwrap();
        println!(
            "replica {replica}: alice={} bob={} (version {})",
            alice.get("balance").unwrap(),
            bob.get("balance").unwrap(),
            cluster.replica(replica).version(),
        );
        tx.commit().unwrap();
    }

    let stats = cluster.stats();
    println!(
        "cluster committed {} update transactions, certifier logged {} writesets ({} per fsync)",
        stats.update_commits,
        stats.certifier.as_ref().map_or(0, |c| c.log.entries),
        stats
            .certifier
            .as_ref()
            .map_or(0.0, |c| c.log.leader_group_commit.mean_group_size()),
    );
}
