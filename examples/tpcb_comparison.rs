//! Runs the TPC-B workload against all three replication designs on the real
//! in-process cluster and compares throughput, abort behaviour and fsync
//! counts — a functional miniature of the paper's Section 9.3 comparison.
//! A second sweep re-runs Tashkent-API with the certifier partitioned into
//! 1 / 2 / 4 shards (PR 4): every update still funnels through
//! certification, so end-to-end TPC-B throughput is the system-level check
//! that sharding costs nothing on an unpartitionable workload.
//!
//! Each system's row is followed by the commit-path stage breakdown from
//! the cluster's metrics registry, so a throughput difference can be
//! attributed to a stage (certify round-trip, durable fsync, in-order
//! announce, remote install) instead of guessed at.
//!
//! Run with: `cargo run --release --example tpcb_comparison`
//!
//! Environment knobs:
//!
//! * `TPCB_WINDOW_MS=3000` — longer, stabler measurement windows (used when
//!   committing baseline numbers).
//! * `TPCB_FLIGHT=1` — attach a 250 ms flight recorder to every run and
//!   print the per-sample timeline (committed / lock waits / WAL fsyncs per
//!   window), the tool behind the ROADMAP bimodality investigation.

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, CounterId, FlightRecorder, FlightSample, SystemKind};
use tashkent_workloads::{
    render_stage_breakdown, run_driver, DriverConfig, DriverReport, TpcB, Workload,
};

/// Measurement window; override with `TPCB_WINDOW_MS=3000` for the longer,
/// stabler windows used when committing baseline numbers (TPC-B on a hot
/// branch set is bimodal over sub-second windows).
fn window() -> Duration {
    let ms = std::env::var("TPCB_WINDOW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800u64);
    Duration::from_millis(ms)
}

/// `TPCB_FLIGHT=1` attaches a flight recorder to every run.
fn flight_enabled() -> bool {
    std::env::var("TPCB_FLIGHT").is_ok_and(|v| v != "0")
}

fn run_tpcb(
    config: ClusterConfig,
) -> (Arc<Cluster>, tashkent_workloads::DriverReport, Vec<FlightSample>) {
    let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
    let workload: Arc<dyn Workload> = Arc::new(TpcB {
        branches: 4,
        tellers_per_branch: 10,
        accounts_per_branch: 200,
    });
    workload.setup(&cluster);
    let recorder =
        flight_enabled().then(|| cluster.start_flight_recorder(Duration::from_millis(250)));
    let report = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 4,
            duration: window(),
            seed: 42,
            ..DriverConfig::default()
        },
    );
    let samples = recorder.map(FlightRecorder::stop).unwrap_or_default();
    (cluster, report, samples)
}

/// Prints the flight-recorder timeline: per-sample counter deltas, the raw
/// material of the throughput-bimodality investigation (see ROADMAP).
fn print_timeline(label: &str, samples: &[FlightSample]) {
    if samples.len() < 2 {
        return;
    }
    println!("flight timeline — {label} (deltas per 250 ms sample)");
    for pair in samples.windows(2) {
        let delta = pair[1].snapshot.counters_since(&pair[0].snapshot);
        println!(
            "  t+{:>5} ms  committed {:>6}  aborted {:>6}  lock waits {:>6}  wal fsyncs {:>5}",
            pair[1].at.as_millis(),
            delta[CounterId::TxCommitted.index()],
            delta[CounterId::TxAborted.index()],
            delta[CounterId::LockWaits.index()],
            delta[CounterId::WalFsyncs.index()],
        );
    }
}

fn main() {
    // Shared driver-report columns (same layout as `figures -- tpcw-cluster`
    // and `figures -- metrics`) plus the TPC-B-specific durability columns.
    println!(
        "{}{:>16}{:>20}",
        DriverReport::table_header("system"),
        "replica fsyncs",
        "certifier grp size"
    );
    let mut breakdowns = Vec::new();
    for system in SystemKind::ALL {
        let mut config = ClusterConfig::small(system);
        config.replicas = 2;
        config.clients_per_replica = 4;
        let (cluster, report, samples) = run_tpcb(config);

        let replica_fsyncs = cluster.replica(0).database().stats().wal.fsyncs;
        let certifier_group = cluster
            .stats()
            .certifier
            .map_or(0.0, |c| c.log.leader_group_commit.mean_group_size());
        println!(
            "{}{replica_fsyncs:>16}{certifier_group:>20.1}",
            report.table_row(system.label()),
        );
        breakdowns.push((system.label(), cluster.metrics_snapshot(), samples));
    }
    println!();
    println!(
        "Tashkent-MW performs no replica fsyncs at all; Tashkent-API groups its\n\
         commit records; Base pays one fsync per remote group and per local commit."
    );
    for (label, snapshot, samples) in &breakdowns {
        println!();
        println!("commit-path stages — {label}");
        print!("{}", render_stage_breakdown(snapshot));
        print_timeline(label, samples);
    }

    // Sharded-certifier sweep: the same TPC-B load on Tashkent-API with the
    // certifier split into 1 / 2 / 4 shards.
    println!();
    println!(
        "{}{:>14}{:>14}{:>18}",
        DriverReport::table_header("certifier"),
        "window tput",
        "cert commits",
        "multi-shard cert"
    );
    for shards in [1usize, 2, 4] {
        let mut config = ClusterConfig::small(SystemKind::TashkentApi);
        config.replicas = 2;
        config.clients_per_replica = 4;
        config.certifier_shards = shards;
        let (cluster, report, samples) = run_tpcb(config);
        let handle = cluster.certifier();
        let multi_shard = handle
            .as_sharded()
            .map_or(0, |sharded| sharded.stats().multi_shard_commits);
        // Commits per second of *measurement window*: `DriverReport::elapsed`
        // also counts the shutdown join of in-flight transactions (long for
        // Tashkent-API pipelines, and equally so with one shard), which
        // would make the sweep compare tail behaviour instead of
        // certification throughput.
        let window_tput = report.committed as f64 / window().as_secs_f64();
        let label = format!("{shards} shard(s)");
        println!(
            "{}{window_tput:>14.0}{:>14}{multi_shard:>18}",
            report.table_row(&label),
            handle.stats().commits,
        );
        print_timeline(&label, &samples);
    }
    println!();
    println!(
        "TPC-B transactions span four tables, so most writesets certify on\n\
         several shards (the ordered two-phase path); end-to-end throughput\n\
         staying level shows cross-shard commit ordering is off the critical\n\
         path.  The sharded_certification micro-bench shows the partitionable\n\
         (AllUpdates) case where per-shard intersection scales."
    );
}
