//! Runs the TPC-B workload against all three replication designs on the real
//! in-process cluster and compares throughput, abort behaviour and fsync
//! counts — a functional miniature of the paper's Section 9.3 comparison.
//!
//! Run with: `cargo run --release --example tpcb_comparison`

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, SystemKind};
use tashkent_workloads::{run_driver, DriverConfig, TpcB, Workload};

fn main() {
    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>16} {:>18}",
        "system", "committed", "aborted", "tput/s", "replica fsyncs", "certifier grp size"
    );
    for system in SystemKind::ALL {
        let mut config = ClusterConfig::small(system);
        config.replicas = 2;
        config.clients_per_replica = 4;
        let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 4,
            tellers_per_branch: 10,
            accounts_per_branch: 200,
        });
        workload.setup(&cluster);

        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 4,
                duration: Duration::from_millis(800),
                seed: 42,
            },
        );

        let replica_fsyncs = cluster.replica(0).database().stats().wal.fsyncs;
        let certifier_group = cluster
            .stats()
            .certifier
            .map_or(0.0, |c| c.log.leader_group_commit.mean_group_size());
        println!(
            "{:<14} {:>12} {:>10} {:>10.0} {:>16} {:>18.1}",
            system.label(),
            report.committed,
            report.aborted,
            report.throughput(),
            replica_fsyncs,
            certifier_group,
        );
    }
    println!();
    println!(
        "Tashkent-MW performs no replica fsyncs at all; Tashkent-API groups its\n\
         commit records; Base pays one fsync per remote group and per local commit."
    );
}
