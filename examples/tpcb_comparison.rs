//! Runs the TPC-B workload against all three replication designs on the real
//! in-process cluster and compares throughput, abort behaviour and fsync
//! counts — a functional miniature of the paper's Section 9.3 comparison.
//! A second sweep re-runs Tashkent-API with the certifier partitioned into
//! 1 / 2 / 4 shards (PR 4): every update still funnels through
//! certification, so end-to-end TPC-B throughput is the system-level check
//! that sharding costs nothing on an unpartitionable workload.
//!
//! Run with: `cargo run --release --example tpcb_comparison`

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, SystemKind};
use tashkent_workloads::{run_driver, DriverConfig, TpcB, Workload};

/// Measurement window; override with `TPCB_WINDOW_MS=3000` for the longer,
/// stabler windows used when committing baseline numbers (TPC-B on a hot
/// branch set is bimodal over sub-second windows).
fn window() -> Duration {
    let ms = std::env::var("TPCB_WINDOW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800u64);
    Duration::from_millis(ms)
}

fn run_tpcb(config: ClusterConfig) -> (Arc<Cluster>, tashkent_workloads::DriverReport) {
    let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
    let workload: Arc<dyn Workload> = Arc::new(TpcB {
        branches: 4,
        tellers_per_branch: 10,
        accounts_per_branch: 200,
    });
    workload.setup(&cluster);
    let report = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 4,
            duration: window(),
            seed: 42,
            ..DriverConfig::default()
        },
    );
    (cluster, report)
}

fn main() {
    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>10} {:>16} {:>18}",
        "system", "committed", "aborted", "tput/s", "drain ms", "replica fsyncs", "certifier grp size"
    );
    for system in SystemKind::ALL {
        let mut config = ClusterConfig::small(system);
        config.replicas = 2;
        config.clients_per_replica = 4;
        let (cluster, report) = run_tpcb(config);

        let replica_fsyncs = cluster.replica(0).database().stats().wal.fsyncs;
        let certifier_group = cluster
            .stats()
            .certifier
            .map_or(0.0, |c| c.log.leader_group_commit.mean_group_size());
        println!(
            "{:<14} {:>12} {:>10} {:>10.0} {:>10} {:>16} {:>18.1}",
            system.label(),
            report.committed,
            report.aborted,
            report.throughput(),
            // The shutdown tail, separated from the measurement window: the
            // ROADMAP investigation into Tashkent-API's slow drain of
            // in-flight ordered commits reads this column.
            report.drain.as_millis(),
            replica_fsyncs,
            certifier_group,
        );
    }
    println!();
    println!(
        "Tashkent-MW performs no replica fsyncs at all; Tashkent-API groups its\n\
         commit records; Base pays one fsync per remote group and per local commit."
    );

    // Sharded-certifier sweep: the same TPC-B load on Tashkent-API with the
    // certifier split into 1 / 2 / 4 shards.
    println!();
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>14} {:>18}",
        "certifier", "committed", "aborted", "window tput", "cert commits", "multi-shard cert"
    );
    for shards in [1usize, 2, 4] {
        let mut config = ClusterConfig::small(SystemKind::TashkentApi);
        config.replicas = 2;
        config.clients_per_replica = 4;
        config.certifier_shards = shards;
        let (cluster, report) = run_tpcb(config);
        let handle = cluster.certifier();
        let multi_shard = handle
            .as_sharded()
            .map_or(0, |sharded| sharded.stats().multi_shard_commits);
        // Commits per second of *measurement window*: `DriverReport::elapsed`
        // also counts the shutdown join of in-flight transactions (long for
        // Tashkent-API pipelines, and equally so with one shard), which
        // would make the sweep compare tail behaviour instead of
        // certification throughput.
        let window_tput = report.committed as f64 / window().as_secs_f64();
        println!(
            "{:<14} {:>12} {:>10} {:>12.0} {:>14} {:>18}",
            format!("{shards} shard(s)"),
            report.committed,
            report.aborted,
            window_tput,
            handle.stats().commits,
            multi_shard,
        );
    }
    println!();
    println!(
        "TPC-B transactions span four tables, so most writesets certify on\n\
         several shards (the ordered two-phase path); end-to-end throughput\n\
         staying level shows cross-shard commit ordering is off the critical\n\
         path.  The sharded_certification micro-bench shows the partitionable\n\
         (AllUpdates) case where per-shard intersection scales."
    );
}
