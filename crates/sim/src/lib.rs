//! Discrete-event performance model of the Base / Tashkent-MW /
//! Tashkent-API replicated database systems.
//!
//! The paper's scaling results (Figures 4–14) come from a 16-node cluster
//! with 7200 rpm disks whose `fsync` costs roughly 8 ms.  Reproducing those
//! figures with the real in-process engine would require either that exact
//! hardware or hours of wall-clock sleeping, so this crate substitutes a
//! **discrete-event simulation** that models precisely the resources the
//! paper identifies as decisive:
//!
//! * the replica's log IO channel (serial fsyncs for Base, group-committed
//!   fsyncs for Tashkent-API, none for Tashkent-MW), shared or dedicated;
//! * the certifier's log IO channel, which batches all outstanding writesets
//!   into one fsync;
//! * per-transaction CPU costs at the replica (execution and remote-writeset
//!   application) and at the certifier (writeset intersection);
//! * closed-loop clients (each replica driven at a fixed number of
//!   back-to-back clients, as in Section 9.1);
//! * artificial conflicts that force Tashkent-API to serialise some commits
//!   (Section 5.2.1), and forced certifier abort rates (Section 9.5).
//!
//! The protocol *logic* (certification, grouping, ordering) lives in the real
//! crates and is tested there; the simulator only reproduces the queueing
//! behaviour, with virtual time, so that a 15-replica, multi-minute
//! experiment finishes in milliseconds.
//!
//! Modules:
//!
//! * [`resources`] — virtual-time FIFO servers and group-commit disks.
//! * [`workload`] — per-benchmark cost profiles (AllUpdates, TPC-B, TPC-W).
//! * [`model`] — the event-driven cluster model and [`model::SimReport`].
//! * [`experiments`] — ready-made parameter sets for every figure and table
//!   in the paper's evaluation section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod model;
pub mod resources;
pub mod workload;

pub use experiments::{Experiment, ExperimentOutput, FigureId};
pub use model::{SimConfig, SimReport, Simulator};
pub use workload::WorkloadProfile;
