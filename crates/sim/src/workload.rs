//! Per-benchmark cost profiles.
//!
//! The simulator characterises each benchmark by the quantities the paper
//! reports or that follow directly from its measurements: the fraction of
//! update transactions, CPU cost per transaction, cost of applying a remote
//! writeset, average writeset size, the real (certification) conflict rate
//! and the artificial-conflict rate among remote writesets that matters for
//! Tashkent-API (35 % for TPC-B, Section 9.3).

use serde::{Deserialize, Serialize};

/// Cost profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Fraction of transactions that are updates (1.0 for AllUpdates and
    /// TPC-B, 0.2 for the TPC-W shopping mix).
    pub update_fraction: f64,
    /// CPU time at the replica to execute one transaction, in seconds.
    pub cpu_execute: f64,
    /// CPU time at the replica to apply one remote writeset, in seconds.
    pub cpu_apply_writeset: f64,
    /// CPU time at the certifier to intersection-test one writeset.
    pub cpu_certify: f64,
    /// Average writeset size in bytes (54 / 158 / 275 for the three
    /// benchmarks).
    pub writeset_bytes: usize,
    /// Probability that certification finds a real write-write conflict.
    pub conflict_rate: f64,
    /// Probability that a group of remote writesets contains an artificial
    /// conflict, forcing Tashkent-API to serialise (Section 5.2.1).
    pub artificial_conflict_rate: f64,
    /// Non-logging IO (page reads and dirty-page writebacks) per transaction
    /// on a *shared* channel, in seconds of channel occupancy.
    pub shared_io_per_txn: f64,
    /// Overhead per durable commit record at the replica, in seconds,
    /// charged when the database itself guarantees durability (Base and
    /// Tashkent-API).  It models what Section 9.2 blames for the residual
    /// gap between Tashkent-MW and Tashkent-API: PostgreSQL logs before/after
    /// images of data pages and runs a heavier multiprocess commit path,
    /// whereas the certifier logs only the small writeset.
    pub wal_record_io: f64,
    /// Closed-loop clients per replica (the paper drives each replica at 85 %
    /// of its standalone peak).
    pub clients_per_replica: usize,
}

impl WorkloadProfile {
    /// The AllUpdates micro-benchmark: back-to-back short, non-conflicting
    /// update transactions with 54-byte writesets — the worst case for a
    /// replicated system (Section 9.1).
    #[must_use]
    pub fn all_updates() -> Self {
        WorkloadProfile {
            name: "AllUpdates".into(),
            update_fraction: 1.0,
            cpu_execute: 0.0009,
            cpu_apply_writeset: 0.000_23,
            cpu_certify: 0.000_02,
            writeset_bytes: 54,
            conflict_rate: 0.0,
            artificial_conflict_rate: 0.0,
            shared_io_per_txn: 0.000_5,
            wal_record_io: 0.000_15,
            clients_per_replica: 10,
        }
    }

    /// TPC-B: small read-modify-write transactions with real write-write
    /// conflicts and a 35 % artificial-conflict rate among remote writeset
    /// groups (Section 9.3).
    #[must_use]
    pub fn tpcb() -> Self {
        WorkloadProfile {
            name: "TPC-B".into(),
            update_fraction: 1.0,
            cpu_execute: 0.0021,
            cpu_apply_writeset: 0.000_5,
            cpu_certify: 0.000_03,
            writeset_bytes: 158,
            conflict_rate: 0.02,
            artificial_conflict_rate: 0.35,
            shared_io_per_txn: 0.002_0,
            wal_record_io: 0.000_2,
            clients_per_replica: 10,
        }
    }

    /// TPC-W shopping mix: heavyweight, CPU-bound interactions with only 20 %
    /// updates (Section 9.4).
    #[must_use]
    pub fn tpcw_shopping() -> Self {
        WorkloadProfile {
            name: "TPC-W".into(),
            update_fraction: 0.20,
            cpu_execute: 0.045,
            cpu_apply_writeset: 0.001_1,
            cpu_certify: 0.000_05,
            writeset_bytes: 275,
            conflict_rate: 0.005,
            artificial_conflict_rate: 0.05,
            shared_io_per_txn: 0.045,
            wal_record_io: 0.000_5,
            clients_per_replica: 10,
        }
    }

    /// The profile by benchmark name (`allupdates`, `tpcb`, `tpcw`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "allupdates" | "all_updates" | "all-updates" => Some(Self::all_updates()),
            "tpcb" | "tpc-b" => Some(Self::tpcb()),
            "tpcw" | "tpc-w" | "tpcw-shopping" => Some(Self::tpcw_shopping()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_characteristics() {
        let all = WorkloadProfile::all_updates();
        let tpcb = WorkloadProfile::tpcb();
        let tpcw = WorkloadProfile::tpcw_shopping();
        // Writeset sizes quoted in Section 9.1.
        assert_eq!(all.writeset_bytes, 54);
        assert_eq!(tpcb.writeset_bytes, 158);
        assert_eq!(tpcw.writeset_bytes, 275);
        // Update fractions.
        assert_eq!(all.update_fraction, 1.0);
        assert_eq!(tpcb.update_fraction, 1.0);
        assert!((tpcw.update_fraction - 0.2).abs() < f64::EPSILON);
        // AllUpdates has no conflicts; TPC-B has the 35 % artificial rate.
        assert_eq!(all.conflict_rate, 0.0);
        assert!((tpcb.artificial_conflict_rate - 0.35).abs() < f64::EPSILON);
        // TPC-W is CPU bound: execution dwarfs certification.
        assert!(tpcw.cpu_execute > 100.0 * tpcw.cpu_certify);
        // Certification is an order of magnitude cheaper than execution.
        for profile in [&all, &tpcb, &tpcw] {
            assert!(profile.cpu_execute >= 10.0 * profile.cpu_certify);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            WorkloadProfile::by_name("TPC-B").unwrap().name,
            "TPC-B"
        );
        assert_eq!(
            WorkloadProfile::by_name("allupdates").unwrap().name,
            "AllUpdates"
        );
        assert_eq!(
            WorkloadProfile::by_name("tpcw").unwrap().name,
            "TPC-W"
        );
        assert!(WorkloadProfile::by_name("nope").is_none());
    }
}
