//! Virtual-time resources: FIFO servers and group-commit disks.
//!
//! All times are `f64` seconds of virtual time.  Resources are *reservation
//! based*: a request made at time `t` immediately returns the completion
//! time, under the assumption that requests arrive in non-decreasing time
//! order — which the event-driven simulator guarantees by processing events
//! in timestamp order.

use tashkent_common::GroupCommitStats;

/// A single FIFO server (a CPU, or a network link treated as a delay line).
#[derive(Debug, Clone, Default)]
pub struct FifoServer {
    busy_until: f64,
    busy_time: f64,
    jobs: u64,
}

impl FifoServer {
    /// Creates an idle server.
    #[must_use]
    pub fn new() -> Self {
        FifoServer::default()
    }

    /// Reserves `service` seconds of the server starting no earlier than
    /// `now`; returns the completion time.
    pub fn request(&mut self, now: f64, service: f64) -> f64 {
        let start = now.max(self.busy_until);
        let end = start + service;
        self.busy_until = end;
        self.busy_time += service;
        self.jobs += 1;
        end
    }

    /// Fraction of `[0, horizon]` during which the server was busy.
    #[must_use]
    pub fn utilisation(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_time / horizon).min(1.0)
        }
    }

    /// Number of jobs served.
    #[must_use]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// The time until which the server is currently reserved.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

/// A disk used as a log device.
///
/// Two operating modes matter for the paper:
///
/// * [`GroupCommitDisk::flush_serial`] — one fsync per request, requests are
///   served FIFO.  This is how Base's replica WAL behaves, because the proxy
///   must submit commits one at a time.
/// * [`GroupCommitDisk::flush_grouped`] — requests arriving while an fsync is
///   in progress join the *next* fsync together; this is group commit, used
///   by the certifier log, by standalone databases and by Tashkent-API's
///   replica WAL.
///
/// [`GroupCommitDisk::occupy`] models non-logging IO (page reads, dirty-page
/// writebacks) competing for a *shared* channel.
#[derive(Debug, Clone)]
pub struct GroupCommitDisk {
    fsync: f64,
    busy_until: f64,
    busy_time: f64,
    /// The currently open (not yet started) batch: (start, end, records).
    open_batch: Option<(f64, f64, u64)>,
    stats: GroupCommitStats,
}

impl GroupCommitDisk {
    /// Creates a disk whose fsync takes `fsync` seconds.
    #[must_use]
    pub fn new(fsync: f64) -> Self {
        GroupCommitDisk {
            fsync,
            busy_until: 0.0,
            busy_time: 0.0,
            open_batch: None,
            stats: GroupCommitStats::default(),
        }
    }

    /// The configured fsync duration.
    #[must_use]
    pub fn fsync_duration(&self) -> f64 {
        self.fsync
    }

    /// Occupies the channel for `duration` seconds of non-logging IO.
    pub fn occupy(&mut self, now: f64, duration: f64) {
        self.close_batches_before(now);
        let start = now.max(self.busy_until);
        self.busy_until = start + duration;
        self.busy_time += duration;
    }

    /// One dedicated fsync for a single commit record (serial commits).
    /// Returns the completion time.
    pub fn flush_serial(&mut self, now: f64) -> f64 {
        self.close_batches_before(now);
        let start = now.max(self.busy_until);
        let end = start + self.fsync;
        self.busy_until = end;
        self.busy_time += self.fsync;
        self.stats.record_flush(1);
        end
    }

    /// A group-committed flush of `records` commit records.  Requests that
    /// arrive while the channel is busy join one shared fsync that starts
    /// when the channel frees up.  Returns the completion time.
    pub fn flush_grouped(&mut self, now: f64, records: u64) -> f64 {
        // If an open batch exists and has not started yet, join it.
        if let Some((start, end, count)) = self.open_batch {
            if now <= start {
                self.open_batch = Some((start, end, count + records));
                return end;
            }
            // The open batch has already started (virtually): close it.
            self.stats.record_flush(count);
            self.open_batch = None;
        }
        let start = now.max(self.busy_until);
        let end = start + self.fsync;
        self.busy_until = end;
        self.busy_time += self.fsync;
        self.open_batch = Some((start, end, records));
        end
    }

    fn close_batches_before(&mut self, now: f64) {
        if let Some((start, _, count)) = self.open_batch {
            if now > start {
                self.stats.record_flush(count);
                self.open_batch = None;
            }
        }
    }

    /// Flushes the statistics of any still-open batch (call at the end of a
    /// simulation).
    pub fn finish(&mut self) {
        if let Some((_, _, count)) = self.open_batch.take() {
            self.stats.record_flush(count);
        }
    }

    /// Group-commit statistics (fsync count, records per fsync).
    #[must_use]
    pub fn stats(&self) -> &GroupCommitStats {
        &self.stats
    }

    /// Fraction of `[0, horizon]` during which the channel was busy.
    #[must_use]
    pub fn utilisation(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_time / horizon).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_server_serialises_requests() {
        let mut cpu = FifoServer::new();
        assert!((cpu.request(0.0, 1.0) - 1.0).abs() < 1e-12);
        // Second request arrives while busy: queues behind the first.
        assert!((cpu.request(0.5, 1.0) - 2.0).abs() < 1e-12);
        // Third arrives after the server went idle.
        assert!((cpu.request(5.0, 0.5) - 5.5).abs() < 1e-12);
        assert_eq!(cpu.jobs(), 3);
        assert!((cpu.utilisation(10.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serial_flushes_never_share_an_fsync() {
        let mut disk = GroupCommitDisk::new(0.008);
        let a = disk.flush_serial(0.0);
        let b = disk.flush_serial(0.0);
        let c = disk.flush_serial(0.0);
        assert!((a - 0.008).abs() < 1e-12);
        assert!((b - 0.016).abs() < 1e-12);
        assert!((c - 0.024).abs() < 1e-12);
        disk.finish();
        assert_eq!(disk.stats().fsyncs, 3);
        assert!((disk.stats().mean_group_size() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grouped_flushes_share_an_fsync_under_load() {
        let mut disk = GroupCommitDisk::new(0.008);
        // First request starts a flush at t=0.
        let a = disk.flush_grouped(0.0, 1);
        assert!((a - 0.008).abs() < 1e-12);
        // Requests arriving during that flush are NOT part of it (it already
        // started) — they form the next batch together.
        let b = disk.flush_grouped(0.001, 1);
        let c = disk.flush_grouped(0.002, 1);
        let d = disk.flush_grouped(0.007, 1);
        assert!((b - 0.016).abs() < 1e-12);
        assert!((c - 0.016).abs() < 1e-12);
        assert!((d - 0.016).abs() < 1e-12);
        disk.finish();
        // Two fsyncs for four records.
        assert_eq!(disk.stats().fsyncs, 2);
        assert_eq!(disk.stats().records, 4);
        assert_eq!(disk.stats().max_group, 3);
    }

    #[test]
    fn occupation_delays_flushes() {
        let mut disk = GroupCommitDisk::new(0.008);
        disk.occupy(0.0, 0.005);
        let end = disk.flush_serial(0.001);
        assert!((end - 0.013).abs() < 1e-12);
        assert!(disk.utilisation(0.013) > 0.99);
    }

    #[test]
    fn idle_disk_flushes_immediately() {
        let mut disk = GroupCommitDisk::new(0.008);
        let a = disk.flush_grouped(1.0, 2);
        assert!((a - 1.008).abs() < 1e-12);
        // Long after the flush finished, a new request starts its own fsync.
        let b = disk.flush_grouped(2.0, 1);
        assert!((b - 2.008).abs() < 1e-12);
        disk.finish();
        assert_eq!(disk.stats().fsyncs, 2);
        assert_eq!(disk.stats().records, 3);
    }
}
