//! Ready-made experiment definitions for every figure and table of the
//! paper's evaluation (Section 9).
//!
//! Each [`FigureId`] knows its workload, IO-channel mode, which systems to
//! plot and which metric the paper reports (throughput or response time);
//! [`Experiment::run`] sweeps the replica counts 1–15 and produces the same
//! curves, ready to be printed by the `figures` harness in
//! `tashkent-bench`.

use tashkent_common::{IoChannelMode, Series, SystemKind};

use crate::model::{SimConfig, SimReport, Simulator};
use crate::workload::WorkloadProfile;

/// The metric a figure plots on its y axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Requests per second (committed transactions only).
    Throughput,
    /// Mean response time in milliseconds.
    ResponseTime,
    /// Read-only vs update response times (Figure 13).
    ResponseTimeByClass,
}

/// Identifier of one figure or table of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FigureId {
    Fig4,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    Fig11,
    Fig12,
    Fig13,
    Fig14,
    /// Section 9.2 standalone vs 1-replica Tashkent-MW comparison.
    TableStandalone,
    /// Section 9.2 grouping factor and certifier utilisation at 15 replicas.
    TableGrouping,
}

impl FigureId {
    /// All figures/tables in paper order.
    pub const ALL: [FigureId; 13] = [
        FigureId::Fig4,
        FigureId::Fig5,
        FigureId::Fig6,
        FigureId::Fig7,
        FigureId::Fig8,
        FigureId::Fig9,
        FigureId::Fig10,
        FigureId::Fig11,
        FigureId::Fig12,
        FigureId::Fig13,
        FigureId::Fig14,
        FigureId::TableStandalone,
        FigureId::TableGrouping,
    ];

    /// Parses a figure id from a command-line token such as `fig4`,
    /// `standalone` or `grouping`.
    #[must_use]
    pub fn parse(token: &str) -> Option<FigureId> {
        match token.to_ascii_lowercase().as_str() {
            "fig4" => Some(FigureId::Fig4),
            "fig5" => Some(FigureId::Fig5),
            "fig6" => Some(FigureId::Fig6),
            "fig7" => Some(FigureId::Fig7),
            "fig8" => Some(FigureId::Fig8),
            "fig9" => Some(FigureId::Fig9),
            "fig10" => Some(FigureId::Fig10),
            "fig11" => Some(FigureId::Fig11),
            "fig12" => Some(FigureId::Fig12),
            "fig13" => Some(FigureId::Fig13),
            "fig14" => Some(FigureId::Fig14),
            "standalone" | "tab-standalone" => Some(FigureId::TableStandalone),
            "grouping" | "tab-groupsize" => Some(FigureId::TableGrouping),
            _ => None,
        }
    }

    /// Short identifier used in output file names and headings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FigureId::Fig4 => "fig4",
            FigureId::Fig5 => "fig5",
            FigureId::Fig6 => "fig6",
            FigureId::Fig7 => "fig7",
            FigureId::Fig8 => "fig8",
            FigureId::Fig9 => "fig9",
            FigureId::Fig10 => "fig10",
            FigureId::Fig11 => "fig11",
            FigureId::Fig12 => "fig12",
            FigureId::Fig13 => "fig13",
            FigureId::Fig14 => "fig14",
            FigureId::TableStandalone => "standalone",
            FigureId::TableGrouping => "grouping",
        }
    }

    /// Human-readable description matching the paper's caption.
    #[must_use]
    pub fn caption(self) -> &'static str {
        match self {
            FigureId::Fig4 => "Throughput for AllUpdates (shared IO)",
            FigureId::Fig5 => "Response time for AllUpdates (shared IO)",
            FigureId::Fig6 => "Throughput for AllUpdates (dedicated IO)",
            FigureId::Fig7 => "Response time for AllUpdates (dedicated IO)",
            FigureId::Fig8 => "Throughput for TPC-B (shared IO)",
            FigureId::Fig9 => "Response time for TPC-B (shared IO)",
            FigureId::Fig10 => "Throughput for TPC-B (dedicated IO)",
            FigureId::Fig11 => "Response time for TPC-B (dedicated IO)",
            FigureId::Fig12 => "Throughput for TPC-W shopping mix (shared IO)",
            FigureId::Fig13 => "Response time for TPC-W shopping mix (shared IO)",
            FigureId::Fig14 => "Certifier goodput under forced abort rates (dedicated IO)",
            FigureId::TableStandalone => {
                "Standalone database vs 1-replica Tashkent-MW (Section 9.2)"
            }
            FigureId::TableGrouping => {
                "Certifier grouping factor and utilisation at 15 replicas (Section 9.2)"
            }
        }
    }

    /// The metric the paper plots for this figure.
    #[must_use]
    pub fn metric(self) -> Metric {
        match self {
            FigureId::Fig4
            | FigureId::Fig6
            | FigureId::Fig8
            | FigureId::Fig10
            | FigureId::Fig12
            | FigureId::Fig14
            | FigureId::TableStandalone
            | FigureId::TableGrouping => Metric::Throughput,
            FigureId::Fig5 | FigureId::Fig7 | FigureId::Fig9 | FigureId::Fig11 => {
                Metric::ResponseTime
            }
            FigureId::Fig13 => Metric::ResponseTimeByClass,
        }
    }

    fn workload(self) -> WorkloadProfile {
        match self {
            FigureId::Fig4
            | FigureId::Fig5
            | FigureId::Fig6
            | FigureId::Fig7
            | FigureId::Fig14
            | FigureId::TableStandalone
            | FigureId::TableGrouping => WorkloadProfile::all_updates(),
            FigureId::Fig8 | FigureId::Fig9 | FigureId::Fig10 | FigureId::Fig11 => {
                WorkloadProfile::tpcb()
            }
            FigureId::Fig12 | FigureId::Fig13 => WorkloadProfile::tpcw_shopping(),
        }
    }

    fn io_mode(self) -> IoChannelMode {
        match self {
            FigureId::Fig4
            | FigureId::Fig5
            | FigureId::Fig8
            | FigureId::Fig9
            | FigureId::Fig12
            | FigureId::Fig13 => IoChannelMode::Shared,
            FigureId::Fig6
            | FigureId::Fig7
            | FigureId::Fig10
            | FigureId::Fig11
            | FigureId::Fig14
            | FigureId::TableStandalone
            | FigureId::TableGrouping => IoChannelMode::Dedicated,
        }
    }

    fn systems(self) -> Vec<SystemKind> {
        match self {
            // Throughput figures include the tashAPInoCERT analysis curve.
            FigureId::Fig4 | FigureId::Fig6 | FigureId::Fig8 | FigureId::Fig10 => vec![
                SystemKind::Base,
                SystemKind::TashkentMw,
                SystemKind::TashkentApi,
                SystemKind::TashkentApiNoCertDurability,
            ],
            FigureId::Fig14 => vec![
                SystemKind::Base,
                SystemKind::TashkentMw,
                SystemKind::TashkentApi,
            ],
            FigureId::TableStandalone | FigureId::TableGrouping => {
                vec![SystemKind::TashkentMw]
            }
            _ => vec![
                SystemKind::Base,
                SystemKind::TashkentMw,
                SystemKind::TashkentApi,
            ],
        }
    }

    fn replica_counts(self) -> Vec<usize> {
        match self {
            FigureId::TableStandalone => vec![1],
            FigureId::TableGrouping => vec![15],
            FigureId::Fig14 => vec![1, 3, 5, 8, 11, 15],
            _ => vec![1, 3, 5, 8, 11, 15],
        }
    }
}

/// One runnable experiment (a figure or table of the paper).
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Which figure this experiment regenerates.
    pub id: FigureId,
    /// Virtual measurement duration per data point, in seconds.
    pub duration: f64,
    /// Virtual warm-up per data point, in seconds.
    pub warmup: f64,
}

/// The output of one experiment: a set of labelled curves plus free-form
/// notes (grouping factors, utilisations) for the table-style artefacts.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The figure this output belongs to.
    pub id: FigureId,
    /// Throughput curves (one per system), where applicable.
    pub throughput: Vec<Series>,
    /// Response-time curves (one per system), where applicable.
    pub response_time: Vec<Series>,
    /// Extra key/value observations (group sizes, utilisations, ratios).
    pub notes: Vec<(String, f64)>,
}

impl Experiment {
    /// Creates the experiment for a figure with the default (paper-length)
    /// virtual duration.
    #[must_use]
    pub fn new(id: FigureId) -> Self {
        Experiment {
            id,
            duration: 30.0,
            warmup: 3.0,
        }
    }

    /// A faster variant for tests and criterion benches.
    #[must_use]
    pub fn quick(id: FigureId) -> Self {
        Experiment {
            id,
            duration: 8.0,
            warmup: 1.0,
        }
    }

    fn run_point(
        &self,
        system: SystemKind,
        replicas: usize,
        forced_abort_rate: f64,
    ) -> SimReport {
        let mut config = SimConfig::paper(
            system,
            replicas,
            self.id.workload(),
            self.id.io_mode(),
        );
        config.duration = self.duration;
        config.warmup = self.warmup;
        config.forced_abort_rate = forced_abort_rate;
        Simulator::new(config).run()
    }

    /// Runs the experiment, sweeping systems and replica counts.
    #[must_use]
    pub fn run(&self) -> ExperimentOutput {
        match self.id {
            FigureId::Fig14 => self.run_abort_rates(),
            FigureId::TableStandalone => self.run_standalone(),
            FigureId::TableGrouping => self.run_grouping(),
            FigureId::Fig13 => self.run_tpcw_response(),
            _ => self.run_sweep(),
        }
    }

    fn run_sweep(&self) -> ExperimentOutput {
        let mut throughput = Vec::new();
        let mut response_time = Vec::new();
        for system in self.id.systems() {
            let mut tput = Series::new(system.label());
            let mut resp = Series::new(system.label());
            for replicas in self.id.replica_counts() {
                let report = self.run_point(system, replicas, 0.0);
                tput.push(replicas, report.throughput, report.response_time_ms);
                resp.push(replicas, report.throughput, report.response_time_ms);
            }
            throughput.push(tput);
            response_time.push(resp);
        }
        ExperimentOutput {
            id: self.id,
            throughput,
            response_time,
            notes: Vec::new(),
        }
    }

    /// Figure 14: goodput of the three systems under forced abort rates of
    /// 0 %, 20 % and 40 %.
    fn run_abort_rates(&self) -> ExperimentOutput {
        let mut throughput = Vec::new();
        for system in self.id.systems() {
            for rate in [0.0, 0.2, 0.4] {
                let mut series =
                    Series::new(format!("{} ({:.0}% aborts)", system.label(), rate * 100.0));
                for replicas in self.id.replica_counts() {
                    let report = self.run_point(system, replicas, rate);
                    series.push(replicas, report.throughput, report.response_time_ms);
                }
                throughput.push(series);
            }
        }
        ExperimentOutput {
            id: self.id,
            throughput,
            response_time: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Section 9.2: the replication middleware adds little overhead — a
    /// standalone database vs a 1-replica Tashkent-MW system.
    fn run_standalone(&self) -> ExperimentOutput {
        let mut notes = Vec::new();
        let mut throughput = Vec::new();
        for io_mode in [IoChannelMode::Shared, IoChannelMode::Dedicated] {
            let mut standalone_cfg =
                SimConfig::standalone(WorkloadProfile::all_updates(), io_mode);
            standalone_cfg.duration = self.duration;
            standalone_cfg.warmup = self.warmup;
            let standalone = Simulator::new(standalone_cfg).run();
            let mut mw_cfg = SimConfig::paper(
                SystemKind::TashkentMw,
                1,
                WorkloadProfile::all_updates(),
                io_mode,
            );
            mw_cfg.duration = self.duration;
            mw_cfg.warmup = self.warmup;
            let mw = Simulator::new(mw_cfg).run();
            let mut s = Series::new(format!("standalone ({})", io_mode.label()));
            s.push(1, standalone.throughput, standalone.response_time_ms);
            throughput.push(s);
            let mut s = Series::new(format!("tashMW 1-replica ({})", io_mode.label()));
            s.push(1, mw.throughput, mw.response_time_ms);
            throughput.push(s);
            notes.push((
                format!("overhead ratio ({})", io_mode.label()),
                mw.throughput / standalone.throughput,
            ));
        }
        ExperimentOutput {
            id: self.id,
            throughput,
            response_time: Vec::new(),
            notes,
        }
    }

    /// Section 9.2: certifier grouping factor and utilisation at 15 replicas.
    fn run_grouping(&self) -> ExperimentOutput {
        let report = self.run_point(SystemKind::TashkentMw, 15, 0.0);
        let notes = vec![
            ("throughput (req/s)".to_string(), report.throughput),
            (
                "writesets per certifier fsync".to_string(),
                report.certifier_group_size,
            ),
            (
                "certifier disk utilisation".to_string(),
                report.certifier_disk_utilisation,
            ),
            (
                "certifier CPU utilisation".to_string(),
                report.certifier_cpu_utilisation,
            ),
        ];
        let mut series = Series::new("tashMW");
        series.push(15, report.throughput, report.response_time_ms);
        ExperimentOutput {
            id: self.id,
            throughput: vec![series],
            response_time: Vec::new(),
            notes,
        }
    }

    /// Figure 13: read-only vs update response times for TPC-W.
    fn run_tpcw_response(&self) -> ExperimentOutput {
        let mut response_time = Vec::new();
        for system in self.id.systems() {
            let mut read_only = Series::new(format!("{} read-only", system.label()));
            let mut updates = Series::new(format!("{} update", system.label()));
            for replicas in self.id.replica_counts() {
                let report = self.run_point(system, replicas, 0.0);
                read_only.push(
                    replicas,
                    report.throughput,
                    report.read_only_response_time_ms,
                );
                updates.push(replicas, report.throughput, report.update_response_time_ms);
            }
            response_time.push(read_only);
            response_time.push(updates);
        }
        ExperimentOutput {
            id: self.id,
            throughput: Vec::new(),
            response_time,
            notes: Vec::new(),
        }
    }
}

impl ExperimentOutput {
    /// Renders the output as aligned text rows (what the `figures` binary
    /// prints and what `EXPERIMENTS.md` records).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id.label(), self.id.caption()));
        let render_series = |series: &[Series], metric: &str, out: &mut String| {
            if series.is_empty() {
                return;
            }
            out.push_str(&format!("## {metric}\n"));
            out.push_str(&format!("{:<28}", "replicas"));
            let replica_counts: Vec<usize> = series[0]
                .points
                .iter()
                .map(|p| p.replicas)
                .collect();
            for r in &replica_counts {
                out.push_str(&format!("{r:>10}"));
            }
            out.push('\n');
            for s in series {
                out.push_str(&format!("{:<28}", s.label));
                for p in &s.points {
                    let value = if metric.contains("response") {
                        p.response_time_ms
                    } else {
                        p.throughput
                    };
                    out.push_str(&format!("{value:>10.1}"));
                }
                out.push('\n');
            }
        };
        render_series(&self.throughput, "throughput (req/s)", &mut out);
        render_series(&self.response_time, "response time (ms)", &mut out);
        if !self.notes.is_empty() {
            out.push_str("## notes\n");
            for (key, value) in &self.notes {
                out.push_str(&format!("{key:<40} {value:>10.2}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_parse_and_label_roundtrip() {
        for id in FigureId::ALL {
            assert_eq!(FigureId::parse(id.label()), Some(id));
            assert!(!id.caption().is_empty());
        }
        assert_eq!(FigureId::parse("nope"), None);
        assert_eq!(FigureId::parse("FIG4"), Some(FigureId::Fig4));
    }

    #[test]
    fn fig4_reproduces_the_paper_ordering() {
        let output = Experiment::quick(FigureId::Fig4).run();
        assert_eq!(output.throughput.len(), 4);
        let at = |label: &str| {
            output
                .throughput
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .last()
                .unwrap()
                .throughput
        };
        let base = at("base");
        let mw = at("tashMW");
        let api = at("tashAPI");
        let api_nocert = at("tashAPInoCERT");
        // The paper's headline: MW ~5x Base, API ~3x Base at 15 replicas.
        assert!(mw > 3.0 * base, "MW {mw} vs Base {base}");
        assert!(api > 1.8 * base, "API {api} vs Base {base}");
        assert!(mw >= api, "MW {mw} should beat API {api}");
        assert!(api_nocert >= api, "removing the certifier fsync helps API");
        // Render produces a table containing every curve.
        let text = output.render();
        for label in ["base", "tashMW", "tashAPI", "tashAPInoCERT"] {
            assert!(text.contains(label));
        }
    }

    #[test]
    fn fig14_shows_goodput_ordering_under_aborts() {
        let output = Experiment::quick(FigureId::Fig14).run();
        // Nine curves: three systems x three abort rates.
        assert_eq!(output.throughput.len(), 9);
        // Higher abort rates always reduce goodput for the same system.
        for system in ["base", "tashMW", "tashAPI"] {
            let get = |rate: &str| {
                output
                    .throughput
                    .iter()
                    .find(|s| s.label == format!("{system} ({rate}% aborts)"))
                    .unwrap()
                    .points
                    .last()
                    .unwrap()
                    .throughput
            };
            // Goodput shrinks as the forced abort rate grows.
            assert!(get("0") > get("40"), "{system}: {} vs {}", get("0"), get("40"));
        }
        // Even at 40% aborts, Tashkent-MW beats Base at 0%.
        let mw40 = output
            .throughput
            .iter()
            .find(|s| s.label == "tashMW (40% aborts)")
            .unwrap()
            .points
            .last()
            .unwrap()
            .throughput;
        let base0 = output
            .throughput
            .iter()
            .find(|s| s.label == "base (0% aborts)")
            .unwrap()
            .points
            .last()
            .unwrap()
            .throughput;
        assert!(mw40 > base0);
    }

    #[test]
    fn standalone_table_shows_low_middleware_overhead() {
        let output = Experiment::quick(FigureId::TableStandalone).run();
        assert_eq!(output.notes.len(), 2);
        for (key, ratio) in &output.notes {
            assert!(
                *ratio > 0.75 && *ratio < 1.5,
                "overhead ratio {key} = {ratio}"
            );
        }
    }

    #[test]
    fn grouping_table_reports_certifier_efficiency() {
        let output = Experiment::quick(FigureId::TableGrouping).run();
        let group = output
            .notes
            .iter()
            .find(|(k, _)| k.contains("writesets per"))
            .unwrap()
            .1;
        let disk = output
            .notes
            .iter()
            .find(|(k, _)| k.contains("disk utilisation"))
            .unwrap()
            .1;
        let cpu = output
            .notes
            .iter()
            .find(|(k, _)| k.contains("CPU utilisation"))
            .unwrap()
            .1;
        // Section 9.2: ~29 writesets per fsync; the certifier CPU is nearly
        // idle and its disk keeps up with the full cluster's update rate.
        assert!(group > 8.0, "group size {group}");
        assert!(disk <= 1.0, "disk utilisation {disk}");
        assert!(cpu < 0.5, "cpu utilisation {cpu}");
    }

    #[test]
    fn fig12_tpcw_base_and_api_are_indistinguishable() {
        let output = Experiment::quick(FigureId::Fig12).run();
        let at = |label: &str| {
            output
                .throughput
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .points
                .last()
                .unwrap()
                .throughput
        };
        let base = at("base");
        let api = at("tashAPI");
        let mw = at("tashMW");
        // Low update rate: Base and Tashkent-API perform about the same,
        // Tashkent-MW is at least as good (shared-IO congestion hurts the
        // other two).
        assert!((api - base).abs() / base < 0.25, "base {base} api {api}");
        assert!(mw >= base * 0.95, "mw {mw} base {base}");
    }

    #[test]
    fn fig13_read_only_latencies_are_similar_across_systems() {
        let output = Experiment::quick(FigureId::Fig13).run();
        assert_eq!(output.response_time.len(), 6);
        let read_only: Vec<f64> = output
            .response_time
            .iter()
            .filter(|s| s.label.contains("read-only"))
            .map(|s| s.points.last().unwrap().response_time_ms)
            .collect();
        let max = read_only.iter().cloned().fold(0.0, f64::max);
        let min = read_only.iter().cloned().fold(f64::MAX, f64::min);
        // Read-only transactions are handled identically in all systems.
        assert!(max / min < 1.6, "read-only spread {min}..{max}");
    }
}
