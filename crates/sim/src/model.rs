//! The event-driven cluster model.
//!
//! One [`Simulator`] run models a whole replicated deployment — replicas with
//! their CPUs and log IO channels, a certifier with its CPU and
//! group-committing log disk, network delays, and closed-loop clients — for a
//! configurable amount of virtual time, and reports throughput, response
//! times and group-commit behaviour.
//!
//! The per-system differences are exactly the ones the paper describes:
//!
//! * **Base** — the proxy submits the grouped remote writesets and the local
//!   commit *serially*, each requiring its own synchronous write on the
//!   replica's log channel.
//! * **Tashkent-MW** — the replica performs no synchronous writes at all; the
//!   certifier's group-committed log provides durability.
//! * **Tashkent-API** — remote writesets and the local commit are submitted
//!   concurrently and share a group-committed fsync on the replica's log
//!   channel, except when an artificial conflict forces an extra serial
//!   flush.
//! * **tashAPInoCERT** — Tashkent-API with the certifier's fsync disabled
//!   (analysis configuration of Figures 4, 6, 8, 10).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_common::{IoChannelMode, LatencyHistogram, RunStats, SystemKind};

use crate::resources::{FifoServer, GroupCommitDisk};
use crate::workload::WorkloadProfile;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Replication design to model.
    pub system: SystemKind,
    /// Number of database replicas.
    pub replicas: usize,
    /// IO channel layout at the replicas (shared vs dedicated).
    pub io_mode: IoChannelMode,
    /// Benchmark cost profile.
    pub workload: WorkloadProfile,
    /// fsync duration in seconds (the paper measures ~8 ms).
    pub fsync: f64,
    /// One-way network latency between proxy and certifier, in seconds.
    pub network_one_way: f64,
    /// Fraction of certification requests aborted at random by the certifier
    /// (Section 9.5).
    pub forced_abort_rate: f64,
    /// Virtual time to simulate, in seconds (after warm-up).
    pub duration: f64,
    /// Virtual warm-up time excluded from the measurements.
    pub warmup: f64,
    /// Random seed (workload mix, conflicts, forced aborts).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's testbed configuration for a system / replica count /
    /// workload / IO mode combination.
    #[must_use]
    pub fn paper(
        system: SystemKind,
        replicas: usize,
        workload: WorkloadProfile,
        io_mode: IoChannelMode,
    ) -> Self {
        SimConfig {
            system,
            replicas,
            io_mode,
            workload,
            fsync: 0.008,
            network_one_way: 0.000_15,
            forced_abort_rate: 0.0,
            duration: 30.0,
            warmup: 3.0,
            seed: 0x7A5B_0002,
        }
    }

    /// A standalone (non-replicated) database running the same workload: no
    /// certification, no remote writesets, group-committed local WAL.  Used
    /// for the Section 9.2 overhead comparison.
    #[must_use]
    pub fn standalone(workload: WorkloadProfile, io_mode: IoChannelMode) -> Self {
        SimConfig {
            // A 1-replica Tashkent-API system without certifier IO and with
            // zero network latency behaves exactly like a standalone engine:
            // group-committed local WAL, no middleware in the path.
            system: SystemKind::TashkentApiNoCertDurability,
            replicas: 1,
            io_mode,
            workload,
            fsync: 0.008,
            network_one_way: 0.0,
            forced_abort_rate: 0.0,
            duration: 30.0,
            warmup: 3.0,
            seed: 0x7A5B_0003,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Aggregate counters and latency distributions.
    pub stats: RunStats,
    /// Committed transactions per second (goodput).
    pub throughput: f64,
    /// Mean response time over all committed transactions, in milliseconds.
    pub response_time_ms: f64,
    /// Mean response time of read-only transactions, in milliseconds.
    pub read_only_response_time_ms: f64,
    /// Mean response time of update transactions, in milliseconds.
    pub update_response_time_ms: f64,
    /// Average writesets per fsync at the certifier log.
    pub certifier_group_size: f64,
    /// Certifier log-disk utilisation (fraction of time busy).
    pub certifier_disk_utilisation: f64,
    /// Certifier CPU utilisation.
    pub certifier_cpu_utilisation: f64,
    /// Average commit records per fsync at replica 0's log channel.
    pub replica_group_size: f64,
    /// Observed abort rate.
    pub abort_rate: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// Local execution on the replica CPU.
    Execute,
    /// Travelling to / queued at the certifier CPU.
    Certify,
    /// Waiting for the certifier's group-committed log flush.
    CertifierFlush,
    /// Back at the replica: applying remote writesets on the CPU.
    Apply,
    /// First replica log flush (grouped remote writesets for Base, the shared
    /// group flush for Tashkent-API).
    ReplicaFlush1,
    /// Second replica log flush (the local commit for Base, or the extra
    /// serialised flush forced by an artificial conflict for Tashkent-API).
    ReplicaFlush2,
    /// Finished.
    Done,
}

#[derive(Debug, Clone)]
struct Txn {
    client: usize,
    replica: usize,
    is_update: bool,
    submit_time: f64,
    aborted: bool,
    remote_count: u64,
    artificial_conflict: bool,
    stage: Stage,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    txn: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Runs the simulation and produces a report.
    #[must_use]
    pub fn run(&self) -> SimReport {
        let cfg = &self.config;
        let replicas = cfg.replicas.max(1);
        let clients_per_replica = cfg.workload.clients_per_replica.max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Resources.
        let mut replica_cpu: Vec<FifoServer> = vec![FifoServer::new(); replicas];
        let mut replica_disk: Vec<GroupCommitDisk> =
            vec![GroupCommitDisk::new(cfg.fsync); replicas];
        let mut certifier_cpu = FifoServer::new();
        let mut certifier_disk = GroupCommitDisk::new(cfg.fsync);

        // Global protocol state.
        let mut system_version: u64 = 0;
        let mut replica_version: Vec<u64> = vec![0; replicas];

        // Measurement state.
        let horizon = cfg.warmup + cfg.duration;
        let mut stats = RunStats::new();
        stats.elapsed = Duration::from_secs_f64(cfg.duration);
        let mut latency = LatencyHistogram::new();
        let mut ro_latency = LatencyHistogram::new();
        let mut upd_latency = LatencyHistogram::new();

        // Transactions in flight (indexed arena) and the event queue.
        let mut txns: Vec<Txn> = Vec::new();
        let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq: u64 = 0;

        let mut schedule = |events: &mut BinaryHeap<Reverse<Event>>, time: f64, txn: usize| {
            seq += 1;
            events.push(Reverse(Event { time, seq, txn }));
        };

        // One initial submission per client, staggered slightly so the
        // start-up transient is not perfectly synchronised.
        for replica in 0..replicas {
            for client in 0..clients_per_replica {
                let txn_index = txns.len();
                let jitter = rng.gen::<f64>() * 0.002;
                txns.push(Txn {
                    client,
                    replica,
                    is_update: rng.gen::<f64>() < cfg.workload.update_fraction,
                    submit_time: jitter,
                    aborted: false,
                    remote_count: 0,
                    artificial_conflict: false,
                    stage: Stage::Execute,
                });
                schedule(&mut events, jitter, txn_index);
            }
        }

        while let Some(Reverse(event)) = events.pop() {
            let now = event.time;
            if now > horizon {
                break;
            }
            let txn_index = event.txn;
            let (stage, replica) = {
                let txn = &txns[txn_index];
                (txn.stage, txn.replica)
            };
            match stage {
                Stage::Execute => {
                    // Local execution on the replica CPU.  Shared IO channels
                    // also absorb the transaction's non-logging IO here.
                    if cfg.io_mode == IoChannelMode::Shared {
                        replica_disk[replica].occupy(now, cfg.workload.shared_io_per_txn);
                    }
                    let done = replica_cpu[replica].request(now, cfg.workload.cpu_execute);
                    let txn = &mut txns[txn_index];
                    if txn.is_update {
                        txn.stage = Stage::Certify;
                        schedule(&mut events, done + cfg.network_one_way, txn_index);
                    } else {
                        txn.stage = Stage::Done;
                        schedule(&mut events, done, txn_index);
                    }
                }
                Stage::Certify => {
                    // Certifier CPU: intersection test.
                    let done = certifier_cpu.request(now, cfg.workload.cpu_certify);
                    // Certification outcome and version bookkeeping.
                    let aborted = rng.gen::<f64>() < cfg.workload.conflict_rate
                        || rng.gen::<f64>() < cfg.forced_abort_rate;
                    let remote_count = system_version.saturating_sub(replica_version[replica]);
                    if !aborted {
                        system_version += 1;
                    }
                    replica_version[replica] = system_version;
                    let artificial = remote_count >= 2
                        && rng.gen::<f64>() < cfg.workload.artificial_conflict_rate;
                    {
                        let txn = &mut txns[txn_index];
                        txn.aborted = aborted;
                        txn.remote_count = remote_count;
                        txn.artificial_conflict = artificial;
                    }
                    // Certifier durability: committed writesets are logged
                    // with a group-committed fsync before the reply.
                    if cfg.system.certifier_durable() && !aborted {
                        let flush_done = certifier_disk.flush_grouped(done, 1);
                        txns[txn_index].stage = Stage::CertifierFlush;
                        schedule(&mut events, flush_done, txn_index);
                    } else {
                        txns[txn_index].stage = Stage::CertifierFlush;
                        schedule(&mut events, done, txn_index);
                    }
                }
                Stage::CertifierFlush => {
                    // Response travels back to the replica.
                    txns[txn_index].stage = Stage::Apply;
                    schedule(&mut events, now + cfg.network_one_way, txn_index);
                }
                Stage::Apply => {
                    // Apply remote writesets on the replica CPU.  When the
                    // database itself is durable (Base, Tashkent-API) every
                    // commit record written locally also pays the engine's
                    // commit-path overhead (WAL insertion, page images).
                    let remote_count = txns[txn_index].remote_count;
                    let records_overhead = if cfg.system.database_durable() {
                        let records =
                            remote_count + u64::from(!txns[txn_index].aborted);
                        records as f64 * cfg.workload.wal_record_io
                    } else {
                        0.0
                    };
                    let apply_cpu = cfg.workload.cpu_apply_writeset * remote_count as f64
                        + records_overhead;
                    let done = replica_cpu[replica].request(now, apply_cpu);
                    let txn_aborted = txns[txn_index].aborted;
                    let artificial = txns[txn_index].artificial_conflict;
                    match cfg.system {
                        SystemKind::TashkentMw => {
                            // Commits are in-memory: no synchronous writes.
                            txns[txn_index].stage = Stage::Done;
                            schedule(&mut events, done, txn_index);
                        }
                        SystemKind::Base => {
                            // Serial commits: one fsync for the grouped
                            // remote writesets (if any), then one for the
                            // local commit (if certified).
                            if remote_count > 0 {
                                let flush = replica_disk[replica].flush_serial(done);
                                txns[txn_index].stage = if txn_aborted {
                                    Stage::Done
                                } else {
                                    Stage::ReplicaFlush1
                                };
                                schedule(&mut events, flush, txn_index);
                            } else if !txn_aborted {
                                let flush = replica_disk[replica].flush_serial(done);
                                txns[txn_index].stage = Stage::Done;
                                schedule(&mut events, flush, txn_index);
                            } else {
                                txns[txn_index].stage = Stage::Done;
                                schedule(&mut events, done, txn_index);
                            }
                        }
                        SystemKind::TashkentApi | SystemKind::TashkentApiNoCertDurability => {
                            // Remote writesets and the local commit share one
                            // group-committed flush; an artificial conflict
                            // forces an extra serialised flush.
                            let records = remote_count + u64::from(!txn_aborted);
                            if records == 0 {
                                txns[txn_index].stage = Stage::Done;
                                schedule(&mut events, done, txn_index);
                            } else {
                                let flush = replica_disk[replica].flush_grouped(done, records);
                                txns[txn_index].stage = if artificial {
                                    Stage::ReplicaFlush2
                                } else {
                                    Stage::Done
                                };
                                schedule(&mut events, flush, txn_index);
                            }
                        }
                    }
                }
                Stage::ReplicaFlush1 => {
                    // Base only: the local commit's own fsync, strictly after
                    // the remote-group fsync completed.
                    let flush = replica_disk[replica].flush_serial(now);
                    txns[txn_index].stage = Stage::Done;
                    schedule(&mut events, flush, txn_index);
                }
                Stage::ReplicaFlush2 => {
                    // Tashkent-API with an artificial conflict: the
                    // conflicting remote writeset (and anything after it)
                    // needs a second, serialised flush.
                    let flush = replica_disk[replica].flush_grouped(now, 1);
                    txns[txn_index].stage = Stage::Done;
                    schedule(&mut events, flush, txn_index);
                }
                Stage::Done => {
                    // Record the finished transaction and start the client's
                    // next one (closed loop, back-to-back).
                    let (client, submit_time, is_update, aborted) = {
                        let txn = &txns[txn_index];
                        (txn.client, txn.submit_time, txn.is_update, txn.aborted)
                    };
                    if submit_time >= cfg.warmup && now <= horizon {
                        let response = Duration::from_secs_f64(now - submit_time);
                        if aborted {
                            stats.aborted += 1;
                        } else {
                            stats.committed += 1;
                            latency.record(response);
                            if is_update {
                                upd_latency.record(response);
                            } else {
                                stats.read_only += 1;
                                ro_latency.record(response);
                            }
                        }
                    }
                    let next_index = txns.len();
                    txns.push(Txn {
                        client,
                        replica,
                        is_update: rng.gen::<f64>() < cfg.workload.update_fraction,
                        submit_time: now,
                        aborted: false,
                        remote_count: 0,
                        artificial_conflict: false,
                        stage: Stage::Execute,
                    });
                    schedule(&mut events, now, next_index);
                }
            }
        }

        certifier_disk.finish();
        for disk in &mut replica_disk {
            disk.finish();
        }

        let throughput = stats.committed as f64 / cfg.duration;
        let abort_rate = stats.abort_rate();
        stats.latency = latency;
        stats.read_only_latency = ro_latency;
        stats.update_latency = upd_latency;
        stats.certifier_group_commit = certifier_disk.stats().clone();
        stats.replica_group_commit = replica_disk[0].stats().clone();

        SimReport {
            throughput,
            response_time_ms: stats.latency.mean().as_secs_f64() * 1000.0,
            read_only_response_time_ms: stats.read_only_latency.mean().as_secs_f64() * 1000.0,
            update_response_time_ms: stats.update_latency.mean().as_secs_f64() * 1000.0,
            certifier_group_size: certifier_disk.stats().mean_group_size(),
            certifier_disk_utilisation: certifier_disk.utilisation(horizon),
            certifier_cpu_utilisation: certifier_cpu.utilisation(horizon),
            replica_group_size: replica_disk[0].stats().mean_group_size(),
            abort_rate,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(system: SystemKind, replicas: usize, io: IoChannelMode) -> SimReport {
        Simulator::new(SimConfig {
            duration: 10.0,
            warmup: 1.0,
            ..SimConfig::paper(system, replicas, WorkloadProfile::all_updates(), io)
        })
        .run()
    }

    #[test]
    fn base_throughput_is_limited_by_serial_fsyncs() {
        let report = run(SystemKind::Base, 1, IoChannelMode::Dedicated);
        // One replica, no remote writesets: one 8 ms fsync per commit caps
        // throughput at 125/s.
        assert!(
            report.throughput > 90.0 && report.throughput < 130.0,
            "throughput {}",
            report.throughput
        );
        let report = run(SystemKind::Base, 2, IoChannelMode::Dedicated);
        // With remote writesets, two fsyncs per local commit: ~62/s/replica.
        let per_replica = report.throughput / 2.0;
        assert!(
            per_replica > 40.0 && per_replica < 80.0,
            "per-replica {per_replica}"
        );
    }

    #[test]
    fn tashkent_mw_scales_far_beyond_base() {
        let base = run(SystemKind::Base, 15, IoChannelMode::Dedicated);
        let mw = run(SystemKind::TashkentMw, 15, IoChannelMode::Dedicated);
        let api = run(SystemKind::TashkentApi, 15, IoChannelMode::Dedicated);
        assert!(
            mw.throughput > 3.0 * base.throughput,
            "MW {} vs Base {}",
            mw.throughput,
            base.throughput
        );
        assert!(
            api.throughput > 2.0 * base.throughput,
            "API {} vs Base {}",
            api.throughput,
            base.throughput
        );
        // MW beats API: the certifier fsync sits in API's critical path and
        // the replica WAL (page images) consumes log-channel bandwidth.
        assert!(mw.throughput >= api.throughput);
        // Response times order the same way.
        assert!(mw.response_time_ms < base.response_time_ms);
    }

    #[test]
    fn certifier_groups_many_writesets_per_fsync_at_scale() {
        let report = run(SystemKind::TashkentMw, 15, IoChannelMode::Dedicated);
        assert!(
            report.certifier_group_size > 10.0,
            "group size {}",
            report.certifier_group_size
        );
        assert!(report.certifier_disk_utilisation < 1.0);
        assert!(report.certifier_cpu_utilisation < 0.5);
    }

    #[test]
    fn forced_aborts_reduce_goodput_but_preserve_ordering() {
        let clean = run(SystemKind::TashkentMw, 8, IoChannelMode::Dedicated);
        let noisy = Simulator::new(SimConfig {
            forced_abort_rate: 0.4,
            duration: 10.0,
            warmup: 1.0,
            ..SimConfig::paper(
                SystemKind::TashkentMw,
                8,
                WorkloadProfile::all_updates(),
                IoChannelMode::Dedicated,
            )
        })
        .run();
        assert!(noisy.abort_rate > 0.3 && noisy.abort_rate < 0.5);
        assert!(noisy.throughput < clean.throughput);
        // Even at 40 % aborts the goodput stays well above half of clean.
        assert!(noisy.throughput > 0.4 * clean.throughput);
    }

    #[test]
    fn read_only_transactions_dominate_tpcw_and_never_wait_for_certification() {
        let report = Simulator::new(SimConfig {
            duration: 20.0,
            warmup: 2.0,
            ..SimConfig::paper(
                SystemKind::TashkentMw,
                4,
                WorkloadProfile::tpcw_shopping(),
                IoChannelMode::Shared,
            )
        })
        .run();
        assert!(report.stats.read_only > report.stats.committed / 2);
        assert!(report.read_only_response_time_ms <= report.update_response_time_ms);
    }

    #[test]
    fn standalone_configuration_matches_one_replica_mw_closely() {
        let standalone = Simulator::new(SimConfig {
            duration: 10.0,
            warmup: 1.0,
            ..SimConfig::standalone(WorkloadProfile::all_updates(), IoChannelMode::Dedicated)
        })
        .run();
        let one_mw = Simulator::new(SimConfig {
            duration: 10.0,
            warmup: 1.0,
            ..SimConfig::paper(
                SystemKind::TashkentMw,
                1,
                WorkloadProfile::all_updates(),
                IoChannelMode::Dedicated,
            )
        })
        .run();
        // The replication middleware should not cost much (Section 9.2
        // reports 517 vs 490 req/s).  In the virtual-time model the 1-replica
        // Tashkent-MW system can come out slightly ahead because its group
        // commits happen at the certifier disk, which phase-locks a little
        // better than the standalone replica disk; we only require the two to
        // stay in the same ballpark.
        let ratio = one_mw.throughput / standalone.throughput;
        assert!(ratio > 0.8 && ratio < 1.5, "ratio {ratio}");
    }

    #[test]
    fn simulation_is_deterministic_for_a_fixed_seed() {
        let a = run(SystemKind::TashkentApi, 5, IoChannelMode::Shared);
        let b = run(SystemKind::TashkentApi, 5, IoChannelMode::Shared);
        assert_eq!(a.stats.committed, b.stats.committed);
        assert_eq!(a.stats.aborted, b.stats.aborted);
        assert!((a.throughput - b.throughput).abs() < f64::EPSILON);
    }
}
