//! The sharded certifier's correctness anchor: on any serial trace of
//! certification requests it must be decision-for-decision identical to the
//! unsharded [`Certifier`] — same commit/abort decisions, same commit
//! versions, same remote-writeset version streams, same final system
//! version.  With `shards == 1` the two are the same algorithm; with more
//! shards the trace is still serial here, so the ordered two-phase certify
//! must collapse to the same global outcome.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_certifier::{
    CertificationRequest, Certifier, CertifierConfig, ShardedCertifier, ShardedCertifierConfig,
};
use tashkent_common::{ReplicaId, TableId, Value, Version, WriteItem, WriteSet};

/// A randomized writeset: 1–6 items over 4 tables and a smallish key space,
/// so the trace has real conflicts, multi-shard writesets and repeats.
fn random_writeset(rng: &mut StdRng) -> WriteSet {
    let items = rng.gen_range(1..=6);
    WriteSet::from_items(
        (0..items)
            .map(|_| {
                let table = TableId(rng.gen_range(0..4));
                let key = rng.gen_range(0..64i64);
                WriteItem::update(table, key, vec![("c".into(), Value::Int(key))])
            })
            .collect(),
    )
}

/// Replays one randomized trace against a reference and a candidate
/// certifier, asserting identical behaviour request by request.
fn assert_equivalent(reference: &Certifier, candidate: &ShardedCertifier, seed: u64, trace: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..trace {
        // Both certifiers must agree on the system version at every step, so
        // deriving the request's versions from the reference keeps the two
        // replays in lockstep.
        let system = reference.system_version();
        assert_eq!(candidate.system_version(), system, "step {step}");
        let lag = rng.gen_range(0..4u64).min(system.value());
        let start_version = Version(system.value() - lag);
        let replica_lag = rng.gen_range(0..6u64).min(system.value());
        let request = CertificationRequest {
            replica: ReplicaId(rng.gen_range(0..3)),
            start_version,
            writeset: random_writeset(&mut rng),
            replica_version: Version(system.value() - replica_lag),
        };
        let expected = reference.certify(&request).unwrap();
        let actual = candidate.certify(&request).unwrap();
        assert_eq!(
            expected.decision.is_commit(),
            actual.decision.is_commit(),
            "step {step}: {:?} vs {:?}",
            expected.decision,
            actual.decision
        );
        assert_eq!(expected.commit_version, actual.commit_version, "step {step}");
        assert_eq!(expected.system_version, actual.system_version, "step {step}");
        // Compare the full remote tuple including `conflict_free_to`: it
        // drives Tashkent-API's artificial-conflict detection, and under
        // sharding it comes from the max-over-owning-shards merge — exactly
        // the piece a regression would silently break.
        let expected_remotes: Vec<(u64, usize, u64)> = expected
            .remote_writesets
            .iter()
            .map(|r| (r.commit_version.value(), r.writeset.len(), r.conflict_free_to.value()))
            .collect();
        let actual_remotes: Vec<(u64, usize, u64)> = actual
            .remote_writesets
            .iter()
            .map(|r| (r.commit_version.value(), r.writeset.len(), r.conflict_free_to.value()))
            .collect();
        assert_eq!(expected_remotes, actual_remotes, "step {step}");
    }
    // The full replicated streams agree from any starting point, including
    // each entry's extended-certification bound.
    for since in [0, 5, trace as u64 / 2] {
        let expected: Vec<(u64, u64)> = reference
            .writesets_after(Version(since))
            .iter()
            .map(|r| (r.commit_version.value(), r.conflict_free_to.value()))
            .collect();
        let actual: Vec<(u64, u64)> = candidate
            .writesets_after(Version(since))
            .iter()
            .map(|r| (r.commit_version.value(), r.conflict_free_to.value()))
            .collect();
        assert_eq!(expected, actual, "writesets_after({since})");
    }
    let reference_stats = reference.stats();
    let candidate_stats = candidate.stats();
    assert_eq!(reference_stats.commits, candidate_stats.commits);
    assert_eq!(reference_stats.conflict_aborts, candidate_stats.conflict_aborts);
    assert_eq!(reference_stats.forced_aborts, candidate_stats.forced_aborts);
}

fn run(shards: usize, forced_abort_rate: f64, seed: u64) {
    let base = CertifierConfig {
        forced_abort_rate,
        ..CertifierConfig::default()
    };
    let reference = Certifier::new(base.clone());
    let candidate = ShardedCertifier::new(ShardedCertifierConfig { shards, base });
    assert_equivalent(&reference, &candidate, seed, 400);
}

#[test]
fn single_shard_is_decision_identical_to_the_certifier() {
    run(1, 0.0, 0xE1);
}

#[test]
fn two_and_four_shards_match_on_a_serial_trace() {
    run(2, 0.0, 0xE2);
    run(4, 0.0, 0xE3);
}

#[test]
fn forced_aborts_stay_in_lockstep() {
    // The forced-abort RNG is drawn once per surviving request in both
    // implementations, so with identical seeds the draw sequences — and the
    // abort pattern — must coincide.
    run(1, 0.15, 0xE4);
    run(4, 0.15, 0xE5);
}

#[test]
fn conflict_abort_reasons_name_the_oldest_conflict() {
    // Beyond decisions: the reported conflict version matches the unsharded
    // forward scan (the oldest conflicting entry), even across shards.
    let reference = Certifier::new(CertifierConfig::default());
    let candidate = ShardedCertifier::new(ShardedCertifierConfig::with_shards(4));
    let mut rng = StdRng::seed_from_u64(0xE6);
    for _ in 0..200 {
        let system = reference.system_version();
        let request = CertificationRequest {
            replica: ReplicaId(0),
            start_version: Version(system.value().saturating_sub(rng.gen_range(0..5))),
            writeset: random_writeset(&mut rng),
            replica_version: system,
        };
        let expected = reference.certify(&request).unwrap();
        let actual = candidate.certify(&request).unwrap();
        match (&expected.decision, &actual.decision) {
            (
                tashkent_certifier::CertificationDecision::Abort { reason: a, .. },
                tashkent_certifier::CertificationDecision::Abort { reason: b, .. },
            ) => assert_eq!(a, b),
            (a, b) => assert_eq!(a.is_commit(), b.is_commit(), "{a:?} vs {b:?}"),
        }
    }
}
