//! The batched certifier's correctness anchors.
//!
//! 1. **Decision equivalence**: on any trace of certification requests the
//!    batched, pre-screened path (`batch: true`, the default) must be
//!    decision-for-decision identical to the serial scan (`batch: false`) —
//!    same commit/abort decisions, same commit versions, same remote-writeset
//!    streams (including `conflict_free_to` bounds), same forced-abort
//!    pattern (the RNG is drawn once per surviving request in both paths, so
//!    equal seeds must produce equal draw sequences).  Checked for the
//!    unsharded [`Certifier`] and for the [`ShardedCertifier`] at 1, 2 and 4
//!    shards.
//! 2. **Pre-screen soundness**: whenever the footprint index declares a
//!    writeset clear ([`CertifierLog::prescreen_clear`]), the full suffix
//!    scan ([`CertifierLog::conflict_after`]) must find nothing — a screened
//!    -out writeset never conflicts with anything in the window.  Collisions
//!    may force spurious scans; the reverse direction is deliberately not
//!    asserted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_certifier::{
    CertificationRequest, Certifier, CertifierConfig, CertifierLog, ShardedCertifier,
    ShardedCertifierConfig,
};
use tashkent_common::{ReplicaId, TableId, Value, Version, WriteItem, WriteSet};

/// A randomized writeset: 1–6 items over 4 tables and a smallish key space,
/// so traces carry real conflicts, repeats and (under sharding) multi-shard
/// writesets.
fn random_writeset(rng: &mut StdRng) -> WriteSet {
    let items = rng.gen_range(1..=6);
    WriteSet::from_items(
        (0..items)
            .map(|_| {
                let table = TableId(rng.gen_range(0..4));
                let key = rng.gen_range(0..64i64);
                WriteItem::update(table, key, vec![("c".into(), Value::Int(key))])
            })
            .collect(),
    )
}

/// One randomized request derived from the current system version, identical
/// on both sides as long as the two replays stay in version lockstep.
fn random_request(rng: &mut StdRng, system: Version) -> CertificationRequest {
    let lag = rng.gen_range(0..4u64).min(system.value());
    let replica_lag = rng.gen_range(0..6u64).min(system.value());
    CertificationRequest {
        replica: ReplicaId(rng.gen_range(0..3)),
        start_version: Version(system.value() - lag),
        writeset: random_writeset(rng),
        replica_version: Version(system.value() - replica_lag),
    }
}

/// The comparable projection of a response: commit?, commit version,
/// system version, and (version, writeset len, source) per remote writeset.
type ResponseDigest = (bool, Option<u64>, u64, Vec<(u64, usize, u64)>);

fn digest(response: &tashkent_certifier::CertificationResponse) -> ResponseDigest {
    (
        response.decision.is_commit(),
        response.commit_version.map(Version::value),
        response.system_version.value(),
        response
            .remote_writesets
            .iter()
            .map(|r| {
                (
                    r.commit_version.value(),
                    r.writeset.len(),
                    r.conflict_free_to.value(),
                )
            })
            .collect(),
    )
}

fn unsharded_pair(forced_abort_rate: f64) -> (Certifier, Certifier) {
    let base = CertifierConfig {
        forced_abort_rate,
        ..CertifierConfig::default()
    };
    (
        Certifier::new(CertifierConfig {
            batch: false,
            ..base.clone()
        }),
        Certifier::new(CertifierConfig { batch: true, ..base }),
    )
}

fn sharded_pair(shards: usize, forced_abort_rate: f64) -> (ShardedCertifier, ShardedCertifier) {
    let base = CertifierConfig {
        forced_abort_rate,
        ..CertifierConfig::default()
    };
    (
        ShardedCertifier::new(ShardedCertifierConfig {
            shards,
            base: CertifierConfig {
                batch: false,
                ..base.clone()
            },
        }),
        ShardedCertifier::new(ShardedCertifierConfig {
            shards,
            base: CertifierConfig { batch: true, ..base },
        }),
    )
}

fn assert_unsharded_equivalent(forced_abort_rate: f64, seed: u64, trace: usize) {
    let (serial, batched) = unsharded_pair(forced_abort_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..trace {
        let system = serial.system_version();
        assert_eq!(batched.system_version(), system, "step {step}");
        let request = random_request(&mut rng, system);
        let expected = serial.certify(&request).unwrap();
        let actual = batched.certify(&request).unwrap();
        assert_eq!(digest(&expected), digest(&actual), "step {step}");
    }
    let expected = serial.stats();
    let actual = batched.stats();
    assert_eq!(expected.commits, actual.commits);
    assert_eq!(expected.conflict_aborts, actual.conflict_aborts);
    assert_eq!(expected.forced_aborts, actual.forced_aborts);
    assert_eq!(expected.requests, actual.requests);
}

fn assert_sharded_equivalent(shards: usize, forced_abort_rate: f64, seed: u64, trace: usize) {
    let (serial, batched) = sharded_pair(shards, forced_abort_rate);
    let mut rng = StdRng::seed_from_u64(seed);
    for step in 0..trace {
        let system = serial.system_version();
        assert_eq!(batched.system_version(), system, "step {step}");
        let request = random_request(&mut rng, system);
        let expected = serial.certify(&request).unwrap();
        let actual = batched.certify(&request).unwrap();
        assert_eq!(digest(&expected), digest(&actual), "shards {shards} step {step}");
    }
    let expected = serial.stats();
    let actual = batched.stats();
    assert_eq!(expected.commits, actual.commits);
    assert_eq!(expected.conflict_aborts, actual.conflict_aborts);
    assert_eq!(expected.forced_aborts, actual.forced_aborts);
    assert_eq!(expected.requests, actual.requests);
}

#[test]
fn batched_certifier_matches_the_serial_scan() {
    assert_unsharded_equivalent(0.0, 0xB1, 400);
}

#[test]
fn batched_certifier_forced_aborts_stay_in_rng_lockstep() {
    assert_unsharded_equivalent(0.15, 0xB2, 400);
}

#[test]
fn batched_sharded_certifier_matches_the_serial_scan() {
    for (shards, seed) in [(1usize, 0xB3u64), (2, 0xB4), (4, 0xB5)] {
        assert_sharded_equivalent(shards, 0.0, seed, 400);
    }
}

#[test]
fn batched_sharded_forced_aborts_stay_in_rng_lockstep() {
    for (shards, seed) in [(1usize, 0xB6u64), (2, 0xB7), (4, 0xB8)] {
        assert_sharded_equivalent(shards, 0.15, seed, 400);
    }
}

#[test]
fn equivalence_holds_across_truncation_floors() {
    // Truncation rebuilds the pre-screen index; decisions — including the
    // conservative below-floor aborts — must stay identical afterwards.
    let (serial, batched) = unsharded_pair(0.0);
    let mut rng = StdRng::seed_from_u64(0xB9);
    for _ in 0..120 {
        let request = random_request(&mut rng, serial.system_version());
        let expected = serial.certify(&request).unwrap();
        let actual = batched.certify(&request).unwrap();
        assert_eq!(digest(&expected), digest(&actual));
    }
    let watermark = Version(serial.system_version().value() / 2);
    serial.seal_checkpoint();
    batched.seal_checkpoint();
    serial.truncate_below(watermark).unwrap();
    batched.truncate_below(watermark).unwrap();
    assert_eq!(serial.truncation_floor(), batched.truncation_floor());
    for step in 0..200 {
        let system = serial.system_version();
        let request = random_request(&mut rng, system);
        let expected = serial.certify(&request).unwrap();
        let actual = batched.certify(&request).unwrap();
        assert_eq!(digest(&expected), digest(&actual), "post-truncation step {step}");
    }
}

#[test]
fn prescreen_clear_implies_no_conflict() {
    // Soundness on randomized windows: a writeset the index screens out must
    // also pass the full scan, from every probed snapshot version.
    let mut rng = StdRng::seed_from_u64(0xBA);
    for round in 0..20 {
        let mut log = CertifierLog::new();
        let mut version = Version::ZERO;
        for _ in 0..rng.gen_range(20..200) {
            let start = Version(version.value().saturating_sub(rng.gen_range(0..8)));
            version = log.append(random_writeset(&mut rng), start);
        }
        if round % 3 == 2 {
            // Exercise the rebuilt-after-truncation index too.
            log.truncate_up_to(Version(version.value() / 2));
        }
        let mut screened_out = 0u32;
        for probe in 0..300 {
            let writeset = random_writeset(&mut rng);
            let start =
                Version(rng.gen_range(log.floor().value()..=log.system_version().value()));
            if log.prescreen_clear(&writeset, start) {
                screened_out += 1;
                assert_eq!(
                    log.conflict_after(&writeset, start),
                    None,
                    "round {round} probe {probe}: pre-screen declared clear but the \
                     scan found a conflict"
                );
            }
        }
        // The key space (4 tables × 64 keys) is far below the bucket count,
        // so clear probes must actually occur — otherwise this test would
        // silently assert nothing.
        assert!(screened_out > 0, "round {round}: no probe was screened out");
    }
}

#[test]
fn prescreen_never_misses_a_known_conflict() {
    // Directed version of soundness: append a writeset, then probe the very
    // same footprint from an older snapshot — the pre-screen must demand a
    // scan (and the scan must find the conflict).
    let mut log = CertifierLog::new();
    let mut rng = StdRng::seed_from_u64(0xBB);
    for _ in 0..100 {
        let writeset = random_writeset(&mut rng);
        let snapshot = log.system_version();
        let committed = log.append(writeset.clone(), snapshot);
        assert!(
            !log.prescreen_clear(&writeset, snapshot),
            "footprint committed at {committed} must not be screened out at {snapshot}"
        );
        assert_eq!(log.conflict_after(&writeset, snapshot), Some(committed));
    }
}
