//! The GSI certifier of the Tashkent reproduction.
//!
//! The certifier is the replication middleware component that receives
//! certification requests from every replica's proxy, detects write-write
//! conflicts by intersecting writesets, assigns the global total order of
//! update-transaction commits, and records certified writesets in a
//! persistent log (Sections 4.2 and 6.1 of the paper).
//!
//! Its persistent log plays a double role:
//!
//! * in every system it allows the certifier itself to recover (crash-recovery
//!   model), and
//! * in **Tashkent-MW** it *is* the durable copy of every committed update
//!   transaction, because the replicas run with synchronous WAL writes
//!   disabled.
//!
//! The certifier is replicated for availability across a small group of
//! nodes using a Paxos-style majority protocol ([`paxos`]): the leader
//! certifies, ships the new log entries to all certifier nodes, and declares
//! transactions committed once a majority has written them to disk
//! (Section 7.3).
//!
//! Modules:
//!
//! * [`batch`] — the leader–follower epoch queue behind batched
//!   certification: concurrent requests are drained in epochs and certified
//!   in one pass (one lock acquisition, one log traversal, one grouped
//!   durable append), with decisions identical to the serial scan.
//! * [`log`] — the in-memory certified-writeset log with cached footprints,
//!   suffix conflict checks and the extended ("how far back is this writeset
//!   conflict-free") queries needed by Tashkent-API.
//! * [`paxos`] — the replicated durable log: leader, majority
//!   acknowledgement, node crash / recovery / state transfer.
//! * [`certifier`] — the [`certifier::Certifier`] façade used by proxies.
//! * [`sharded`] — the [`sharded::ShardedCertifier`]: N independent
//!   certification shards (each with its own replicated durable log) behind
//!   a global commit-version sequencer, so intersection work scales beyond
//!   one thread while replicas still see one totally-ordered stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod certifier;
pub mod log;
pub mod paxos;
pub mod sharded;

pub use batch::{EpochQueue, Slot};
pub use certifier::{
    CertificationDecision, CertificationRequest, CertificationResponse, Certifier, CertifierConfig,
    CertifierStats, RemoteWriteSet,
};
pub use log::CertifierLog;
pub use paxos::{CertifierNodeId, ReplicatedLog, ReplicatedLogStats};
pub use sharded::{
    merge_shard_streams, ShardStream, ShardedCertifier, ShardedCertifierConfig,
    ShardedCertifierStats,
};
