//! Leader–follower epoch batching for certification.
//!
//! Callers submit their request to an [`EpochQueue`] and block until a
//! decision is available.  Whichever caller finds the leader slot free
//! becomes the *epoch leader*: it drains everything queued so far (an
//! *epoch*, in arrival order), runs the shared processing closure over the
//! whole epoch — one lock acquisition, one log traversal, one grouped
//! durable append — and fills each request's outcome slot.  The leader keeps
//! draining until the queue is empty, so every queued request is decided by
//! some epoch; followers wake when their slot fills, or grab leadership
//! themselves after a short timeout if the previous leader quit first.
//!
//! The queue imposes **arrival order within an epoch**, which is what keeps
//! batched certification decision-identical to the serial scan: processing
//! an epoch `[a, b, c]` with each decision visible to its successors is
//! indistinguishable from `a`, `b`, `c` arriving serially.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// How long a follower waits for its outcome before re-contending for
/// leadership (covers the race where the previous leader drained its final
/// epoch just before this request was enqueued).
const FOLLOWER_RECHECK: Duration = Duration::from_millis(1);

/// One request's outcome cell.
pub struct Slot<O> {
    outcome: Mutex<Option<O>>,
    ready: Condvar,
}

impl<O> Slot<O> {
    fn new() -> Self {
        Slot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Delivers the outcome and wakes the submitting caller.
    pub fn fill(&self, outcome: O) {
        *self.outcome.lock() = Some(outcome);
        self.ready.notify_all();
    }

    fn take(&self) -> Option<O> {
        self.outcome.lock().take()
    }

    fn wait(&self) -> Option<O> {
        let mut guard = self.outcome.lock();
        if guard.is_none() {
            self.ready.wait_for(&mut guard, FOLLOWER_RECHECK);
        }
        guard.take()
    }
}

/// A queue of pending requests drained in epochs by an elected leader.
pub struct EpochQueue<R, O> {
    pending: Mutex<VecDeque<(R, Arc<Slot<O>>)>>,
    leader: Mutex<()>,
}

impl<R, O> Default for EpochQueue<R, O> {
    fn default() -> Self {
        EpochQueue::new()
    }
}

impl<R, O> EpochQueue<R, O> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EpochQueue {
            pending: Mutex::new(VecDeque::new()),
            leader: Mutex::new(()),
        }
    }

    /// Submits one request and blocks until its outcome is decided.
    ///
    /// `process` runs on whichever submitting thread holds leadership, once
    /// per drained epoch, and must fill **every** slot it is handed (the
    /// fairness contract: a leader decides for its followers).  Because the
    /// submitting slot is enqueued *before* leadership is contended, the
    /// drain-until-empty loop guarantees it is filled by the time leadership
    /// is released.
    pub fn submit(&self, request: R, process: impl Fn(Vec<(R, Arc<Slot<O>>)>)) -> O {
        let slot = Arc::new(Slot::new());
        self.pending.lock().push_back((request, Arc::clone(&slot)));
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            if let Some(_leadership) = self.leader.try_lock() {
                loop {
                    let epoch: Vec<(R, Arc<Slot<O>>)> = {
                        let mut pending = self.pending.lock();
                        pending.drain(..).collect()
                    };
                    if epoch.is_empty() {
                        break;
                    }
                    process(epoch);
                }
            } else if let Some(outcome) = slot.wait() {
                return outcome;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn single_submitter_leads_its_own_epoch() {
        let queue: EpochQueue<u32, u32> = EpochQueue::new();
        let epochs = AtomicUsize::new(0);
        let out = queue.submit(7, |epoch| {
            epochs.fetch_add(1, Ordering::SeqCst);
            assert_eq!(epoch.len(), 1);
            for (request, slot) in epoch {
                slot.fill(request * 2);
            }
        });
        assert_eq!(out, 14);
        assert_eq!(epochs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_submitters_all_get_their_own_outcome() {
        let queue: Arc<EpochQueue<u64, u64>> = Arc::new(EpochQueue::new());
        let max_epoch = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for worker in 0..8u64 {
                let queue = Arc::clone(&queue);
                let max_epoch = Arc::clone(&max_epoch);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let request = worker * 1000 + i;
                        let out = queue.submit(request, |epoch| {
                            max_epoch.fetch_max(epoch.len(), Ordering::SeqCst);
                            for (r, slot) in epoch {
                                slot.fill(r + 1);
                            }
                        });
                        assert_eq!(out, request + 1, "outcomes must not cross requests");
                    }
                });
            }
        });
        // Under contention at least one epoch should have batched more than
        // one request (not asserted strictly — scheduling-dependent — but
        // recorded so a degenerate run is visible in test output).
        eprintln!("max epoch size: {}", max_epoch.load(Ordering::SeqCst));
    }
}
