//! Certifier replication: a Paxos-style replicated durable log.
//!
//! Section 7.3 of the paper replicates the certifier state across a small set
//! of nodes for availability: a leader receives all certification requests,
//! selects the transactions that may commit, sends the new log records to all
//! certifier nodes (including itself), and declares the transactions
//! committed once a **majority** of nodes have written the records to disk.
//! When the leader crashes a new leader is elected; a recovering node obtains
//! the missing log suffix from an up node via a state transfer.
//!
//! [`ReplicatedLog`] implements exactly that behaviour in-process: each node
//! owns its own simulated disk, appends are acknowledged only when durable,
//! and progress requires a majority of nodes up.  The group-commit batching
//! of the underlying [`WalWriter`] is what gives the certifier its "single
//! writer thread … batches all outstanding writesets to disk via a single
//! fsync" efficiency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tashkent_common::{Error, GroupCommitStats, Result, Version, WriteSet};
use tashkent_storage::disk::{DiskConfig, LogDevice, SimulatedDisk};
use tashkent_storage::wal::{WalRecord, WalWriter};

/// Identifier of one certifier node within the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CertifierNodeId(pub u32);

impl std::fmt::Display for CertifierNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certifier-{}", self.0)
    }
}

struct Node {
    id: CertifierNodeId,
    device: Arc<SimulatedDisk>,
    wal: WalWriter,
    up: AtomicBool,
}

impl Node {
    fn new(id: CertifierNodeId, disk: DiskConfig) -> Self {
        let device = Arc::new(SimulatedDisk::new(disk));
        let wal = WalWriter::new(device.clone() as Arc<dyn LogDevice>);
        Node {
            id,
            device,
            wal,
            up: AtomicBool::new(true),
        }
    }

    fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }
}

/// Statistics of the replicated certifier log.
#[derive(Debug, Clone, Default)]
pub struct ReplicatedLogStats {
    /// Log entries appended (committed writesets).
    pub entries: u64,
    /// fsync operations performed by the current leader's disk.
    pub leader_fsyncs: u64,
    /// Group-commit behaviour of the current leader's disk: the paper's
    /// "writesets per fsync".
    pub leader_group_commit: GroupCommitStats,
    /// Bytes durable on the current leader's disk.
    pub leader_log_bytes: u64,
    /// Number of nodes currently up.
    pub nodes_up: usize,
    /// Total nodes in the group.
    pub nodes_total: usize,
}

/// A majority-replicated durable log of certified writesets.
pub struct ReplicatedLog {
    nodes: Vec<Arc<Node>>,
    leader: Mutex<usize>,
    entries: Mutex<u64>,
    durable: bool,
    disk_config: DiskConfig,
    /// Truncation floor: records at or below it have been trimmed from the
    /// nodes' durable logs (they are covered by a sealed checkpoint).
    /// Recovery uses it to drop stale below-floor records from rejoining
    /// nodes so that all durable logs converge to the same trimmed suffix.
    floor: Mutex<Version>,
    /// Serialises node recovery against in-flight appends: appends hold it
    /// shared (they still run — and group-commit — concurrently), recovery
    /// holds it exclusively.  Without it an append that observed the
    /// recovering node as down could land on the donor *after* the state
    /// transfer read the donor's log, leaving the recovered node permanently
    /// missing that record.
    membership: RwLock<()>,
}

impl std::fmt::Debug for ReplicatedLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("nodes", &self.nodes.len())
            .field("leader", &*self.leader.lock())
            .field("entries", &*self.entries.lock())
            .finish()
    }
}

impl ReplicatedLog {
    /// Creates a group of `nodes` certifier nodes, each with its own disk.
    ///
    /// `durable` selects whether appends wait for disks at all; the
    /// `tashAPInoCERT` analysis configuration sets it to `false`.
    #[must_use]
    pub fn new(nodes: usize, disk_config: DiskConfig, durable: bool) -> Self {
        let nodes = (0..nodes.max(1))
            .map(|i| Arc::new(Node::new(CertifierNodeId(i as u32), disk_config.clone())))
            .collect();
        ReplicatedLog {
            nodes,
            leader: Mutex::new(0),
            entries: Mutex::new(0),
            durable,
            disk_config,
            floor: Mutex::new(Version::ZERO),
            membership: RwLock::new(()),
        }
    }

    /// The truncation floor: durable records at or below it are gone from
    /// every up node's log.
    #[must_use]
    pub fn floor(&self) -> Version {
        *self.floor.lock()
    }

    /// Trims every up node's durable log, dropping records at or below
    /// `watermark`.  Returns the largest number of records dropped on any
    /// one node (the logical trim size — nodes that recovered recently may
    /// hold fewer droppable records than the leader).
    ///
    /// The caller must only pass watermarks covered by a sealed checkpoint;
    /// nodes that are down keep their stale records until
    /// [`ReplicatedLog::recover_node`] rewrites them against the floor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if a node's durable log cannot be
    /// decoded.
    pub fn truncate_below(&self, watermark: Version) -> Result<usize> {
        // Exclusive membership: a concurrent recovery must not read a
        // donor's log mid-rewrite.
        let _membership = self.membership.write();
        let mut dropped_max = 0usize;
        for node in &self.nodes {
            if !node.is_up() {
                continue;
            }
            let dropped = node.wal.truncate_below(watermark)?;
            dropped_max = dropped_max.max(dropped);
        }
        let mut floor = self.floor.lock();
        *floor = (*floor).max(watermark);
        Ok(dropped_max)
    }

    /// Majority size of the group.
    #[must_use]
    pub fn majority(&self) -> usize {
        self.nodes.len() / 2 + 1
    }

    /// The current leader.
    #[must_use]
    pub fn leader(&self) -> CertifierNodeId {
        self.nodes[*self.leader.lock()].id
    }

    /// Number of nodes currently up.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_up()).count()
    }

    /// Total number of nodes in the group (up or down).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes currently up, in node-id order (fault targeting: the
    /// fault-schedule harness picks leaders and followers from this list).
    #[must_use]
    pub fn up_nodes(&self) -> Vec<CertifierNodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(|n| n.id)
            .collect()
    }

    /// `true` if the given node is currently up.
    #[must_use]
    pub fn is_node_up(&self, id: CertifierNodeId) -> bool {
        self.nodes.iter().any(|n| n.id == id && n.is_up())
    }

    /// `true` if a majority of certifier nodes is up, i.e. update
    /// transactions can make progress (Section 7).
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.up_count() >= self.majority()
    }

    /// Appends one certified writeset to the replicated log, returning once a
    /// majority of nodes has it durable.
    ///
    /// Concurrent appends from different certification requests share fsyncs
    /// on each node's disk through the [`WalWriter`]'s group commit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if fewer than a majority of nodes are
    /// up or acknowledge the append.
    pub fn append(&self, version: Version, writeset: &WriteSet) -> Result<()> {
        let _membership = self.membership.read();
        let majority = self.majority();
        if self.up_count() < majority {
            return Err(Error::Unavailable(format!(
                "only {} of {} certifier nodes up, majority {} required",
                self.up_count(),
                self.nodes.len(),
                majority
            )));
        }
        *self.entries.lock() += 1;
        let record = WalRecord::Commit {
            version,
            writeset: writeset.clone(),
        };
        let mut acks = 0usize;
        for node in &self.nodes {
            if !node.is_up() {
                continue;
            }
            if self.durable {
                node.wal.append_durable(&record);
            } else {
                node.wal.append(&record);
            }
            acks += 1;
        }
        if acks >= majority {
            Ok(())
        } else {
            Err(Error::Unavailable(format!(
                "only {acks} certifier nodes acknowledged, majority {majority} required"
            )))
        }
    }

    /// Appends one certified *epoch* of writesets, returning once a majority
    /// of nodes has all of them durable.
    ///
    /// This is the batched-certification counterpart of
    /// [`ReplicatedLog::append`]: the epoch's records are staged on each
    /// node's WAL and flushed with a **single** fsync per node, so the whole
    /// epoch pays one majority round of disk latency instead of one per
    /// writeset.  An empty epoch is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if fewer than a majority of nodes are
    /// up or acknowledge the append.
    pub fn append_group(&self, entries: &[(Version, Arc<WriteSet>)]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let _membership = self.membership.read();
        let majority = self.majority();
        if self.up_count() < majority {
            return Err(Error::Unavailable(format!(
                "only {} of {} certifier nodes up, majority {} required",
                self.up_count(),
                self.nodes.len(),
                majority
            )));
        }
        *self.entries.lock() += entries.len() as u64;
        let records: Vec<WalRecord> = entries
            .iter()
            .map(|(version, writeset)| WalRecord::Commit {
                version: *version,
                writeset: (**writeset).clone(),
            })
            .collect();
        let mut acks = 0usize;
        for node in &self.nodes {
            if !node.is_up() {
                continue;
            }
            let mut last_lsn = 0u64;
            for record in &records {
                last_lsn = node.wal.append(record);
            }
            if self.durable {
                node.wal.sync_to(last_lsn);
            }
            acks += 1;
        }
        if acks >= majority {
            Ok(())
        } else {
            Err(Error::Unavailable(format!(
                "only {acks} certifier nodes acknowledged, majority {majority} required"
            )))
        }
    }

    /// Crashes a node.  If it was the leader, a new leader is elected among
    /// the remaining up nodes.
    pub fn crash_node(&self, id: CertifierNodeId) {
        if let Some(node) = self.nodes.iter().find(|n| n.id == id) {
            node.up.store(false, Ordering::SeqCst);
            node.device.crash();
        }
        let mut leader = self.leader.lock();
        if self.nodes[*leader].id == id {
            if let Some(new_leader) = self.nodes.iter().position(|n| n.is_up()) {
                *leader = new_leader;
            }
        }
    }

    /// Recovers a crashed node: its durable log is rewritten as the union of
    /// a donor's records and its own records above the truncation floor,
    /// then the node rejoins the group.
    ///
    /// The transfer merges logs by *record* (commit version), not by byte
    /// length: concurrent appends reach different nodes' disks in slightly
    /// different orders, so equal-length prefixes need not hold equal
    /// content — a byte-suffix copy could duplicate records the node already
    /// has while dropping the ones it missed.  The full rewrite (rather than
    /// appending the missing records) is what makes recovery compose with
    /// truncation: stale below-floor records the node kept while it was down
    /// are dropped, so every up node converges to the same trimmed suffix.
    ///
    /// **Total outage**: when *no* node is up (the whole group crashed), the
    /// node restarts from the union of every node's durable log above the
    /// floor — every majority-acknowledged record is durable on at least one
    /// node, so the union is complete past the newest sealed checkpoint —
    /// and becomes the leader of the restarted group.  Subsequently
    /// recovering nodes then find a complete donor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if a log fails to decode, or
    /// [`Error::Protocol`] for an unknown node id.
    pub fn recover_node(&self, id: CertifierNodeId) -> Result<()> {
        // Exclusive: no append may straddle the transfer (see `membership`).
        let _membership = self.membership.write();
        let floor = *self.floor.lock();
        let node_index = self
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or_else(|| Error::Protocol(format!("unknown certifier node {id}")))?;
        let node = &self.nodes[node_index];
        let donor = self.nodes.iter().find(|n| n.is_up() && n.id != id);
        let total_outage = donor.is_none();
        let mut merged: std::collections::BTreeMap<Version, WalRecord> =
            std::collections::BTreeMap::new();
        let sources: Vec<&Arc<Node>> = match donor {
            Some(donor) => vec![donor, node],
            // Total outage: every node's durable log contributes.
            None => self.nodes.iter().collect(),
        };
        for source in sources {
            for record in WalRecord::decode_all(&source.device.durable_contents())? {
                if record.version() > floor {
                    merged.entry(record.version()).or_insert(record);
                }
            }
        }
        let records: Vec<WalRecord> = merged.into_values().collect();
        node.wal.rewrite(&records);
        node.up.store(true, Ordering::SeqCst);
        if total_outage {
            // First node back after a total outage leads the restarted group.
            *self.leader.lock() = node_index;
        }
        Ok(())
    }

    /// Reads back the durable entries of a node (used by certifier recovery
    /// to rebuild the in-memory log, and by Tashkent-MW replica recovery to
    /// obtain missing writesets).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the node's log cannot be decoded, or
    /// [`Error::Protocol`] for an unknown node id.
    pub fn durable_entries(&self, id: CertifierNodeId) -> Result<Vec<(Version, WriteSet)>> {
        let node = self
            .nodes
            .iter()
            .find(|n| n.id == id)
            .ok_or_else(|| Error::Protocol(format!("unknown certifier node {id}")))?;
        let records = WalRecord::decode_all(&node.device.durable_contents())?;
        Ok(records
            .into_iter()
            .filter_map(|r| match r {
                WalRecord::Commit { version, writeset } => Some((version, writeset)),
                WalRecord::Checkpoint { .. } => None,
            })
            .collect())
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ReplicatedLogStats {
        let leader = &self.nodes[*self.leader.lock()];
        let disk = leader.device.stats();
        ReplicatedLogStats {
            entries: *self.entries.lock(),
            leader_fsyncs: disk.fsyncs,
            leader_group_commit: disk.group_commit,
            leader_log_bytes: leader.device.durable_len(),
            nodes_up: self.up_count(),
            nodes_total: self.nodes.len(),
        }
    }

    /// The disk configuration nodes were created with (used when a crashed
    /// node is replaced rather than recovered).
    #[must_use]
    pub fn disk_config(&self) -> DiskConfig {
        self.disk_config.clone()
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::{TableId, Value, WriteItem};

    use super::*;

    fn ws(key: i64) -> WriteSet {
        WriteSet::from_items(vec![WriteItem::update(
            TableId(0),
            key,
            vec![("x".into(), Value::Int(key))],
        )])
    }

    #[test]
    fn appends_reach_all_up_nodes() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), true);
        assert_eq!(log.majority(), 2);
        assert!(log.is_available());
        for i in 1..=5 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        for node in 0..3 {
            let entries = log.durable_entries(CertifierNodeId(node)).unwrap();
            assert_eq!(entries.len(), 5);
            assert_eq!(entries[4].0, Version(5));
        }
        let stats = log.stats();
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.nodes_up, 3);
    }

    #[test]
    fn progress_with_one_node_down_but_not_two() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), true);
        log.append(Version(1), &ws(1)).unwrap();
        log.crash_node(CertifierNodeId(2));
        assert!(log.is_available());
        log.append(Version(2), &ws(2)).unwrap();
        log.crash_node(CertifierNodeId(1));
        assert!(!log.is_available());
        assert!(matches!(
            log.append(Version(3), &ws(3)),
            Err(Error::Unavailable(_))
        ));
    }

    #[test]
    fn leader_failover_and_recovery_with_state_transfer() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), true);
        assert_eq!(log.leader(), CertifierNodeId(0));
        for i in 1..=4 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        // Crash the leader: node 1 takes over and progress continues.
        log.crash_node(CertifierNodeId(0));
        assert_eq!(log.leader(), CertifierNodeId(1));
        assert!(log.is_available());
        for i in 5..=8 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        // Node 0 missed entries 5..=8; recovery transfers them.
        log.recover_node(CertifierNodeId(0)).unwrap();
        let entries = log.durable_entries(CertifierNodeId(0)).unwrap();
        assert_eq!(entries.len(), 8);
        assert_eq!(entries.last().unwrap().0, Version(8));
        assert_eq!(log.up_count(), 3);
    }

    #[test]
    fn total_outage_restart_rebuilds_from_the_union_of_all_logs() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), true);
        for i in 1..=3 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        // Node 2 misses entries 4..=5, then the whole group goes down.
        log.crash_node(CertifierNodeId(2));
        for i in 4..=5 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        log.crash_node(CertifierNodeId(1));
        log.crash_node(CertifierNodeId(0));
        assert_eq!(log.up_count(), 0);
        assert!(!log.is_available());
        // Restart from the stale node: the union of every node's durable log
        // fills in the records it missed, and it leads the restarted group.
        log.recover_node(CertifierNodeId(2)).unwrap();
        assert_eq!(log.leader(), CertifierNodeId(2));
        let entries = log.durable_entries(CertifierNodeId(2)).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries.last().unwrap().0, Version(5));
        // The rest of the group recovers from it as donor; progress resumes.
        log.recover_node(CertifierNodeId(0)).unwrap();
        log.recover_node(CertifierNodeId(1)).unwrap();
        assert!(log.is_available());
        log.append(Version(6), &ws(6)).unwrap();
        for n in 0..3 {
            assert_eq!(log.durable_entries(CertifierNodeId(n)).unwrap().len(), 6);
        }
    }

    #[test]
    fn truncation_trims_up_nodes_and_recovery_respects_the_floor() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), true);
        for i in 1..=6 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        // Node 2 goes down holding the full log, then the rest is trimmed.
        log.crash_node(CertifierNodeId(2));
        let dropped = log.truncate_below(Version(4)).unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(log.floor(), Version(4));
        for n in 0..2 {
            let entries = log.durable_entries(CertifierNodeId(n)).unwrap();
            assert_eq!(entries.first().unwrap().0, Version(5));
            assert_eq!(entries.len(), 2);
        }
        // Recovery rewrites the rejoining node against the floor: its stale
        // below-floor records are dropped, converging all durable logs.
        log.recover_node(CertifierNodeId(2)).unwrap();
        let entries = log.durable_entries(CertifierNodeId(2)).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.first().unwrap().0, Version(5));
    }

    #[test]
    fn non_durable_mode_skips_fsyncs() {
        let log = ReplicatedLog::new(3, DiskConfig::default(), false);
        for i in 1..=10 {
            log.append(Version(i), &ws(i as i64)).unwrap();
        }
        let stats = log.stats();
        assert_eq!(stats.entries, 10);
        assert_eq!(stats.leader_fsyncs, 0);
    }

    #[test]
    fn single_node_group_still_works() {
        let log = ReplicatedLog::new(1, DiskConfig::default(), true);
        assert_eq!(log.majority(), 1);
        log.append(Version(1), &ws(1)).unwrap();
        assert_eq!(log.durable_entries(CertifierNodeId(0)).unwrap().len(), 1);
        log.crash_node(CertifierNodeId(0));
        assert!(!log.is_available());
    }
}
