//! The sharded certifier: certification partitioned across independent
//! shards so writeset intersection scales beyond one thread.
//!
//! [`ShardedCertifier`] fronts N independent certification shards.  Each
//! shard owns a slice of the row space (determined by the deterministic
//! [`ShardMap`]), keeps its own in-memory [`CertifierLog`] of the committed
//! writesets that touch its slice, and has its own majority-replicated
//! durable log ([`ReplicatedLog`]) — the same Paxos-durability model as the
//! unsharded [`Certifier`](crate::Certifier), instantiated once per shard.
//! A *global sequencer* assigns cluster-wide commit versions so that every
//! replica still applies one totally-ordered stream of writesets.
//!
//! # Certification protocol
//!
//! * **Single-shard writesets** (the common case) lock one shard, run the
//!   intersection test against that shard's log only, and proceed
//!   concurrently with certifications on every other shard.
//! * **Multi-shard writesets** use an ordered two-phase certify: acquire all
//!   owning shards in ascending shard-id order, decide, append, release.
//!   The global acquisition order makes concurrent multi-shard
//!   certifications deadlock-free, and holding every owning shard across
//!   the decision makes the outcome equivalent to the unsharded certifier.
//!
//! Correctness hinges on one observation: a write-write conflict between two
//! writesets is witnessed by a shared `(table, key)` pair, and that pair is
//! owned by exactly one shard — a shard both writesets certify on.  Logging
//! the **full** writeset on every owning shard therefore preserves every
//! conflict (any intersection found on any shard is a real one, and every
//! real one is found on the shared item's shard).
//!
//! # Version streams
//!
//! The sequencer's version counter is only advanced while the committing
//! transaction holds both its shard locks and the sequencer lock, so a
//! reader that samples `system_version` *first* and the per-shard streams
//! *afterwards* observes every commit at or below the sampled version —
//! [`merge_shard_streams`] exploits this to reassemble a gap-free global
//! stream from per-shard streams (the proxy-side fan-in).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_common::metrics::{CounterId, GaugeId, Stage};
use tashkent_common::{
    Component, Error, Event, EventKind, MetricsRegistry, Result, RowKey, ShardId, ShardMap,
    TableId, Version, WriteSet,
};

use tashkent_storage::checkpoint::CheckpointStore;

use crate::batch::{EpochQueue, Slot};
use crate::certifier::{
    encode_checkpoint_payload, CertificationDecision, CertificationRequest, CertificationResponse,
    CertifierConfig, CertifierStats, Decided, DecisionSlot, RemoteWriteSet,
};
use crate::log::CertifierLog;
use crate::paxos::{CertifierNodeId, ReplicatedLog, ReplicatedLogStats};

/// Configuration of the sharded certifier.
#[derive(Debug, Clone)]
pub struct ShardedCertifierConfig {
    /// Number of certification shards.
    pub shards: usize,
    /// Per-shard configuration: each shard gets its own `base.nodes`-node
    /// replicated durable log with `base.disk` disks.  The forced-abort rate
    /// and seed apply globally (one draw per certification, exactly like the
    /// unsharded certifier).
    pub base: CertifierConfig,
}

impl ShardedCertifierConfig {
    /// A sharded configuration with `shards` shards and defaults otherwise.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ShardedCertifierConfig {
            shards,
            base: CertifierConfig::default(),
        }
    }
}

/// One shard's slice of the certifier state.
struct Shard {
    /// In-memory certified-writeset log restricted to this shard's rows
    /// (full writesets are stored; see the module docs for why that is both
    /// sound and complete).
    log: Mutex<CertifierLog>,
    /// This shard's majority-replicated durable log.
    replicated: ReplicatedLog,
    /// Sealed checkpoint images of this shard's log; the newest one bounds
    /// how far this shard may truncate.
    checkpoints: CheckpointStore,
}

/// The global sequencer: version counter, forced-abort randomness and
/// request counters.
struct Sequencer {
    version: Version,
    rng: StdRng,
    requests: u64,
    commits: u64,
    conflict_aborts: u64,
    forced_aborts: u64,
    multi_shard_commits: u64,
}

/// Counters exposed by [`ShardedCertifier::stats`].
#[derive(Debug, Clone, Default)]
pub struct ShardedCertifierStats {
    /// Certification requests processed.
    pub requests: u64,
    /// Requests that committed.
    pub commits: u64,
    /// Requests aborted because of a real write-write conflict.
    pub conflict_aborts: u64,
    /// Requests aborted by the forced-abort experiment.
    pub forced_aborts: u64,
    /// Commits whose writeset spanned more than one shard (these paid the
    /// ordered two-phase certify).
    pub multi_shard_commits: u64,
    /// Per-shard state of the replicated durable logs.
    pub shards: Vec<ReplicatedLogStats>,
}

impl ShardedCertifierStats {
    /// Collapses the sharded statistics into the unsharded
    /// [`CertifierStats`] shape (log counters summed across shards, group
    /// commit merged), for callers that render both the same way.
    #[must_use]
    pub fn aggregate(&self) -> CertifierStats {
        let mut log = ReplicatedLogStats::default();
        for shard in &self.shards {
            log.entries += shard.entries;
            log.leader_fsyncs += shard.leader_fsyncs;
            log.leader_log_bytes += shard.leader_log_bytes;
            log.leader_group_commit.merge(&shard.leader_group_commit);
            log.nodes_up += shard.nodes_up;
            log.nodes_total += shard.nodes_total;
        }
        CertifierStats {
            requests: self.requests,
            commits: self.commits,
            conflict_aborts: self.conflict_aborts,
            forced_aborts: self.forced_aborts,
            log,
        }
    }
}

/// One shard's slice of the global version stream, as returned by
/// [`ShardedCertifier::shard_streams_after`].
#[derive(Debug, Clone)]
pub struct ShardStream {
    /// The shard the entries come from.
    pub shard: ShardId,
    /// The shard's entries after the requested version, ascending.  A
    /// multi-shard writeset appears in the stream of every owning shard
    /// (with possibly different per-shard `conflict_free_to` bounds).
    pub entries: Vec<RemoteWriteSet>,
}

/// Merges per-shard version streams into one gap-free global stream.
///
/// Entries are merged by ascending commit version; a multi-shard writeset
/// present in several streams is emitted once, with the **newest** (maximum)
/// of its per-shard `conflict_free_to` bounds — each shard only checked the
/// entries it owns, so the global bound is the max over shards.  Entries
/// above `up_to` are dropped: only versions at or below the sampled system
/// version are guaranteed to have reached every owning shard's stream.
///
/// This is the proxy-side *fan-in*: above this merge the proxy's serial and
/// concurrent apply pipelines are unchanged from the unsharded system.
#[must_use]
pub fn merge_shard_streams(streams: &[ShardStream], up_to: Version) -> Vec<RemoteWriteSet> {
    let mut cursors: Vec<std::slice::Iter<'_, RemoteWriteSet>> =
        streams.iter().map(|s| s.entries.iter()).collect();
    let mut heads: Vec<Option<&RemoteWriteSet>> =
        cursors.iter_mut().map(Iterator::next).collect();
    let mut merged = Vec::new();
    while let Some(version) = heads.iter().flatten().map(|r| r.commit_version).min() {
        if version > up_to {
            break;
        }
        let mut next: Option<RemoteWriteSet> = None;
        for (head, cursor) in heads.iter_mut().zip(cursors.iter_mut()) {
            if head.map(|r| r.commit_version) != Some(version) {
                continue;
            }
            let entry = head.expect("checked above");
            match &mut next {
                None => next = Some(entry.clone()),
                Some(merged_entry) => {
                    merged_entry.conflict_free_to =
                        merged_entry.conflict_free_to.max(entry.conflict_free_to);
                }
            }
            *head = cursor.next();
        }
        merged.push(next.expect("at least one stream held this version"));
    }
    merged
}

/// The sharded certifier component shared by every replica proxy.
pub struct ShardedCertifier {
    map: ShardMap,
    shards: Vec<Shard>,
    sequencer: Mutex<Sequencer>,
    forced_abort_rate: f64,
    metrics: Arc<MetricsRegistry>,
    /// One epoch queue per shard when batched certification is enabled:
    /// single-shard writesets (the common case) are drained and certified in
    /// per-shard epochs, amortizing the shard-log lock and the majority
    /// fsync.  Multi-shard writesets always take the direct ordered
    /// two-phase path.
    batchers: Option<Vec<EpochQueue<CertificationRequest, Result<Decided>>>>,
    /// Cache of [`ShardedCertifier::truncation_floor`], refreshed whenever a
    /// truncation moves a shard floor.  Certification reads this instead of
    /// locking every shard log on every request; floors only move under
    /// [`ShardedCertifier::truncate_below`], so the cache is exact between
    /// truncations (and during one it lags exactly like the locked read
    /// did — the floor sample always preceded taking the shard guards).
    floor_cache: AtomicU64,
}

impl std::fmt::Debug for ShardedCertifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCertifier")
            .field("shards", &self.shards.len())
            .field("system_version", &self.system_version())
            .finish()
    }
}

impl ShardedCertifier {
    /// Creates a sharded certifier group.
    ///
    /// # Panics
    ///
    /// Panics if the shard count fails [`ShardMap::validate`]; build the
    /// configuration through a validated [`tashkent_common::ClusterConfig`]
    /// to surface the problem as an error instead.
    #[must_use]
    pub fn new(config: ShardedCertifierConfig) -> Self {
        let map = ShardMap::new(config.shards);
        map.validate().expect("invalid shard count");
        let shards = (0..config.shards)
            .map(|_| Shard {
                log: Mutex::new(CertifierLog::new()),
                replicated: ReplicatedLog::new(
                    config.base.nodes,
                    config.base.disk.clone(),
                    config.base.durable,
                ),
                checkpoints: CheckpointStore::new(),
            })
            .collect();
        ShardedCertifier {
            map,
            shards,
            sequencer: Mutex::new(Sequencer {
                version: Version::ZERO,
                rng: StdRng::seed_from_u64(config.base.seed),
                requests: 0,
                commits: 0,
                conflict_aborts: 0,
                forced_aborts: 0,
                multi_shard_commits: 0,
            }),
            forced_abort_rate: config.base.forced_abort_rate.clamp(0.0, 1.0),
            metrics: config.base.metrics,
            batchers: config
                .base
                .batch
                .then(|| (0..config.shards).map(|_| EpochQueue::new()).collect()),
            floor_cache: AtomicU64::new(0),
        }
    }

    /// The shard map replicas should use to route and partition work.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// Number of certification shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global system version (number of committed update transactions).
    #[must_use]
    pub fn system_version(&self) -> Version {
        self.sequencer.lock().version
    }

    /// `true` if every shard's replicated group has a majority up.
    ///
    /// A single down shard stalls any certification touching it *and* the
    /// replicas' refresh stream (the merge cannot prove a gap-free prefix
    /// without that shard), so availability is all-shards.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.shards.iter().all(|s| s.replicated.is_available())
    }

    /// The current leader node of one shard's replicated group.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_leader(&self, shard: ShardId) -> CertifierNodeId {
        self.shards[shard.index()].replicated.leader()
    }

    /// Total number of nodes in each shard's replicated group.
    #[must_use]
    pub fn nodes_per_shard(&self) -> usize {
        self.shards[0].replicated.node_count()
    }

    /// The up nodes of one shard's replicated group, in node-id order
    /// (fault targeting: leaders and followers are picked from this list).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_up_nodes(&self, shard: ShardId) -> Vec<CertifierNodeId> {
        self.shards[shard.index()].replicated.up_nodes()
    }

    /// Crashes one node of one shard's replicated group (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn crash_shard_node(&self, shard: ShardId, node: CertifierNodeId) {
        self.shards[shard.index()].replicated.crash_node(node);
    }

    /// Recovers a crashed node of one shard's group via state transfer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if no up node of the shard can donate
    /// its log.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn recover_shard_node(&self, shard: ShardId, node: CertifierNodeId) -> Result<()> {
        self.shards[shard.index()].replicated.recover_node(node)
    }

    /// Crashes certifier node `node` on **every** shard's group — the model
    /// of one physical certifier machine (hosting one member of each shard
    /// group) going down.
    pub fn crash_node(&self, node: CertifierNodeId) {
        for shard in &self.shards {
            shard.replicated.crash_node(node);
        }
    }

    /// Recovers certifier node `node` on every shard's group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if any shard has no donor node up.
    pub fn recover_node(&self, node: CertifierNodeId) -> Result<()> {
        for shard in &self.shards {
            shard.replicated.recover_node(node)?;
        }
        Ok(())
    }

    /// Reads the durable log of one node of one shard's group (recovery
    /// tooling and the crash-fault tests).
    ///
    /// # Errors
    ///
    /// Propagates decode errors and unknown-node errors.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_durable_entries(
        &self,
        shard: ShardId,
        node: CertifierNodeId,
    ) -> Result<Vec<(Version, WriteSet)>> {
        self.shards[shard.index()].replicated.durable_entries(node)
    }

    /// The shards owning `writeset`, falling back to shard 0 for an empty
    /// writeset so that even degenerate requests have a deterministic home
    /// (the unsharded certifier also accepts and versions empty writesets).
    fn owning_shards(&self, writeset: &WriteSet) -> Vec<ShardId> {
        let shards = self.map.shards_of(writeset);
        if shards.is_empty() {
            vec![ShardId(0)]
        } else {
            shards
        }
    }

    /// Certifies an update transaction.
    ///
    /// Semantics are identical to [`Certifier::certify`](crate::Certifier):
    /// same request / response types, same decision rule, same global
    /// version order — with `shards == 1` the two are decision-for-decision
    /// interchangeable (the equivalence test in
    /// `tests/sharded_equivalence.rs` pins this down).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if any owning shard has lost its
    /// majority; certification *decisions* (including aborts) are reported
    /// in the response, not as errors.
    pub fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
        let owning = self.owning_shards(&request.writeset);
        for shard in &owning {
            if !self.shards[shard.index()].replicated.is_available() {
                return Err(Error::Unavailable(format!(
                    "certifier {shard} majority not available"
                )));
            }
        }

        // The merged remote stream spans every shard: if any shard has
        // trimmed past the replica's version, the gap-free suffix this
        // response promises cannot be assembled.  State transfer instead.
        let floor = Version(self.floor_cache.load(Ordering::Acquire));
        if request.replica_version < floor {
            return Err(Error::Unavailable(format!(
                "replica {} at version {} is below the certifier truncation floor {floor}; \
                 state transfer required",
                request.replica.value(),
                request.replica_version
            )));
        }

        // Inbox depth: requests currently inside certification (across all
        // shards — per-shard depth would need per-shard guards).
        let _inflight = self.metrics.gauge_guard(GaugeId::CertifierInflight);
        self.metrics.incr(CounterId::CertifyRequests);

        // Single-shard writesets ride the shard's epoch queue when batching
        // is enabled: an epoch leader certifies a whole drained batch under
        // one shard-log lock and one grouped majority fsync.  Multi-shard
        // writesets keep the direct ordered two-phase certify below (they
        // must hold several shard locks at once, which an epoch leader —
        // holding exactly one — cannot interleave with).
        if owning.len() == 1 {
            if let Some(batchers) = &self.batchers {
                let shard = owning[0];
                let decided = batchers[shard.index()]
                    .submit(request.clone(), |epoch| self.process_shard_epoch(shard, epoch))?;
                // The remote-stream fan-in runs on the submitting thread,
                // bounded by the decision-time version (one below our own
                // commit, or the abort-time system version) — identical to
                // the direct path's bound.
                let bound = decided.remote_bound();
                return Ok(CertificationResponse {
                    decision: decided.decision,
                    commit_version: decided.commit_version,
                    remote_writesets: self
                        .remote_writesets_between(request.replica_version, bound),
                    system_version: decided.system_version,
                });
            }
        }

        // Phase 1 (acquire): lock every owning shard in ascending shard-id
        // order.  `ShardMap::shards_of` returns them sorted, which is the
        // global acquisition order that keeps concurrent multi-shard
        // certifications deadlock-free.
        let mut guards: Vec<MutexGuard<'_, CertifierLog>> = owning
            .iter()
            .map(|s| self.shards[s.index()].log.lock())
            .collect();

        // A snapshot below an owning shard's truncation floor can no longer
        // be certified there — part of the suffix it must be checked against
        // is gone.  Checked under the shard guards (truncation takes the
        // same locks), and answered with a conservative, retryable abort.
        let floored = guards
            .iter()
            .any(|log| request.start_version < log.floor());

        // Intersection test against every owning shard's log suffix.  The
        // oldest conflicting version across shards matches the unsharded
        // certifier's forward scan.
        let conflict = guards
            .iter()
            .filter_map(|log| log.conflict_after(&request.writeset, request.start_version))
            .min();

        // Prepare the (probable) commit's log entry — writeset clone and
        // footprint hashing — *before* the global sequencer lock, so the
        // cluster-wide serialization point stays as short as version
        // assignment plus per-shard Vec pushes.  Wasted only on forced
        // aborts, which are an experiment knob.
        let commit_material = if conflict.is_none() && !floored {
            let writeset = std::sync::Arc::new(request.writeset.clone());
            let footprint = std::sync::Arc::new(writeset.footprint());
            Some((writeset, footprint))
        } else {
            None
        };

        // Decide under the sequencer lock (never acquire a shard lock while
        // holding it — the sequencer is the innermost lock).
        let mut sequencer = self.sequencer.lock();
        sequencer.requests += 1;
        let decision = if floored {
            sequencer.conflict_aborts += 1;
            Some(CertificationDecision::Abort {
                reason: format!(
                    "snapshot {} below truncation floor",
                    request.start_version
                ),
                forced: false,
            })
        } else if let Some(conflict_version) = conflict {
            sequencer.conflict_aborts += 1;
            Some(CertificationDecision::Abort {
                reason: format!("write-write conflict with {conflict_version}"),
                forced: false,
            })
        } else if self.forced_abort_rate > 0.0
            && sequencer.rng.gen::<f64>() < self.forced_abort_rate
        {
            sequencer.forced_aborts += 1;
            Some(CertificationDecision::Abort {
                reason: "forced abort (experiment)".into(),
                forced: true,
            })
        } else {
            None
        };
        if let Some(decision) = decision {
            let system_version = sequencer.version;
            drop(sequencer);
            drop(guards);
            self.metrics.incr(CounterId::CertifyAborts);
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::CertifyAbort).shard(owning[0].index()),
            );
            return Ok(CertificationResponse {
                decision,
                commit_version: None,
                remote_writesets: self
                    .remote_writesets_between(request.replica_version, system_version),
                system_version,
            });
        }

        // Commit: assign the next global version and append the full
        // writeset to every owning shard's log.  The version advance and the
        // appends happen inside one sequencer critical section while the
        // shard guards are held — the invariant the stream merge relies on.
        let commit_version = sequencer.version.next();
        sequencer.version = commit_version;
        sequencer.commits += 1;
        if owning.len() > 1 {
            sequencer.multi_shard_commits += 1;
        }
        let (writeset, footprint) = commit_material.expect("commit implies no conflict");
        for log in &mut guards {
            log.append_at_with_footprint(
                commit_version,
                std::sync::Arc::clone(&writeset),
                std::sync::Arc::clone(&footprint),
                request.start_version,
            );
        }
        let system_version = commit_version;
        drop(sequencer);
        drop(guards);

        // Make the decision durable before announcing it — on the writeset's
        // *home shard* (its lowest owning shard id) only.  One majority fsync
        // per commit, exactly like the unsharded certifier; what sharding
        // adds is that different home shards group-commit on independent
        // disks.  Every commit is durable in exactly one shard group's
        // majority, so the union of the shard groups' durable logs is the
        // full certified history (re-partitioned through the shard map when
        // in-memory shard logs must be rebuilt).
        let home = owning[0];
        if self.metrics.is_enabled() {
            let durable_started = Instant::now();
            self.shards[home.index()]
                .replicated
                .append(commit_version, &request.writeset)?;
            self.metrics
                .record_stage(Stage::Durable, durable_started.elapsed());
            self.metrics.incr(CounterId::DurableAppends);
            self.metrics.incr(CounterId::CertifyCommits);
            self.metrics.record_shard_commit(home.index());
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::CertifyCommit)
                    .version(commit_version.0)
                    .shard(home.index()),
            );
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::DurableAppend)
                    .version(commit_version.0)
                    .shard(home.index()),
            );
        } else {
            self.shards[home.index()]
                .replicated
                .append(commit_version, &request.writeset)?;
        }

        Ok(CertificationResponse {
            decision: CertificationDecision::Commit,
            commit_version: Some(commit_version),
            // Bounded at the version *below* the transaction's own commit —
            // exactly the unsharded certifier's gather-before-append window.
            // The bound must NOT be re-sampled here: a commit that lands
            // after ours would enter the stream while our own version is
            // excluded, and a proxy applying that stream would advance past
            // its own commit without ever applying it (the certifier never
            // resends versions at or below a replica's reported version).
            remote_writesets: self
                .remote_writesets_between(request.replica_version, commit_version.prev()),
            system_version,
        })
    }

    /// Certifies one drained epoch of single-shard requests owned by
    /// `shard`, in arrival order — the per-shard epoch leader's body.
    ///
    /// The epoch's wins: one shard-lock acquisition, one global-sequencer
    /// acquisition (on the two-phase fast path), a footprint pre-screen that
    /// lets provably conflict-free writesets skip the suffix scan, and one
    /// grouped majority fsync on the shard's durable log.
    fn process_shard_epoch(
        &self,
        shard: ShardId,
        epoch: Vec<(CertificationRequest, DecisionSlot)>,
    ) {
        // The forced-abort experiment draws from the sequencer RNG per
        // surviving request, and a forced abort removes its entry from the
        // would-be log — so the two-phase plan (which conflict-checks
        // against *tentatively* accepted epoch entries before any version is
        // assigned) would be wrong: a later request could abort on a
        // neighbour that the draw then kills.  Keep the per-request
        // sequencer lockstep whenever draws can happen.
        if self.forced_abort_rate > 0.0 {
            self.process_shard_epoch_lockstep(shard, epoch);
            return;
        }
        self.process_shard_epoch_two_phase(shard, epoch);
    }

    /// Lockstep epoch body: the sequencer is taken once per request, exactly
    /// as on the direct path, so the forced-abort RNG draw sequence is
    /// identical to a serial interleaving.  Decision identity holds because
    /// each request sees every earlier request's append before it is
    /// checked.
    fn process_shard_epoch_lockstep(
        &self,
        shard: ShardId,
        epoch: Vec<(CertificationRequest, DecisionSlot)>,
    ) {
        let epoch_len = epoch.len() as u64;
        let mut commits: Vec<(Version, Arc<WriteSet>, DecisionSlot)> =
            Vec::with_capacity(epoch.len());
        let mut log = self.shards[shard.index()].log.lock();
        for (request, slot) in epoch {
            let floored = request.start_version < log.floor();
            // Pre-screen: if no bucket covering the writeset's footprint has
            // committed past the snapshot, the suffix scan provably finds
            // nothing and is skipped.
            let conflict = if floored {
                None
            } else if log.prescreen_clear(&request.writeset, request.start_version) {
                self.metrics.incr(CounterId::PrescreenHits);
                None
            } else {
                self.metrics.incr(CounterId::PrescreenMisses);
                log.conflict_after(&request.writeset, request.start_version)
            };
            let commit_material = if conflict.is_none() && !floored {
                let writeset = Arc::new(request.writeset);
                let footprint = Arc::new(writeset.footprint());
                Some((writeset, footprint))
            } else {
                None
            };

            // The sequencer stays the innermost lock, taken once per request
            // exactly as on the direct path.
            let mut sequencer = self.sequencer.lock();
            sequencer.requests += 1;
            let decision = if floored {
                sequencer.conflict_aborts += 1;
                Some(CertificationDecision::Abort {
                    reason: format!(
                        "snapshot {} below truncation floor",
                        request.start_version
                    ),
                    forced: false,
                })
            } else if let Some(conflict_version) = conflict {
                sequencer.conflict_aborts += 1;
                Some(CertificationDecision::Abort {
                    reason: format!("write-write conflict with {conflict_version}"),
                    forced: false,
                })
            } else if self.forced_abort_rate > 0.0
                && sequencer.rng.gen::<f64>() < self.forced_abort_rate
            {
                sequencer.forced_aborts += 1;
                Some(CertificationDecision::Abort {
                    reason: "forced abort (experiment)".into(),
                    forced: true,
                })
            } else {
                None
            };
            if let Some(decision) = decision {
                let system_version = sequencer.version;
                drop(sequencer);
                self.metrics.incr(CounterId::CertifyAborts);
                self.metrics.emit(
                    Event::new(Component::Certifier, EventKind::CertifyAbort)
                        .shard(shard.index()),
                );
                slot.fill(Ok(Decided {
                    decision,
                    commit_version: None,
                    system_version,
                }));
                continue;
            }

            // Version advance and the shard append stay inside one sequencer
            // critical section while the shard lock is held — the invariant
            // the stream merge relies on.
            let commit_version = sequencer.version.next();
            sequencer.version = commit_version;
            sequencer.commits += 1;
            let (writeset, footprint) = commit_material.expect("commit implies no conflict");
            log.append_at_with_footprint(
                commit_version,
                Arc::clone(&writeset),
                footprint,
                request.start_version,
            );
            drop(sequencer);
            // Commit slots are filled only after the grouped durable append:
            // the decision is never announced before it is durable.
            commits.push((commit_version, writeset, slot));
        }
        drop(log);

        self.metrics.add(CounterId::CertifyBatchSize, epoch_len);
        self.metrics.emit(
            Event::new(Component::Certifier, EventKind::CertifyBatch)
                .version(epoch_len)
                .shard(shard.index()),
        );

        if commits.is_empty() {
            return;
        }
        let group: Vec<(Version, Arc<WriteSet>)> = commits
            .iter()
            .map(|(version, writeset, _)| (*version, Arc::clone(writeset)))
            .collect();
        let durable_started = Instant::now();
        let appended = self.shards[shard.index()].replicated.append_group(&group);
        if appended.is_ok() && self.metrics.is_enabled() {
            self.metrics
                .record_stage(Stage::Durable, durable_started.elapsed());
        }
        for (commit_version, _, slot) in commits {
            match &appended {
                Ok(()) => {
                    if self.metrics.is_enabled() {
                        self.metrics.incr(CounterId::DurableAppends);
                        self.metrics.incr(CounterId::CertifyCommits);
                        self.metrics.record_shard_commit(shard.index());
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::CertifyCommit)
                                .version(commit_version.0)
                                .shard(shard.index()),
                        );
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::DurableAppend)
                                .version(commit_version.0)
                                .shard(shard.index()),
                        );
                    }
                    slot.fill(Ok(Decided {
                        decision: CertificationDecision::Commit,
                        commit_version: Some(commit_version),
                        // At the instant this request committed in the
                        // serial-equivalent order the system stood exactly
                        // at its commit version.
                        system_version: commit_version,
                    }));
                }
                Err(error) => slot.fill(Err(error.clone())),
            }
        }
    }

    /// Two-phase epoch body (the `forced_abort_rate == 0` fast path):
    ///
    /// * **Phase 1** (shard lock only): per request, in arrival order,
    ///   decide a verdict — conservative floor abort, conflict against the
    ///   shard log (pre-screened), conflict against an *earlier accepted
    ///   epoch entry*, or clean.  Without forced aborts a clean verdict is
    ///   final, so the intra-epoch check against tentatively accepted
    ///   entries is sound — and complete, because an accepted entry's commit
    ///   version always exceeds any well-formed snapshot (snapshots never
    ///   run ahead of the system version the sequencer has published).
    /// * **Phase 2** (sequencer, taken **once**): walk the verdicts in
    ///   arrival order, assigning dense versions to the clean entries and
    ///   appending them to the shard log inside the single critical section
    ///   — preserving the stream-merge invariant — while aborts capture the
    ///   system version at their position.
    ///
    /// The decisions are exactly those of the lockstep body: phase 1 sees
    /// the same conflicts (log conflicts are older than every epoch commit,
    /// so "first conflict" agrees), and phase 2 assigns the same versions a
    /// per-request interleaving in arrival order would.  What changes is the
    /// cost: one sequencer acquisition per epoch instead of per request.
    fn process_shard_epoch_two_phase(
        &self,
        shard: ShardId,
        epoch: Vec<(CertificationRequest, DecisionSlot)>,
    ) {
        enum Verdict {
            /// Abort whose reason is fully known in phase 1 (below-floor or
            /// shard-log conflict).
            Abort(CertificationDecision),
            /// Conflicts with the accepted epoch entry at this index; the
            /// reason needs that entry's commit version, assigned in
            /// phase 2.
            EpochConflict(usize),
            /// Accepted: commits as `accepted[index]`.
            Clean(usize),
        }

        let epoch_len = epoch.len() as u64;
        type Material = (Arc<WriteSet>, Arc<HashSet<(TableId, RowKey)>>, Version);
        let mut accepted: Vec<Material> = Vec::with_capacity(epoch.len());
        let mut staged: Vec<(Verdict, Arc<Slot<Result<Decided>>>)> =
            Vec::with_capacity(epoch.len());

        let mut log = self.shards[shard.index()].log.lock();
        for (request, slot) in epoch {
            let verdict = if request.start_version < log.floor() {
                Verdict::Abort(CertificationDecision::Abort {
                    reason: format!(
                        "snapshot {} below truncation floor",
                        request.start_version
                    ),
                    forced: false,
                })
            } else {
                let log_conflict = if log
                    .prescreen_clear(&request.writeset, request.start_version)
                {
                    self.metrics.incr(CounterId::PrescreenHits);
                    None
                } else {
                    self.metrics.incr(CounterId::PrescreenMisses);
                    log.conflict_after(&request.writeset, request.start_version)
                };
                if let Some(conflict_version) = log_conflict {
                    Verdict::Abort(CertificationDecision::Abort {
                        reason: format!("write-write conflict with {conflict_version}"),
                        forced: false,
                    })
                } else if let Some(index) = accepted.iter().position(|(_, footprint, _)| {
                    request.writeset.conflicts_with_footprint(footprint)
                }) {
                    Verdict::EpochConflict(index)
                } else {
                    let writeset = Arc::new(request.writeset);
                    let footprint = Arc::new(writeset.footprint());
                    accepted.push((writeset, footprint, request.start_version));
                    Verdict::Clean(accepted.len() - 1)
                }
            };
            staged.push((verdict, slot));
        }

        // Phase 2: one sequencer critical section for the whole epoch.
        // `commit_versions[j]` is always assigned before any
        // `EpochConflict(j)` reads it, because `accepted[j]` precedes the
        // conflicting request in arrival order.
        let mut commit_versions: Vec<Version> = Vec::with_capacity(accepted.len());
        let mut commits: Vec<(Version, Arc<WriteSet>, DecisionSlot)> =
            Vec::with_capacity(accepted.len());
        let mut aborts: Vec<(CertificationDecision, Version, DecisionSlot)> =
            Vec::new();
        let mut sequencer = self.sequencer.lock();
        for (verdict, slot) in staged {
            sequencer.requests += 1;
            match verdict {
                Verdict::Clean(index) => {
                    let commit_version = sequencer.version.next();
                    sequencer.version = commit_version;
                    sequencer.commits += 1;
                    let (writeset, footprint, start_version) = &accepted[index];
                    log.append_at_with_footprint(
                        commit_version,
                        Arc::clone(writeset),
                        Arc::clone(footprint),
                        *start_version,
                    );
                    commit_versions.push(commit_version);
                    commits.push((commit_version, Arc::clone(writeset), slot));
                }
                Verdict::Abort(decision) => {
                    sequencer.conflict_aborts += 1;
                    aborts.push((decision, sequencer.version, slot));
                }
                Verdict::EpochConflict(index) => {
                    sequencer.conflict_aborts += 1;
                    let decision = CertificationDecision::Abort {
                        reason: format!(
                            "write-write conflict with {}",
                            commit_versions[index]
                        ),
                        forced: false,
                    };
                    aborts.push((decision, sequencer.version, slot));
                }
            }
        }
        drop(sequencer);
        drop(log);

        self.metrics.add(CounterId::CertifyBatchSize, epoch_len);
        self.metrics.emit(
            Event::new(Component::Certifier, EventKind::CertifyBatch)
                .version(epoch_len)
                .shard(shard.index()),
        );

        for (decision, system_version, slot) in aborts {
            self.metrics.incr(CounterId::CertifyAborts);
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::CertifyAbort).shard(shard.index()),
            );
            slot.fill(Ok(Decided {
                decision,
                commit_version: None,
                system_version,
            }));
        }

        if commits.is_empty() {
            return;
        }
        let group: Vec<(Version, Arc<WriteSet>)> = commits
            .iter()
            .map(|(version, writeset, _)| (*version, Arc::clone(writeset)))
            .collect();
        let durable_started = Instant::now();
        let appended = self.shards[shard.index()].replicated.append_group(&group);
        if appended.is_ok() && self.metrics.is_enabled() {
            self.metrics
                .record_stage(Stage::Durable, durable_started.elapsed());
        }
        for (commit_version, _, slot) in commits {
            match &appended {
                Ok(()) => {
                    if self.metrics.is_enabled() {
                        self.metrics.incr(CounterId::DurableAppends);
                        self.metrics.incr(CounterId::CertifyCommits);
                        self.metrics.record_shard_commit(shard.index());
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::CertifyCommit)
                                .version(commit_version.0)
                                .shard(shard.index()),
                        );
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::DurableAppend)
                                .version(commit_version.0)
                                .shard(shard.index()),
                        );
                    }
                    slot.fill(Ok(Decided {
                        decision: CertificationDecision::Commit,
                        commit_version: Some(commit_version),
                        system_version: commit_version,
                    }));
                }
                Err(error) => slot.fill(Err(error.clone())),
            }
        }
    }

    /// Seals a durable checkpoint of every shard's certified log.  Each
    /// shard's image holds its truncation floor plus its entries above it,
    /// and is stamped with the global system version sampled *before* the
    /// per-shard seals — entries that land concurrently are included in some
    /// image but never claimed, so the stamp is always a safe lower bound.
    /// Returns the stamped version.
    pub fn seal_checkpoint(&self) -> Version {
        let version = self.sequencer.lock().version;
        for shard in &self.shards {
            let payload = {
                let log = shard.log.lock();
                let floor = log.floor();
                encode_checkpoint_payload(floor, &log.entries_after(floor))
            };
            shard.checkpoints.seal(version, &payload);
        }
        version
    }

    /// Drops log entries at or below `watermark` from every shard's
    /// in-memory and durable logs.  Per shard, the watermark is clamped to
    /// that shard's newest sealed checkpoint version, so no record is ever
    /// dropped before an image covers it.  Returns the total number of
    /// in-memory entries discarded across shards (a multi-shard entry
    /// counts once per owning shard, matching what memory is freed).
    ///
    /// # Errors
    ///
    /// Propagates durable-log rewrite failures.
    pub fn truncate_below(&self, watermark: Version) -> Result<usize> {
        let mut dropped = 0usize;
        for shard in &self.shards {
            let bound = watermark.min(shard.checkpoints.latest_version());
            if bound.is_zero() {
                continue;
            }
            dropped += shard.log.lock().truncate_up_to(bound);
            shard.replicated.truncate_below(bound)?;
        }
        // Refresh the certify-path floor cache (monotone: floors only grow,
        // and only under this method).
        self.floor_cache
            .fetch_max(self.truncation_floor().value(), Ordering::AcqRel);
        Ok(dropped)
    }

    /// The truncation floor: the highest per-shard floor.  A certification
    /// or refresh reaching below it cannot be served from the logs any more.
    #[must_use]
    pub fn truncation_floor(&self) -> Version {
        self.shards
            .iter()
            .map(|shard| shard.log.lock().floor())
            .max()
            .unwrap_or(Version::ZERO)
    }

    /// The version every shard's newest sealed checkpoint covers up to (the
    /// minimum across shards; [`Version::ZERO`] before the first seal).
    #[must_use]
    pub fn checkpoint_version(&self) -> Version {
        self.shards
            .iter()
            .map(|shard| shard.checkpoints.latest_version())
            .min()
            .unwrap_or(Version::ZERO)
    }

    /// Total number of entries held across every shard's in-memory log
    /// (bounded-memory assertions; multi-shard entries count once per
    /// owning shard).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.shards.iter().map(|shard| shard.log.lock().len()).sum()
    }

    /// Per-shard version streams after `since` (exclusive): the fan-out half
    /// of update propagation.  Pair with [`merge_shard_streams`] bounded by
    /// a [`ShardedCertifier::system_version`] sampled **before** this call.
    #[must_use]
    pub fn shard_streams_after(&self, since: Version) -> Vec<ShardStream> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let mut log = shard.log.lock();
                let entries = log
                    .entries_after(since)
                    .into_iter()
                    .map(|(commit_version, writeset)| {
                        let conflict_free_to = log.conflict_free_back_to(commit_version, since);
                        RemoteWriteSet {
                            commit_version,
                            writeset,
                            conflict_free_to,
                        }
                    })
                    .collect();
                ShardStream {
                    shard: ShardId(index as u32),
                    entries,
                }
            })
            .collect()
    }

    /// The merged global stream of remote writesets after `since`, exactly
    /// like [`Certifier::writesets_after`](crate::Certifier) — used by
    /// refresh, recovery and the equivalence tests.
    #[must_use]
    pub fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet> {
        // Sample the bound BEFORE the streams: every commit at or below it
        // has finished its shard appends (they happened inside the sequencer
        // critical section that advanced the version).
        let up_to = self.sequencer.lock().version;
        self.remote_writesets_between(since, up_to)
    }

    /// Merges the shard streams over `(since, up_to]`.  `up_to` must be a
    /// version whose shard appends are known complete relative to this call
    /// — a system version the caller sampled under the sequencer lock (or
    /// one version below the caller's own just-appended commit).
    fn remote_writesets_between(&self, since: Version, up_to: Version) -> Vec<RemoteWriteSet> {
        if since >= up_to {
            // The requester is current: skip the all-shard fan-out on the
            // hot path.
            return Vec::new();
        }
        let streams = self.shard_streams_after(since);
        merge_shard_streams(&streams, up_to)
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> ShardedCertifierStats {
        let sequencer = self.sequencer.lock();
        ShardedCertifierStats {
            requests: sequencer.requests,
            commits: sequencer.commits,
            conflict_aborts: sequencer.conflict_aborts,
            forced_aborts: sequencer.forced_aborts,
            multi_shard_commits: sequencer.multi_shard_commits,
            shards: self.shards.iter().map(|s| s.replicated.stats()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::{ReplicaId, TableId, Value, WriteItem};

    use super::*;

    fn ws(keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| WriteItem::update(TableId(0), k, vec![("x".into(), Value::Int(k))]))
                .collect(),
        )
    }

    fn request(start: u64, replica_version: u64, keys: &[i64]) -> CertificationRequest {
        CertificationRequest {
            replica: ReplicaId(0),
            start_version: Version(start),
            writeset: ws(keys),
            replica_version: Version(replica_version),
        }
    }

    fn sharded(shards: usize) -> ShardedCertifier {
        ShardedCertifier::new(ShardedCertifierConfig::with_shards(shards))
    }

    #[test]
    fn versions_are_globally_dense_across_shards() {
        let certifier = sharded(4);
        for k in 1..=20 {
            let response = certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
            assert!(response.decision.is_commit());
            assert_eq!(response.commit_version, Some(Version(k)));
        }
        assert_eq!(certifier.system_version(), Version(20));
        let versions: Vec<u64> = certifier
            .writesets_after(Version::ZERO)
            .iter()
            .map(|r| r.commit_version.value())
            .collect();
        assert_eq!(versions, (1..=20).collect::<Vec<u64>>());
    }

    #[test]
    fn conflicts_are_found_across_shard_boundaries() {
        let certifier = sharded(4);
        // A multi-shard writeset commits, then every single-key probe that
        // shares a key with it (on whatever shard) must abort.
        let keys = [1i64, 2, 3, 4, 5, 6, 7, 8];
        assert!(certifier
            .certify(&request(0, 0, &keys))
            .unwrap()
            .decision
            .is_commit());
        for &k in &keys {
            let response = certifier.certify(&request(0, 1, &[k])).unwrap();
            assert!(!response.decision.is_commit(), "key {k} must conflict");
        }
        // Disjoint keys commit, and a probe starting after the commit is
        // clean.
        assert!(certifier
            .certify(&request(0, 1, &[100]))
            .unwrap()
            .decision
            .is_commit());
        assert!(certifier
            .certify(&request(1, 2, &[1]))
            .unwrap()
            .decision
            .is_commit());
        let stats = certifier.stats();
        assert_eq!(stats.conflict_aborts, keys.len() as u64);
        assert_eq!(stats.commits, 3);
        assert!(stats.multi_shard_commits >= 1);
    }

    #[test]
    fn remote_streams_merge_without_gaps_or_duplicates() {
        let certifier = sharded(3);
        // Mix of single- and multi-shard writesets.
        certifier.certify(&request(0, 0, &[1])).unwrap();
        certifier.certify(&request(1, 1, &[2, 3, 4, 5])).unwrap();
        certifier.certify(&request(2, 2, &[6])).unwrap();
        certifier.certify(&request(3, 3, &[7, 8, 9, 10, 11])).unwrap();
        let remotes = certifier.writesets_after(Version(0));
        let versions: Vec<u64> = remotes.iter().map(|r| r.commit_version.value()).collect();
        assert_eq!(versions, vec![1, 2, 3, 4]);
        // A replica at version 2 sees exactly 3 and 4.
        let versions: Vec<u64> = certifier
            .writesets_after(Version(2))
            .iter()
            .map(|r| r.commit_version.value())
            .collect();
        assert_eq!(versions, vec![3, 4]);
    }

    #[test]
    fn extended_certification_takes_the_newest_bound_across_shards() {
        let certifier = sharded(2);
        // Find two keys on different shards of a 2-shard map.
        let map = certifier.shard_map();
        let key_a = 0i64; // whatever shard this lands on...
        let key_b = (1..100)
            .find(|&k| {
                map.shard_of(TableId(0), &tashkent_common::RowKey::Int(k))
                    != map.shard_of(TableId(0), &tashkent_common::RowKey::Int(key_a))
            })
            .expect("some key lands on the other shard");
        // v1 writes {a}; v2 writes {b}; v3 writes {a, b} starting at v2.
        certifier.certify(&request(0, 0, &[key_a])).unwrap();
        certifier.certify(&request(1, 1, &[key_b])).unwrap();
        certifier.certify(&request(2, 2, &[key_a, key_b])).unwrap();
        // v3 conflicts with v1 (shard A) and v2 (shard B) when pushed back
        // towards version 0; the merged bound is the newest conflict, v2.
        let remotes = certifier.writesets_after(Version::ZERO);
        let v3 = remotes
            .iter()
            .find(|r| r.commit_version == Version(3))
            .unwrap();
        assert_eq!(v3.conflict_free_to, Version(2));
    }

    #[test]
    fn forced_aborts_follow_the_configured_rate() {
        let certifier = ShardedCertifier::new(ShardedCertifierConfig {
            shards: 4,
            base: CertifierConfig {
                forced_abort_rate: 0.4,
                ..CertifierConfig::default()
            },
        });
        let mut aborted: u64 = 0;
        for i in 0..500 {
            let version = certifier.system_version().value();
            let response = certifier.certify(&request(version, version, &[i])).unwrap();
            if !response.decision.is_commit() {
                aborted += 1;
            }
        }
        let rate = aborted as f64 / 500.0;
        assert!((rate - 0.4).abs() < 0.08, "observed forced abort rate {rate}");
        let stats = certifier.stats();
        assert_eq!(stats.forced_aborts, aborted);
        assert_eq!(stats.conflict_aborts, 0);
    }

    #[test]
    fn shard_crash_blocks_only_that_shard_until_majority_restored() {
        let certifier = sharded(2);
        let map = certifier.shard_map();
        let shard_of = |k: i64| map.shard_of(TableId(0), &tashkent_common::RowKey::Int(k));
        let key_on = |shard: ShardId| (0..1000).find(|&k| shard_of(k) == shard).unwrap();
        let (k0, k1) = (key_on(ShardId(0)), key_on(ShardId(1)));

        // Lose shard 1's majority (two of three nodes).
        certifier.crash_shard_node(ShardId(1), CertifierNodeId(0));
        certifier.crash_shard_node(ShardId(1), CertifierNodeId(1));
        assert!(!certifier.is_available());
        // Shard 0 keeps certifying; shard 1 refuses.
        let version = certifier.system_version().value();
        assert!(certifier
            .certify(&request(version, version, &[k0]))
            .unwrap()
            .decision
            .is_commit());
        let version = certifier.system_version().value();
        assert!(matches!(
            certifier.certify(&request(version, version, &[k1])),
            Err(Error::Unavailable(_))
        ));
        // Restoring one node restores the majority and progress.
        certifier
            .recover_shard_node(ShardId(1), CertifierNodeId(0))
            .unwrap();
        assert!(certifier.is_available());
        let version = certifier.system_version().value();
        assert!(certifier
            .certify(&request(version, version, &[k1]))
            .unwrap()
            .decision
            .is_commit());
    }

    #[test]
    fn node_crash_spans_every_shard_group() {
        let certifier = sharded(3);
        certifier.crash_node(CertifierNodeId(0));
        assert!(certifier.is_available());
        let stats = certifier.stats();
        assert!(stats.shards.iter().all(|s| s.nodes_up == 2));
        certifier.recover_node(CertifierNodeId(0)).unwrap();
        assert!(certifier.stats().shards.iter().all(|s| s.nodes_up == 3));
    }

    #[test]
    fn durable_entries_cover_each_shards_commits() {
        let certifier = sharded(2);
        for k in 1..=12 {
            let version = certifier.system_version().value();
            certifier.certify(&request(version, version, &[k])).unwrap();
        }
        let stats = certifier.stats();
        let logged: u64 = stats.shards.iter().map(|s| s.entries).sum();
        assert_eq!(logged, 12);
        for shard in [ShardId(0), ShardId(1)] {
            let leader = certifier.shard_leader(shard);
            let entries = certifier.shard_durable_entries(shard, leader).unwrap();
            // Versions strictly increase within a shard's durable log.
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn merge_bounds_by_the_sampled_version() {
        let streams = vec![
            ShardStream {
                shard: ShardId(0),
                entries: vec![
                    RemoteWriteSet {
                        commit_version: Version(1),
                        writeset: std::sync::Arc::new(ws(&[1])),
                        conflict_free_to: Version::ZERO,
                    },
                    RemoteWriteSet {
                        commit_version: Version(3),
                        writeset: std::sync::Arc::new(ws(&[3])),
                        conflict_free_to: Version(1),
                    },
                ],
            },
            ShardStream {
                shard: ShardId(1),
                entries: vec![
                    RemoteWriteSet {
                        commit_version: Version(2),
                        writeset: std::sync::Arc::new(ws(&[2])),
                        conflict_free_to: Version::ZERO,
                    },
                    RemoteWriteSet {
                        commit_version: Version(3),
                        writeset: std::sync::Arc::new(ws(&[3])),
                        conflict_free_to: Version(2),
                    },
                ],
            },
        ];
        let merged = merge_shard_streams(&streams, Version(3));
        let versions: Vec<u64> = merged.iter().map(|r| r.commit_version.value()).collect();
        assert_eq!(versions, vec![1, 2, 3]);
        // The duplicate at v3 is emitted once, with the max bound.
        assert_eq!(merged[2].conflict_free_to, Version(2));
        // Bounding below the duplicate drops it from every stream.
        let merged = merge_shard_streams(&streams, Version(2));
        let versions: Vec<u64> = merged.iter().map(|r| r.commit_version.value()).collect();
        assert_eq!(versions, vec![1, 2]);
    }

    #[test]
    fn concurrent_commit_responses_cover_exactly_the_unseen_prefix() {
        // Regression: the commit response's remote stream must be bounded by
        // the transaction's own commit version as of *decision time*.  If
        // the bound were re-sampled after the locks drop, a racing commit
        // could slip into the stream while the requester's own version is
        // excluded — and a proxy applying that stream would advance past its
        // own commit without applying it.
        let certifier = std::sync::Arc::new(sharded(4));
        std::thread::scope(|scope| {
            for worker in 0..4i64 {
                let certifier = std::sync::Arc::clone(&certifier);
                scope.spawn(move || {
                    for i in 0..200 {
                        let replica_version = certifier.system_version();
                        let response = certifier
                            .certify(&CertificationRequest {
                                replica: ReplicaId(worker as u32),
                                start_version: replica_version,
                                writeset: ws(&[worker * 1_000_000 + i]),
                                replica_version,
                            })
                            .unwrap();
                        let own = response.commit_version.expect("disjoint keys commit");
                        let versions: Vec<u64> = response
                            .remote_writesets
                            .iter()
                            .map(|r| r.commit_version.value())
                            .collect();
                        // Exactly the dense range (replica_version, own):
                        // nothing missing, nothing at or above our own
                        // commit.
                        let expected: Vec<u64> =
                            (replica_version.value() + 1..own.value()).collect();
                        assert_eq!(versions, expected, "worker {worker} iteration {i}");
                    }
                });
            }
        });
        assert_eq!(certifier.stats().commits, 800);
    }

    #[test]
    fn truncation_trims_every_shard_and_guards_stale_requests() {
        let certifier = sharded(4);
        for k in 1..=12 {
            let version = certifier.system_version().value();
            certifier.certify(&request(version, version, &[k])).unwrap();
        }
        // Nothing may be trimmed before a checkpoint authorizes it.
        assert_eq!(certifier.truncate_below(Version(8)).unwrap(), 0);
        assert_eq!(certifier.seal_checkpoint(), Version(12));
        assert_eq!(certifier.checkpoint_version(), Version(12));
        let dropped = certifier.truncate_below(Version(8)).unwrap();
        assert!(dropped > 0, "some shard entries must be trimmed");
        assert!(certifier.truncation_floor() <= Version(8));
        assert!(certifier.log_len() >= 4, "entries above the watermark survive");
        // The merged stream still reproduces the retained suffix densely.
        let versions: Vec<u64> = certifier
            .writesets_after(Version(8))
            .iter()
            .map(|r| r.commit_version.value())
            .collect();
        assert_eq!(versions, vec![9, 10, 11, 12]);
        // A snapshot below an owning shard's floor aborts conservatively.
        // Writing every key guarantees the max-floor shard is among the
        // owners, and the floor guard fires before the intersection test.
        let floor = certifier.truncation_floor();
        assert!(floor > Version::ZERO);
        let all_keys: Vec<i64> = (1..=12).collect();
        let response = certifier
            .certify(&request(floor.value() - 1, 12, &all_keys))
            .unwrap();
        match response.decision {
            CertificationDecision::Abort { ref reason, forced } => {
                assert!(!forced);
                assert!(reason.contains("truncation floor"), "reason: {reason}");
            }
            CertificationDecision::Commit => panic!("stale snapshot must not commit"),
        }
        // A replica below the floor gets a loud state-transfer error.
        assert!(matches!(
            certifier.certify(&request(12, floor.value().saturating_sub(1), &[99])),
            Err(Error::Unavailable(_))
        ));
        // Fresh snapshots keep committing with dense versions.
        let response = certifier.certify(&request(12, 12, &[50])).unwrap();
        assert_eq!(response.commit_version, Some(Version(13)));
    }

    #[test]
    fn full_truncation_bounds_memory_and_preserves_progress() {
        let certifier = sharded(2);
        for k in 1..=10 {
            let version = certifier.system_version().value();
            certifier.certify(&request(version, version, &[k])).unwrap();
        }
        certifier.seal_checkpoint();
        certifier.truncate_below(certifier.system_version()).unwrap();
        assert_eq!(certifier.log_len(), 0, "fully covered logs trim to empty");
        // Durable logs are trimmed too.
        for shard in [ShardId(0), ShardId(1)] {
            let leader = certifier.shard_leader(shard);
            assert!(certifier.shard_durable_entries(shard, leader).unwrap().is_empty());
        }
        // The system version survives in the floors: the next commit is v11.
        let response = certifier.certify(&request(10, 10, &[77])).unwrap();
        assert_eq!(response.commit_version, Some(Version(11)));
    }

    #[test]
    fn empty_writesets_take_the_shard_zero_path() {
        let certifier = sharded(4);
        let response = certifier
            .certify(&CertificationRequest {
                replica: ReplicaId(0),
                start_version: Version::ZERO,
                writeset: WriteSet::new(),
                replica_version: Version::ZERO,
            })
            .unwrap();
        assert!(response.decision.is_commit());
        assert_eq!(response.commit_version, Some(Version(1)));
    }
}
