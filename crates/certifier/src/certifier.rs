//! The certifier façade used by replica proxies.
//!
//! [`Certifier`] combines the in-memory certified-writeset log
//! ([`CertifierLog`]), the majority-replicated durable log
//! ([`ReplicatedLog`]) and the certification policy (including the forced
//! abort rates used by the Section 9.5 experiment) behind the exact request /
//! response interface of Section 6.1:
//!
//! * request: `(T.tx_start_version, T.writeset)` plus the replica's current
//!   version so the certifier knows which remote writesets the replica has
//!   not seen yet;
//! * response: the remote writesets, the decision (commit / abort) and the
//!   transaction's commit version — extended, for Tashkent-API, with the
//!   version down to which each remote writeset is conflict-free
//!   (Section 5.2.1).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent_common::metrics::{CounterId, GaugeId, Stage};
use tashkent_common::{
    Component, Error, Event, EventKind, MetricsRegistry, ReplicaId, Result, Version, WriteSet,
};
use tashkent_storage::checkpoint::CheckpointStore;
use tashkent_storage::disk::DiskConfig;
use tashkent_storage::wal::WalRecord;

use crate::batch::{EpochQueue, Slot};
use crate::log::CertifierLog;
use crate::paxos::{CertifierNodeId, ReplicatedLog, ReplicatedLogStats};

/// Encodes a certifier checkpoint payload: the truncation floor followed by
/// the log entries above it, each framed as a WAL commit record (the same
/// checksummed frame the durable log uses).
#[must_use]
pub fn encode_checkpoint_payload(floor: Version, entries: &[(Version, Arc<WriteSet>)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + entries.len() * 64);
    payload.extend_from_slice(&floor.0.to_be_bytes());
    for (version, writeset) in entries {
        let record = WalRecord::Commit {
            version: *version,
            writeset: (**writeset).clone(),
        };
        payload.extend_from_slice(&record.encode());
    }
    payload
}

/// Decodes a certifier checkpoint payload back into its floor and entries.
///
/// # Errors
///
/// Returns [`Error::Corruption`] if the payload is truncated or a record
/// frame fails its checksum.
pub fn decode_checkpoint_payload(bytes: &[u8]) -> Result<(Version, Vec<(Version, WriteSet)>)> {
    if bytes.len() < 8 {
        return Err(Error::Corruption(
            "truncated certifier checkpoint payload".into(),
        ));
    }
    let floor = Version(u64::from_be_bytes(bytes[0..8].try_into().unwrap()));
    // Unlike WAL replay, a checkpoint image admits no torn tail: every byte
    // must decode, or the image is corrupt.
    let mut buf = bytes::Bytes::copy_from_slice(&bytes[8..]);
    let mut entries = Vec::new();
    loop {
        use bytes::Buf as _;
        if buf.remaining() == 0 {
            break;
        }
        match WalRecord::decode_from(&mut buf)? {
            Some(WalRecord::Commit { version, writeset }) => entries.push((version, writeset)),
            Some(WalRecord::Checkpoint { .. }) => {}
            None => {
                return Err(Error::Corruption(
                    "truncated record frame in certifier checkpoint payload".into(),
                ));
            }
        }
    }
    Ok((floor, entries))
}

/// Configuration of the certifier component.
#[derive(Debug, Clone)]
pub struct CertifierConfig {
    /// Number of certifier nodes (leader + backups).
    pub nodes: usize,
    /// Disk configuration of every node's persistent log.
    pub disk: DiskConfig,
    /// Whether certified writesets are synchronously logged before the
    /// certifier replies (`false` only for the `tashAPInoCERT` analysis).
    pub durable: bool,
    /// Fraction of certification requests aborted at random *after* the full
    /// certification check (Section 9.5's forced abort rates).
    pub forced_abort_rate: f64,
    /// Seed for the forced-abort random choice, so experiments are
    /// repeatable.
    pub seed: u64,
    /// Cluster metrics registry this certifier reports into.  Standalone
    /// certifiers default to a disabled (no-op) registry.
    pub metrics: Arc<MetricsRegistry>,
    /// Whether certification drains batched epochs with a footprint
    /// pre-screen (the default) or runs the serial one-writeset-at-a-time
    /// scan.  Decisions are identical either way; the flag exists so the
    /// benches can compare the two and so a regression can be bisected.
    pub batch: bool,
}

impl Default for CertifierConfig {
    fn default() -> Self {
        CertifierConfig {
            nodes: 3,
            disk: DiskConfig::default(),
            durable: true,
            forced_abort_rate: 0.0,
            seed: 0x7A5B_0001,
            metrics: Arc::new(MetricsRegistry::disabled()),
            batch: true,
        }
    }
}

/// A certification request from a replica's proxy.
#[derive(Debug, Clone, PartialEq)]
pub struct CertificationRequest {
    /// The requesting replica.
    pub replica: ReplicaId,
    /// The transaction's snapshot version (`tx_start_version`), possibly
    /// already advanced by local certification at the proxy.
    pub start_version: Version,
    /// The transaction's writeset.
    pub writeset: WriteSet,
    /// The replica's current version (`replica_version`): remote writesets
    /// newer than this are returned, and — for Tashkent-API — each returned
    /// writeset is additionally certified back to this version.
    pub replica_version: Version,
}

/// The certifier's verdict on one update transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificationDecision {
    /// No write-write conflict: the transaction commits globally.
    Commit,
    /// The transaction must abort.
    Abort {
        /// Human-readable reason (conflict version or forced abort).
        reason: String,
        /// `true` if this abort was injected by the forced-abort experiment
        /// rather than caused by a real conflict.
        forced: bool,
    },
}

impl CertificationDecision {
    /// `true` for the commit decision.
    #[must_use]
    pub fn is_commit(&self) -> bool {
        matches!(self, CertificationDecision::Commit)
    }
}

/// A remote writeset returned to a replica.
///
/// The writeset is shared (`Arc`) with the certifier's log: responses to
/// lagging replicas carry the whole unseen suffix, so handing out references
/// instead of deep copies keeps certification off the allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteWriteSet {
    /// The global version the writeset committed at.
    pub commit_version: Version,
    /// The writeset itself.
    pub writeset: std::sync::Arc<WriteSet>,
    /// The writeset is conflict-free against every writeset committed at
    /// versions in `(conflict_free_to, commit_version)`.  A Tashkent-API
    /// proxy may apply it concurrently with other pending writesets only if
    /// `conflict_free_to` does not exceed the replica's applied version
    /// (otherwise an "artificial" conflict would arise, Section 5.2.1).
    pub conflict_free_to: Version,
}

/// The certifier's reply to a certification request.
#[derive(Debug, Clone, PartialEq)]
pub struct CertificationResponse {
    /// Commit or abort.
    pub decision: CertificationDecision,
    /// The version the transaction commits at (only for commits).
    pub commit_version: Option<Version>,
    /// Remote writesets the replica has not seen yet (older than the
    /// transaction's commit version, newer than the replica's version).
    pub remote_writesets: Vec<RemoteWriteSet>,
    /// The certifier's current system version.
    pub system_version: Version,
}

/// Counters exposed by [`Certifier::stats`].
#[derive(Debug, Clone, Default)]
pub struct CertifierStats {
    /// Certification requests processed.
    pub requests: u64,
    /// Requests that committed.
    pub commits: u64,
    /// Requests aborted because of a real write-write conflict.
    pub conflict_aborts: u64,
    /// Requests aborted by the forced-abort experiment.
    pub forced_aborts: u64,
    /// State of the replicated durable log.
    pub log: ReplicatedLogStats,
}

struct CertifierInner {
    log: CertifierLog,
    rng: StdRng,
    requests: u64,
    commits: u64,
    conflict_aborts: u64,
    forced_aborts: u64,
}

/// A certification decision stripped of its remote-writeset stream: what an
/// epoch leader hands back to each submitting caller, which then assembles
/// its own [`CertificationResponse`] (the remote-stream gather — the
/// per-replica part of the response — stays on the caller's thread).
#[derive(Debug, Clone)]
pub(crate) struct Decided {
    pub(crate) decision: CertificationDecision,
    pub(crate) commit_version: Option<Version>,
    /// The system version at decision time; for commits this equals the
    /// commit version, for aborts the version the log stood at.
    pub(crate) system_version: Version,
}

/// A certify waiting in an epoch: the slot its decision resolves through.
pub(crate) type DecisionSlot = Arc<Slot<Result<Decided>>>;

impl Decided {
    /// The upper bound of the remote stream owed to the requester: one below
    /// its own commit for commits (the certifier never resends a replica its
    /// own writeset), the decision-time system version for aborts.
    pub(crate) fn remote_bound(&self) -> Version {
        self.commit_version
            .map_or(self.system_version, |commit| commit.prev())
    }
}

/// The certifier component shared by every replica proxy in a cluster.
pub struct Certifier {
    inner: Mutex<CertifierInner>,
    replicated: ReplicatedLog,
    checkpoints: CheckpointStore,
    forced_abort_rate: f64,
    metrics: Arc<MetricsRegistry>,
    /// Present when batched certification is enabled (the default).
    batcher: Option<EpochQueue<CertificationRequest, Result<Decided>>>,
}

impl std::fmt::Debug for Certifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Certifier")
            .field("system_version", &self.system_version())
            .finish()
    }
}

impl Certifier {
    /// Creates a certifier group.
    #[must_use]
    pub fn new(config: CertifierConfig) -> Self {
        Certifier {
            inner: Mutex::new(CertifierInner {
                log: CertifierLog::new(),
                rng: StdRng::seed_from_u64(config.seed),
                requests: 0,
                commits: 0,
                conflict_aborts: 0,
                forced_aborts: 0,
            }),
            replicated: ReplicatedLog::new(config.nodes, config.disk, config.durable),
            checkpoints: CheckpointStore::new(),
            forced_abort_rate: config.forced_abort_rate.clamp(0.0, 1.0),
            metrics: config.metrics,
            batcher: config.batch.then(EpochQueue::new),
        }
    }

    /// Rebuilds a certifier from previously durable log entries (certifier
    /// recovery: the in-memory log is reconstructed from the persistent log
    /// or from a state transfer, Section 7.3).
    #[must_use]
    pub fn from_entries(config: CertifierConfig, entries: &[(Version, WriteSet)]) -> Self {
        let certifier = Certifier::new(config);
        {
            let mut inner = certifier.inner.lock();
            for (version, writeset) in entries {
                inner.log.append_at(*version, std::sync::Arc::new(writeset.clone()));
            }
        }
        for (version, writeset) in entries {
            // Re-persist so the new group's disks hold the full log.
            let _ = certifier.replicated.append(*version, writeset);
        }
        certifier
    }

    /// Bootstraps a certifier from a sealed checkpoint image plus the log
    /// suffix committed after it (record-range incremental state transfer:
    /// the joiner fetches the newest checkpoint and only the records past
    /// it, not the full history).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the checkpoint payload fails its
    /// frame checks.
    pub fn from_checkpoint(
        config: CertifierConfig,
        checkpoint_payload: &[u8],
        suffix: &[(Version, WriteSet)],
    ) -> Result<Self> {
        let (floor, entries) = decode_checkpoint_payload(checkpoint_payload)?;
        // Versions at or below the image's newest entry (or its floor, if
        // the image is empty) are already covered; only newer suffix records
        // are applied.
        let covered = entries.last().map_or(floor, |(last, _)| *last);
        let tail = suffix.iter().filter(|(version, _)| *version > covered);
        let certifier = Certifier::new(config);
        {
            let mut inner = certifier.inner.lock();
            inner.log.restore_floor(floor);
            for (version, writeset) in entries.iter().chain(tail.clone()) {
                inner.log.append_at(*version, Arc::new(writeset.clone()));
            }
        }
        // Re-persist the entries above the floor so the new group's disks
        // hold exactly the retained suffix.
        for (version, writeset) in entries.iter().chain(tail) {
            let _ = certifier.replicated.append(*version, writeset);
        }
        certifier.replicated.truncate_below(floor)?;
        // The transferred image authorizes the restored floor.
        certifier
            .checkpoints
            .seal(certifier.system_version(), checkpoint_payload);
        Ok(certifier)
    }

    /// Seals a durable checkpoint of the certified log: the current
    /// truncation floor plus every entry above it, stored as a versioned,
    /// checksummed image behind an atomic manifest flip.  Returns the
    /// version the checkpoint covers up to.
    pub fn seal_checkpoint(&self) -> Version {
        let (version, payload) = {
            let inner = self.inner.lock();
            let floor = inner.log.floor();
            let entries = inner.log.entries_after(floor);
            (
                inner.log.system_version(),
                encode_checkpoint_payload(floor, &entries),
            )
        };
        self.checkpoints.seal(version, &payload);
        version
    }

    /// Drops log entries at or below `watermark` from the in-memory log and
    /// every up node's durable log.  The watermark is clamped to the newest
    /// sealed checkpoint version, so no record is ever dropped before a
    /// checkpoint covers it.  Returns the number of in-memory entries
    /// discarded.
    ///
    /// # Errors
    ///
    /// Propagates durable-log rewrite failures.
    pub fn truncate_below(&self, watermark: Version) -> Result<usize> {
        let bound = watermark.min(self.checkpoints.latest_version());
        if bound.is_zero() {
            return Ok(0);
        }
        let dropped = {
            let mut inner = self.inner.lock();
            inner.log.truncate_up_to(bound)
        };
        // New appends are strictly above `bound` (the floor carries the
        // system version), so trimming the durable log outside the in-memory
        // lock cannot race a record back below the floor.
        self.replicated.truncate_below(bound)?;
        Ok(dropped)
    }

    /// The truncation floor: certification requests whose snapshot lies
    /// below it can no longer be checked and are conservatively aborted.
    #[must_use]
    pub fn truncation_floor(&self) -> Version {
        self.inner.lock().log.floor()
    }

    /// The version covered by the newest sealed checkpoint
    /// ([`Version::ZERO`] before the first seal).
    #[must_use]
    pub fn checkpoint_version(&self) -> Version {
        self.checkpoints.latest_version()
    }

    /// The newest sealed checkpoint image's payload, if any (state transfer
    /// to a joining certifier).
    #[must_use]
    pub fn latest_checkpoint_payload(&self) -> Option<Vec<u8>> {
        self.checkpoints.latest().map(|sealed| sealed.payload)
    }

    /// Number of entries currently held in the in-memory certified log
    /// (bounded-memory assertions).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// The global system version (number of committed update transactions).
    #[must_use]
    pub fn system_version(&self) -> Version {
        self.inner.lock().log.system_version()
    }

    /// `true` if a majority of certifier nodes is up.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.replicated.is_available()
    }

    /// The current leader node.
    #[must_use]
    pub fn leader(&self) -> CertifierNodeId {
        self.replicated.leader()
    }

    /// Total number of nodes in the certifier group.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.replicated.node_count()
    }

    /// The nodes currently up, in node-id order (fault targeting).
    #[must_use]
    pub fn up_nodes(&self) -> Vec<CertifierNodeId> {
        self.replicated.up_nodes()
    }

    /// Crashes one certifier node (fault injection).
    pub fn crash_node(&self, node: CertifierNodeId) {
        self.replicated.crash_node(node);
    }

    /// Recovers a crashed certifier node via state transfer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if no up node can donate the log.
    pub fn recover_node(&self, node: CertifierNodeId) -> Result<()> {
        self.replicated.recover_node(node)
    }

    /// Certifies an update transaction (Section 6.1 pseudo-code).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] if fewer than a majority of certifier
    /// nodes are up; certification *decisions* (including aborts) are
    /// reported in the response, not as errors.
    pub fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
        if !self.replicated.is_available() {
            return Err(Error::Unavailable(
                "certifier majority not available".into(),
            ));
        }
        // Inbox depth: requests currently inside certification.
        let _inflight = self.metrics.gauge_guard(GaugeId::CertifierInflight);
        if let Some(batcher) = &self.batcher {
            let decided = batcher.submit(request.clone(), |epoch| self.process_epoch(epoch))?;
            // The remote-stream gather runs on the submitting thread, bounded
            // by the decision-time version so the response is identical to
            // the serial scan's (which gathers under the decision lock).
            let remote_writesets =
                self.remotes_between(request, decided.remote_bound())?;
            return Ok(CertificationResponse {
                decision: decided.decision,
                commit_version: decided.commit_version,
                remote_writesets,
                system_version: decided.system_version,
            });
        }
        self.certify_serial(request)
    }

    /// The serial (pre-batching) certification path, kept as the `batch:
    /// false` baseline and as the reference the equivalence tests compare
    /// against.
    fn certify_serial(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
        let mut inner = self.inner.lock();
        let floor = inner.log.floor();
        if request.replica_version < floor {
            // The records in (replica_version, floor] are truncated: the
            // certifier cannot serve a gap-free remote suffix, and silently
            // skipping the gap would diverge the replica.  The caller must
            // bootstrap from a checkpoint (state transfer) instead.
            return Err(Error::Unavailable(format!(
                "replica {} at version {} is below the certifier truncation floor {floor}; \
                 state transfer required",
                request.replica.value(),
                request.replica_version
            )));
        }
        self.metrics.incr(CounterId::CertifyRequests);
        inner.requests += 1;

        // Remote writesets the replica has not seen yet, gathered before the
        // committing transaction's own writeset is appended.  Each is
        // additionally certified back to the replica's version so that a
        // Tashkent-API proxy can detect artificial conflicts.
        let pending = inner.log.entries_after(request.replica_version);
        let mut remote_writesets = Vec::with_capacity(pending.len());
        for (commit_version, writeset) in pending {
            let conflict_free_to = inner
                .log
                .conflict_free_back_to(commit_version, request.replica_version);
            remote_writesets.push(RemoteWriteSet {
                commit_version,
                writeset,
                conflict_free_to,
            });
        }

        // A snapshot older than the truncation floor can no longer be
        // certified — the suffix it must be checked against is partly gone.
        // Abort conservatively: the abort is retryable with a fresh
        // snapshot, and never wrong (committing without the check could be).
        if request.start_version < floor {
            inner.conflict_aborts += 1;
            self.metrics.incr(CounterId::CertifyAborts);
            self.metrics
                .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
            let system_version = inner.log.system_version();
            return Ok(CertificationResponse {
                decision: CertificationDecision::Abort {
                    reason: format!(
                        "snapshot {} below truncation floor {floor}",
                        request.start_version
                    ),
                    forced: false,
                },
                commit_version: None,
                remote_writesets,
                system_version,
            });
        }

        // Step 1: intersection test against the log suffix.
        if let Some(conflict_version) = inner
            .log
            .conflict_after(&request.writeset, request.start_version)
        {
            inner.conflict_aborts += 1;
            self.metrics.incr(CounterId::CertifyAborts);
            self.metrics
                .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
            let system_version = inner.log.system_version();
            return Ok(CertificationResponse {
                decision: CertificationDecision::Abort {
                    reason: format!("write-write conflict with {conflict_version}"),
                    forced: false,
                },
                commit_version: None,
                remote_writesets,
                system_version,
            });
        }

        // Forced aborts happen after the full certification check so that all
        // computational overhead at the certifier is incurred (Section 9.5).
        if self.forced_abort_rate > 0.0 && inner.rng.gen::<f64>() < self.forced_abort_rate {
            inner.forced_aborts += 1;
            self.metrics.incr(CounterId::CertifyAborts);
            self.metrics
                .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
            let system_version = inner.log.system_version();
            return Ok(CertificationResponse {
                decision: CertificationDecision::Abort {
                    reason: "forced abort (experiment)".into(),
                    forced: true,
                },
                commit_version: None,
                remote_writesets,
                system_version,
            });
        }

        // Step 2: commit — assign the next version and append to the log.
        let commit_version = inner
            .log
            .append(request.writeset.clone(), request.start_version);
        inner.commits += 1;
        let system_version = inner.log.system_version();
        drop(inner);

        // The decision is only announced once the log record is durable on a
        // majority of certifier nodes.  Concurrent certifications share
        // fsyncs through group commit.
        if self.metrics.is_enabled() {
            let durable_started = Instant::now();
            self.replicated.append(commit_version, &request.writeset)?;
            self.metrics
                .record_stage(Stage::Durable, durable_started.elapsed());
            self.metrics.incr(CounterId::DurableAppends);
            self.metrics.incr(CounterId::CertifyCommits);
            // The unsharded certifier is the degenerate single-shard case.
            self.metrics.record_shard_commit(0);
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::CertifyCommit)
                    .version(commit_version.0)
                    .shard(0),
            );
            self.metrics.emit(
                Event::new(Component::Certifier, EventKind::DurableAppend)
                    .version(commit_version.0)
                    .shard(0),
            );
        } else {
            self.replicated.append(commit_version, &request.writeset)?;
        }

        Ok(CertificationResponse {
            decision: CertificationDecision::Commit,
            commit_version: Some(commit_version),
            remote_writesets,
            system_version,
        })
    }

    /// Certifies one drained epoch of pending requests, in arrival order,
    /// under a single log lock — the epoch leader's body.
    ///
    /// Decision identity with [`Certifier::certify_serial`] holds because
    /// each request sees every earlier request's append before it is checked,
    /// exactly as if they had arrived serially; the forced-abort RNG is drawn
    /// under the same guard (only for requests that survived the floor and
    /// conflict checks), keeping the draw sequence in lockstep with the
    /// serial path.  The per-epoch wins are one lock acquisition, a footprint
    /// pre-screen that lets provably conflict-free writesets skip the log
    /// scan, and one grouped durable append (one majority fsync per epoch).
    fn process_epoch(&self, epoch: Vec<(CertificationRequest, DecisionSlot)>) {
        let epoch_len = epoch.len() as u64;
        let mut commits: Vec<(Version, Arc<WriteSet>, DecisionSlot)> =
            Vec::with_capacity(epoch.len());
        let mut inner = self.inner.lock();
        for (request, slot) in epoch {
            let floor = inner.log.floor();
            if request.replica_version < floor {
                slot.fill(Err(Error::Unavailable(format!(
                    "replica {} at version {} is below the certifier truncation floor {floor}; \
                     state transfer required",
                    request.replica.value(),
                    request.replica_version
                ))));
                continue;
            }
            self.metrics.incr(CounterId::CertifyRequests);
            inner.requests += 1;

            if request.start_version < floor {
                inner.conflict_aborts += 1;
                self.metrics.incr(CounterId::CertifyAborts);
                self.metrics
                    .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
                slot.fill(Ok(Decided {
                    decision: CertificationDecision::Abort {
                        reason: format!(
                            "snapshot {} below truncation floor {floor}",
                            request.start_version
                        ),
                        forced: false,
                    },
                    commit_version: None,
                    system_version: inner.log.system_version(),
                }));
                continue;
            }

            // Pre-screen: if no bucket covering the writeset's footprint has
            // committed past the snapshot, the scan provably finds nothing.
            let conflict = if inner
                .log
                .prescreen_clear(&request.writeset, request.start_version)
            {
                self.metrics.incr(CounterId::PrescreenHits);
                None
            } else {
                self.metrics.incr(CounterId::PrescreenMisses);
                inner
                    .log
                    .conflict_after(&request.writeset, request.start_version)
            };
            if let Some(conflict_version) = conflict {
                inner.conflict_aborts += 1;
                self.metrics.incr(CounterId::CertifyAborts);
                self.metrics
                    .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
                slot.fill(Ok(Decided {
                    decision: CertificationDecision::Abort {
                        reason: format!("write-write conflict with {conflict_version}"),
                        forced: false,
                    },
                    commit_version: None,
                    system_version: inner.log.system_version(),
                }));
                continue;
            }

            if self.forced_abort_rate > 0.0 && inner.rng.gen::<f64>() < self.forced_abort_rate {
                inner.forced_aborts += 1;
                self.metrics.incr(CounterId::CertifyAborts);
                self.metrics
                    .emit(Event::new(Component::Certifier, EventKind::CertifyAbort).shard(0));
                slot.fill(Ok(Decided {
                    decision: CertificationDecision::Abort {
                        reason: "forced abort (experiment)".into(),
                        forced: true,
                    },
                    commit_version: None,
                    system_version: inner.log.system_version(),
                }));
                continue;
            }

            let writeset = Arc::new(request.writeset);
            let commit_version = inner
                .log
                .append_shared(Arc::clone(&writeset), request.start_version);
            inner.commits += 1;
            // Commit slots are filled only after the grouped durable append:
            // the decision is never announced before it is durable.
            commits.push((commit_version, writeset, slot));
        }
        drop(inner);

        self.metrics.add(CounterId::CertifyBatchSize, epoch_len);
        self.metrics.emit(
            Event::new(Component::Certifier, EventKind::CertifyBatch)
                .version(epoch_len)
                .shard(0),
        );

        if commits.is_empty() {
            return;
        }
        let group: Vec<(Version, Arc<WriteSet>)> = commits
            .iter()
            .map(|(version, writeset, _)| (*version, Arc::clone(writeset)))
            .collect();
        let durable_started = Instant::now();
        let appended = self.replicated.append_group(&group);
        if appended.is_ok() && self.metrics.is_enabled() {
            self.metrics
                .record_stage(Stage::Durable, durable_started.elapsed());
        }
        for (commit_version, _, slot) in commits {
            match &appended {
                Ok(()) => {
                    if self.metrics.is_enabled() {
                        self.metrics.incr(CounterId::DurableAppends);
                        self.metrics.incr(CounterId::CertifyCommits);
                        self.metrics.record_shard_commit(0);
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::CertifyCommit)
                                .version(commit_version.0)
                                .shard(0),
                        );
                        self.metrics.emit(
                            Event::new(Component::Certifier, EventKind::DurableAppend)
                                .version(commit_version.0)
                                .shard(0),
                        );
                    }
                    slot.fill(Ok(Decided {
                        decision: CertificationDecision::Commit,
                        commit_version: Some(commit_version),
                        // At the instant this request committed serially the
                        // system stood exactly at its commit version.
                        system_version: commit_version,
                    }));
                }
                Err(error) => slot.fill(Err(error.clone())),
            }
        }
    }

    /// Gathers the remote writesets owed to `request`'s replica, bounded
    /// above by `up_to` (the decision-time version): the batched path's
    /// waiter-side counterpart of the serial path's under-lock gather.
    fn remotes_between(
        &self,
        request: &CertificationRequest,
        up_to: Version,
    ) -> Result<Vec<RemoteWriteSet>> {
        let mut inner = self.inner.lock();
        if request.replica_version < inner.log.floor() {
            // A concurrent truncation raced past the replica's version
            // between decision and gather: the suffix is no longer gap-free.
            return Err(Error::Unavailable(format!(
                "replica {} at version {} is below the certifier truncation floor {}; \
                 state transfer required",
                request.replica.value(),
                request.replica_version,
                inner.log.floor()
            )));
        }
        let pending = inner.log.entries_after(request.replica_version);
        let mut remote_writesets = Vec::with_capacity(pending.len());
        for (commit_version, writeset) in pending {
            if commit_version > up_to {
                break;
            }
            let conflict_free_to = inner
                .log
                .conflict_free_back_to(commit_version, request.replica_version);
            remote_writesets.push(RemoteWriteSet {
                commit_version,
                writeset,
                conflict_free_to,
            });
        }
        Ok(remote_writesets)
    }

    /// Returns the remote writesets committed after `since`, used by the
    /// proxy's bounded-staleness refresh (Section 6.2) and by replica
    /// recovery.
    #[must_use]
    pub fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet> {
        let mut inner = self.inner.lock();
        let pending = inner.log.entries_after(since);
        pending
            .into_iter()
            .map(|(commit_version, writeset)| {
                let conflict_free_to = inner.log.conflict_free_back_to(commit_version, since);
                RemoteWriteSet {
                    commit_version,
                    writeset,
                    conflict_free_to,
                }
            })
            .collect()
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CertifierStats {
        let inner = self.inner.lock();
        CertifierStats {
            requests: inner.requests,
            commits: inner.commits,
            conflict_aborts: inner.conflict_aborts,
            forced_aborts: inner.forced_aborts,
            log: self.replicated.stats(),
        }
    }

    /// Reads the durable log of a given certifier node (recovery tooling).
    ///
    /// # Errors
    ///
    /// Propagates decode errors and unknown-node errors.
    pub fn durable_entries(&self, node: CertifierNodeId) -> Result<Vec<(Version, WriteSet)>> {
        self.replicated.durable_entries(node)
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::{TableId, Value, WriteItem};

    use super::*;

    fn ws(keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| WriteItem::update(TableId(0), k, vec![("x".into(), Value::Int(k))]))
                .collect(),
        )
    }

    fn request(start: u64, replica_version: u64, keys: &[i64]) -> CertificationRequest {
        CertificationRequest {
            replica: ReplicaId(0),
            start_version: Version(start),
            writeset: ws(keys),
            replica_version: Version(replica_version),
        }
    }

    #[test]
    fn non_conflicting_transactions_commit_in_order() {
        let certifier = Certifier::new(CertifierConfig::default());
        let r1 = certifier.certify(&request(0, 0, &[1])).unwrap();
        let r2 = certifier.certify(&request(0, 0, &[2])).unwrap();
        assert!(r1.decision.is_commit());
        assert!(r2.decision.is_commit());
        assert_eq!(r1.commit_version, Some(Version(1)));
        assert_eq!(r2.commit_version, Some(Version(2)));
        assert_eq!(certifier.system_version(), Version(2));
        // The second response carries the first transaction as a remote
        // writeset (the replica claimed version 0).
        assert_eq!(r2.remote_writesets.len(), 1);
        assert_eq!(r2.remote_writesets[0].commit_version, Version(1));
        let stats = certifier.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.log.entries, 2);
    }

    #[test]
    fn conflicting_concurrent_transactions_abort() {
        let certifier = Certifier::new(CertifierConfig::default());
        assert!(certifier
            .certify(&request(0, 0, &[5]))
            .unwrap()
            .decision
            .is_commit());
        // A transaction that also started at version 0 and writes key 5
        // conflicts with the first.
        let response = certifier.certify(&request(0, 0, &[5, 6])).unwrap();
        assert!(!response.decision.is_commit());
        assert!(response.commit_version.is_none());
        // A transaction that started *after* the first committed does not.
        let response = certifier.certify(&request(1, 1, &[5])).unwrap();
        assert!(response.decision.is_commit());
        let stats = certifier.stats();
        assert_eq!(stats.conflict_aborts, 1);
        assert_eq!(stats.commits, 2);
    }

    #[test]
    fn remote_writesets_are_limited_to_unseen_versions() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=5 {
            certifier.certify(&request(0, 0, &[k * 10])).unwrap();
        }
        // A replica that has already applied version 3 only gets 4 and 5.
        let response = certifier.certify(&request(5, 3, &[99])).unwrap();
        let versions: Vec<u64> = response
            .remote_writesets
            .iter()
            .map(|r| r.commit_version.value())
            .collect();
        assert_eq!(versions, vec![4, 5]);
    }

    #[test]
    fn extended_certification_reports_artificial_conflicts() {
        let certifier = Certifier::new(CertifierConfig::default());
        // v1 writes key 5; v2 writes key 7; v3 writes key 5 again (its
        // transaction started at version 1 so it does not conflict globally,
        // but it conflicts with v1 when both are applied concurrently).
        certifier.certify(&request(0, 0, &[5])).unwrap();
        certifier.certify(&request(1, 1, &[7])).unwrap();
        certifier.certify(&request(1, 1, &[5])).unwrap();
        // A replica still at version 0 receives all three: v3's
        // conflict_free_to must point at v1.
        let remotes = certifier.writesets_after(Version::ZERO);
        assert_eq!(remotes.len(), 3);
        let v3 = remotes.iter().find(|r| r.commit_version == Version(3)).unwrap();
        assert_eq!(v3.conflict_free_to, Version(1));
        let v2 = remotes.iter().find(|r| r.commit_version == Version(2)).unwrap();
        assert_eq!(v2.conflict_free_to, Version::ZERO);
    }

    #[test]
    fn forced_aborts_follow_the_configured_rate() {
        let certifier = Certifier::new(CertifierConfig {
            forced_abort_rate: 0.4,
            ..CertifierConfig::default()
        });
        let mut aborted: u64 = 0;
        for i in 0..500 {
            let response = certifier.certify(&request(
                certifier.system_version().value(),
                certifier.system_version().value(),
                &[i],
            ))
            .unwrap();
            if !response.decision.is_commit() {
                aborted += 1;
            }
        }
        let rate = aborted as f64 / 500.0;
        assert!((rate - 0.4).abs() < 0.08, "observed forced abort rate {rate}");
        let stats = certifier.stats();
        assert_eq!(stats.forced_aborts, aborted);
        assert_eq!(stats.conflict_aborts, 0);
    }

    #[test]
    fn certification_requires_a_majority_of_nodes() {
        let certifier = Certifier::new(CertifierConfig::default());
        certifier.certify(&request(0, 0, &[1])).unwrap();
        certifier.crash_node(CertifierNodeId(0));
        // Leader fails over, still available.
        assert!(certifier.is_available());
        assert_ne!(certifier.leader(), CertifierNodeId(0));
        certifier.certify(&request(1, 1, &[2])).unwrap();
        certifier.crash_node(CertifierNodeId(1));
        assert!(!certifier.is_available());
        assert!(matches!(
            certifier.certify(&request(2, 2, &[3])),
            Err(Error::Unavailable(_))
        ));
        // Recovering one node restores progress.
        certifier.recover_node(CertifierNodeId(0)).unwrap();
        assert!(certifier.is_available());
        certifier.certify(&request(2, 2, &[3])).unwrap();
    }

    #[test]
    fn recovery_from_durable_entries_reproduces_the_log() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=6 {
            certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
        }
        let entries = certifier.durable_entries(certifier.leader()).unwrap();
        assert_eq!(entries.len(), 6);
        let recovered = Certifier::from_entries(CertifierConfig::default(), &entries);
        assert_eq!(recovered.system_version(), Version(6));
        // The recovered certifier still detects conflicts against old
        // entries.
        let response = recovered.certify(&request(0, 6, &[1])).unwrap();
        assert!(!response.decision.is_commit());
    }

    #[test]
    fn checkpoint_payload_round_trips() {
        let entries: Vec<(Version, Arc<WriteSet>)> = (3..=5)
            .map(|v| (Version(v), Arc::new(ws(&[v as i64]))))
            .collect();
        let payload = encode_checkpoint_payload(Version(2), &entries);
        let (floor, decoded) = decode_checkpoint_payload(&payload).unwrap();
        assert_eq!(floor, Version(2));
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].0, Version(3));
        assert_eq!(decoded[2].0, Version(5));
        // Truncated payloads are rejected loudly.
        assert!(matches!(
            decode_checkpoint_payload(&payload[..7]),
            Err(Error::Corruption(_))
        ));
        assert!(matches!(
            decode_checkpoint_payload(&payload[..payload.len() - 1]),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn truncation_is_clamped_to_the_sealed_checkpoint() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=6 {
            certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
        }
        // No checkpoint sealed yet: nothing may be dropped.
        assert_eq!(certifier.truncate_below(Version(4)).unwrap(), 0);
        assert_eq!(certifier.truncation_floor(), Version::ZERO);
        // Seal at version 6, then truncate with a watermark of 4.
        assert_eq!(certifier.seal_checkpoint(), Version(6));
        assert_eq!(certifier.checkpoint_version(), Version(6));
        assert_eq!(certifier.truncate_below(Version(4)).unwrap(), 4);
        assert_eq!(certifier.truncation_floor(), Version(4));
        assert_eq!(certifier.log_len(), 2);
        // The durable log was trimmed too.
        let durable = certifier.durable_entries(certifier.leader()).unwrap();
        let versions: Vec<u64> = durable.iter().map(|(v, _)| v.value()).collect();
        assert_eq!(versions, vec![5, 6]);
    }

    #[test]
    fn certification_above_the_floor_still_detects_conflicts() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=6 {
            certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
        }
        certifier.seal_checkpoint();
        certifier.truncate_below(Version(4)).unwrap();
        // Key 5 committed at v5 (above the floor): a stale snapshot at v4
        // still conflicts with it.
        let response = certifier.certify(&request(4, 4, &[5])).unwrap();
        assert!(!response.decision.is_commit());
        // A fresh snapshot commits and versions keep advancing densely.
        let response = certifier.certify(&request(6, 6, &[7])).unwrap();
        assert_eq!(response.commit_version, Some(Version(7)));
    }

    #[test]
    fn requests_below_the_floor_are_refused_conservatively() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=6 {
            certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
        }
        certifier.seal_checkpoint();
        certifier.truncate_below(Version(4)).unwrap();
        // A snapshot below the floor aborts conservatively (retryable).
        let response = certifier.certify(&request(3, 4, &[99])).unwrap();
        assert!(matches!(
            response.decision,
            CertificationDecision::Abort { forced: false, .. }
        ));
        // A replica whose applied version is below the floor cannot be
        // served a gap-free suffix: loud error, state transfer required.
        assert!(matches!(
            certifier.certify(&request(4, 3, &[99])),
            Err(Error::Unavailable(_))
        ));
        let stats = certifier.stats();
        assert_eq!(stats.conflict_aborts, 1);
    }

    #[test]
    fn state_transfer_bootstraps_from_checkpoint_plus_suffix() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 1..=4 {
            certifier.certify(&request(k - 1, k - 1, &[k as i64])).unwrap();
        }
        certifier.seal_checkpoint();
        certifier.truncate_below(Version(2)).unwrap();
        // Re-seal so the image records the trimmed floor, then commit two
        // more transactions to form the suffix.
        certifier.seal_checkpoint();
        certifier.certify(&request(4, 4, &[5])).unwrap();
        certifier.certify(&request(5, 5, &[6])).unwrap();

        let payload = certifier.latest_checkpoint_payload().unwrap();
        let suffix: Vec<(Version, WriteSet)> = certifier
            .writesets_after(Version(4))
            .into_iter()
            .map(|r| (r.commit_version, (*r.writeset).clone()))
            .collect();
        let joiner =
            Certifier::from_checkpoint(CertifierConfig::default(), &payload, &suffix).unwrap();
        assert_eq!(joiner.system_version(), Version(6));
        assert_eq!(joiner.truncation_floor(), Version(2));
        // The joiner detects conflicts against transferred entries...
        let response = joiner.certify(&request(4, 4, &[5])).unwrap();
        assert!(!response.decision.is_commit());
        // ...and keeps committing past the transferred history.
        let response = joiner.certify(&request(6, 6, &[7])).unwrap();
        assert_eq!(response.commit_version, Some(Version(7)));
        // Its durable log holds only the retained range.
        let durable = joiner.durable_entries(joiner.leader()).unwrap();
        assert_eq!(durable.first().unwrap().0, Version(3));
    }

    #[test]
    fn group_commit_statistics_are_exposed() {
        let certifier = Certifier::new(CertifierConfig::default());
        for k in 0..20 {
            certifier
                .certify(&request(k, k, &[k as i64 + 100]))
                .unwrap();
        }
        let stats = certifier.stats();
        assert_eq!(stats.log.entries, 20);
        assert!(stats.log.leader_fsyncs > 0);
        assert!(stats.log.leader_log_bytes > 0);
        assert!(stats.log.leader_group_commit.mean_group_size() >= 1.0);
    }
}
