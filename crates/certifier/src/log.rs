//! The certified-writeset log.
//!
//! The certifier maintains an ordered log of `(writeset, commit_version)`
//! tuples for every committed update transaction.  Certification of a new
//! writeset is an intersection test against the log *suffix* — the entries
//! committed after the transaction's start version (Section 6.1).
//!
//! For Tashkent-API the log also answers the *extended certification* query
//! of Section 5.2.1: given an already-committed writeset, how far back is it
//! conflict-free?  The proxy uses the answer to decide whether a remote
//! writeset can be applied concurrently with earlier remote writesets, or
//! whether doing so would create an "artificial" write-write conflict at the
//! replica.  The per-entry answer is memoised (`checked_down_to`) so repeated
//! requests from different replicas do not repeat the intersection work.

use std::collections::HashSet;
use std::sync::Arc;

use tashkent_common::{footprint_hash, RowKey, TableId, Version, WriteSet};

/// Number of buckets in the pre-screen footprint index.
///
/// Each bucket holds the newest commit version whose writeset touched any
/// `(table, key)` pair hashing into it.  4096 buckets keep the index at one
/// cache-friendly 32 KiB array per shard while holding the collision
/// (false-miss) rate low for conflict windows of a few thousand rows.
const PRESCREEN_BUCKETS: usize = 4096;

/// One entry of the certified log.
///
/// The writeset is reference-counted: the same entry is handed to every
/// replica asking for remote writesets (and, under sharding, lives in every
/// owning shard's log), so sharing beats deep-cloning on the hot path.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Version created by this commit.
    pub commit_version: Version,
    /// The certified writeset.
    pub writeset: Arc<WriteSet>,
    /// Cached footprint for fast intersection tests (shared, like the
    /// writeset, across every owning shard's log under sharding).
    footprint: Arc<HashSet<(TableId, RowKey)>>,
    /// The writeset is known conflict-free against every entry with a commit
    /// version strictly greater than this value (and smaller than its own).
    /// Initially the transaction's start version (normal certification
    /// already covered that range).
    checked_down_to: Version,
}

impl LogEntry {
    fn new(commit_version: Version, writeset: Arc<WriteSet>, checked_down_to: Version) -> Self {
        let footprint = Arc::new(writeset.footprint());
        LogEntry {
            commit_version,
            writeset,
            footprint,
            checked_down_to,
        }
    }
}

/// The in-memory certified-writeset log.
#[derive(Debug)]
pub struct CertifierLog {
    entries: Vec<LogEntry>,
    /// Truncation floor: every entry at or below this version has been
    /// discarded (covered by a sealed checkpoint).  The floor carries the
    /// system version across truncation — an emptied log does not fall back
    /// to version zero — and bounds what certification can still answer:
    /// a request whose start version lies below the floor must be
    /// conservatively aborted, because the entries needed to certify it are
    /// gone.
    floor: Version,
    /// Pre-screen footprint index over the active conflict window: bucket
    /// `footprint_hash(table, key) % PRESCREEN_BUCKETS` holds the newest
    /// commit version that touched any pair hashing there.  A writeset all
    /// of whose buckets are at or below its snapshot provably intersects
    /// nothing in the suffix and may skip the scan (collisions only cause
    /// spurious scans, never missed conflicts).
    prescreen: Vec<Version>,
}

impl Default for CertifierLog {
    fn default() -> Self {
        CertifierLog {
            entries: Vec::new(),
            floor: Version::ZERO,
            prescreen: vec![Version::ZERO; PRESCREEN_BUCKETS],
        }
    }
}

impl CertifierLog {
    /// Creates an empty log (system version zero).
    #[must_use]
    pub fn new() -> Self {
        CertifierLog::default()
    }

    /// The system version: the commit version of the newest entry, or the
    /// truncation floor once everything has been trimmed away.
    #[must_use]
    pub fn system_version(&self) -> Version {
        self.entries.last().map_or(self.floor, |e| e.commit_version)
    }

    /// The truncation floor: entries at or below it are no longer in the
    /// log.  [`Version::ZERO`] until the first truncation.
    #[must_use]
    pub fn floor(&self) -> Version {
        self.floor
    }

    /// Number of certified writesets in the log.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been certified yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded size of all logged writesets in bytes (used for the
    /// certifier-recovery sizing experiment of Section 9.6).
    #[must_use]
    pub fn encoded_size(&self) -> usize {
        self.entries.iter().map(|e| e.writeset.encoded_len()).sum()
    }

    /// Pre-screens `writeset` against the footprint index: `true` means the
    /// writeset **provably** intersects no entry committed after
    /// `start_version`, so [`CertifierLog::conflict_after`] would return
    /// `None` and the scan can be skipped.  `false` means some bucket has
    /// seen a newer commit — possibly a hash collision — and the full scan
    /// must decide.
    ///
    /// Soundness: every append bumps the bucket of each touched pair to the
    /// entry's commit version, so a bucket always holds an upper bound over
    /// the commit versions of the entries it covers.  If every bucket of
    /// `writeset` is at or below `start_version`, then every logged entry
    /// sharing an actual pair committed at or below `start_version` — i.e.
    /// outside the certification suffix.  Buckets may only over-approximate
    /// (hash collisions, rebuilt-after-truncation windows), which costs a
    /// spurious scan, never a missed conflict.
    #[must_use]
    pub fn prescreen_clear(&self, writeset: &WriteSet, start_version: Version) -> bool {
        writeset.items().iter().all(|item| {
            let bucket = (footprint_hash(item.table, &item.key) as usize) % PRESCREEN_BUCKETS;
            self.prescreen[bucket] <= start_version
        })
    }

    /// Records an entry's footprint in the pre-screen index.
    fn index_footprint(&mut self, commit_version: Version, footprint: &HashSet<(TableId, RowKey)>) {
        for (table, key) in footprint {
            let bucket = (footprint_hash(*table, key) as usize) % PRESCREEN_BUCKETS;
            if self.prescreen[bucket] < commit_version {
                self.prescreen[bucket] = commit_version;
            }
        }
    }

    /// Tests whether `writeset` conflicts with any entry committed after
    /// `start_version` — the core certification check.
    ///
    /// Returns the commit version of the first conflicting entry found, or
    /// `None` if the writeset is conflict-free.
    #[must_use]
    pub fn conflict_after(&self, writeset: &WriteSet, start_version: Version) -> Option<Version> {
        if writeset.is_empty() {
            return None;
        }
        for entry in self.suffix(start_version) {
            if writeset.conflicts_with_footprint(&entry.footprint) {
                return Some(entry.commit_version);
            }
        }
        None
    }

    /// Appends a certified writeset, assigning it the next system version.
    ///
    /// `start_version` records how far back normal certification already
    /// checked the writeset, seeding the memoised extended-certification
    /// bound.
    pub fn append(&mut self, writeset: WriteSet, start_version: Version) -> Version {
        self.append_shared(Arc::new(writeset), start_version)
    }

    /// [`CertifierLog::append`] with an already-shared writeset, so batched
    /// certification can log the entry and keep the same `Arc` for the
    /// epoch's grouped durable append without a deep clone.
    pub fn append_shared(&mut self, writeset: Arc<WriteSet>, start_version: Version) -> Version {
        let commit_version = self.system_version().next();
        let entry = LogEntry::new(commit_version, writeset, start_version);
        let footprint = Arc::clone(&entry.footprint);
        self.entries.push(entry);
        self.index_footprint(commit_version, &footprint);
        commit_version
    }

    /// Appends an entry with an explicit version (used by certifier recovery
    /// and by backup nodes applying the leader's state).  The memoised
    /// extended-certification bound starts at the entry's own version (no
    /// certification work is known for recovered entries).
    pub fn append_at(&mut self, commit_version: Version, writeset: Arc<WriteSet>) {
        let footprint = Arc::new(writeset.footprint());
        let checked = commit_version.prev();
        self.append_at_with_footprint(commit_version, writeset, footprint, checked);
    }

    /// [`CertifierLog::append_at`] with a caller-computed footprint and
    /// certification bound, for the sharded certifier: the writeset is
    /// hashed once *outside* the global sequencer critical section and
    /// shared across every owning shard's log, and `checked_down_to` seeds
    /// the memoised extended-certification bound with the transaction's
    /// start version (certification already proved the entry conflict-free
    /// back to there), exactly like [`CertifierLog::append`].
    pub fn append_at_with_footprint(
        &mut self,
        commit_version: Version,
        writeset: Arc<WriteSet>,
        footprint: Arc<HashSet<(TableId, RowKey)>>,
        checked_down_to: Version,
    ) {
        debug_assert!(commit_version > self.system_version());
        self.index_footprint(commit_version, &footprint);
        self.entries.push(LogEntry {
            commit_version,
            writeset,
            footprint,
            checked_down_to,
        });
    }

    /// The entries committed after `since` (exclusive), i.e. the remote
    /// writesets a replica at version `since` has not seen yet.
    #[must_use]
    pub fn entries_after(&self, since: Version) -> Vec<(Version, Arc<WriteSet>)> {
        self.suffix(since)
            .map(|e| (e.commit_version, Arc::clone(&e.writeset)))
            .collect()
    }

    /// Extended certification (Section 5.2.1): determines the version down to
    /// which the entry committed at `commit_version` is conflict-free, but no
    /// further back than `target`.
    ///
    /// Returns `target` if the entry is conflict-free all the way back to
    /// `target`, or the commit version of the newest conflicting entry
    /// otherwise.  The result is memoised so that subsequent queries for the
    /// same entry avoid re-checking ("the certifier records for each writeset
    /// the point to where it has been further certified").
    pub fn conflict_free_back_to(&mut self, commit_version: Version, target: Version) -> Version {
        let index = match self
            .entries
            .binary_search_by_key(&commit_version, |e| e.commit_version)
        {
            Ok(i) => i,
            Err(_) => return target,
        };
        if self.entries[index].checked_down_to <= target {
            // Already certified at least that far back.
            return target.max(self.newest_conflict_cached(index, target));
        }
        let (probe_footprint, checked_down_to) = {
            let entry = &self.entries[index];
            (entry.footprint.clone(), entry.checked_down_to)
        };
        // Check the not-yet-covered range (target, checked_down_to].
        let mut newest_conflict: Option<Version> = None;
        for entry in self.entries[..index].iter().rev() {
            if entry.commit_version > checked_down_to {
                continue;
            }
            if entry.commit_version <= target {
                break;
            }
            if entry
                .footprint
                .iter()
                .any(|item| probe_footprint.contains(item))
            {
                newest_conflict = Some(entry.commit_version);
                break;
            }
        }
        match newest_conflict {
            Some(v) => {
                // Conflict found at v: the entry is conflict-free back to v.
                self.entries[index].checked_down_to = v;
                v
            }
            None => {
                self.entries[index].checked_down_to = target;
                target
            }
        }
    }

    /// Cached variant used when the memoised bound already covers `target`:
    /// the entry is known conflict-free back to `checked_down_to`, so the
    /// answer is simply `target` (the caller's bound).
    fn newest_conflict_cached(&self, _index: usize, target: Version) -> Version {
        target
    }

    /// Discards entries at or below `version` (log truncation once a sealed
    /// checkpoint and every live replica cover them).  Returns the number
    /// discarded.  The floor never moves above the current system version,
    /// so truncating "past the end" empties the log without inventing
    /// versions that were never committed.
    pub fn truncate_up_to(&mut self, version: Version) -> usize {
        let bound = version.min(self.system_version());
        let before = self.entries.len();
        self.entries.retain(|e| e.commit_version > bound);
        self.floor = self.floor.max(bound);
        let dropped = before - self.entries.len();
        if dropped > 0 {
            // Rebuild the pre-screen index over the retained window.  Leaving
            // trimmed versions in place would stay sound (valid snapshots are
            // at or above the floor) but would slowly degrade the hit rate as
            // old buckets shadow fresh snapshots.
            self.prescreen.iter_mut().for_each(|v| *v = Version::ZERO);
            type Footprint = Arc<HashSet<(TableId, RowKey)>>;
            let rebuilt: Vec<(Version, Footprint)> = self
                .entries
                .iter()
                .map(|e| (e.commit_version, Arc::clone(&e.footprint)))
                .collect();
            for (commit_version, footprint) in rebuilt {
                self.index_footprint(commit_version, &footprint);
            }
        }
        dropped
    }

    /// Restores the truncation floor when rebuilding a log from a sealed
    /// checkpoint (incremental state transfer): the checkpoint's floor is
    /// adopted directly instead of being clamped to the (possibly still
    /// empty) log's system version.  The floor stays monotone.
    pub fn restore_floor(&mut self, floor: Version) {
        debug_assert!(
            self.entries.first().is_none_or(|e| e.commit_version > floor),
            "restored floor must lie below every entry"
        );
        self.floor = self.floor.max(floor);
    }

    fn suffix(&self, after: Version) -> impl Iterator<Item = &LogEntry> {
        // Entries are sorted by commit version; binary search for the split.
        let start = self
            .entries
            .partition_point(|e| e.commit_version <= after);
        self.entries[start..].iter()
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::{Value, WriteItem};

    use super::*;

    fn ws(table: u32, keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| WriteItem::update(TableId(table), k, vec![("x".into(), Value::Int(k))]))
                .collect(),
        )
    }

    #[test]
    fn append_assigns_consecutive_versions() {
        let mut log = CertifierLog::new();
        assert!(log.is_empty());
        assert_eq!(log.system_version(), Version::ZERO);
        assert_eq!(log.append(ws(0, &[1]), Version::ZERO), Version(1));
        assert_eq!(log.append(ws(0, &[2]), Version::ZERO), Version(2));
        assert_eq!(log.system_version(), Version(2));
        assert_eq!(log.len(), 2);
        assert!(log.encoded_size() > 0);
    }

    #[test]
    fn conflict_detection_respects_start_version() {
        let mut log = CertifierLog::new();
        log.append(ws(0, &[1, 2]), Version::ZERO); // v1
        log.append(ws(0, &[3]), Version::ZERO); // v2
        // A transaction that started at version 0 conflicts with v1.
        assert_eq!(log.conflict_after(&ws(0, &[2]), Version::ZERO), Some(Version(1)));
        // The same writeset certified from version 1 onwards is clean.
        assert_eq!(log.conflict_after(&ws(0, &[2]), Version(1)), None);
        // Non-overlapping writesets never conflict.
        assert_eq!(log.conflict_after(&ws(0, &[9]), Version::ZERO), None);
        // Read-only (empty) writesets never conflict.
        assert_eq!(log.conflict_after(&WriteSet::new(), Version::ZERO), None);
        // Different table, same key: no conflict.
        assert_eq!(log.conflict_after(&ws(1, &[1]), Version::ZERO), None);
    }

    #[test]
    fn entries_after_returns_unseen_remote_writesets() {
        let mut log = CertifierLog::new();
        log.append(ws(0, &[1]), Version::ZERO);
        log.append(ws(0, &[2]), Version::ZERO);
        log.append(ws(0, &[3]), Version::ZERO);
        let remote = log.entries_after(Version(1));
        assert_eq!(remote.len(), 2);
        assert_eq!(remote[0].0, Version(2));
        assert_eq!(remote[1].0, Version(3));
        assert!(log.entries_after(Version(3)).is_empty());
        assert_eq!(log.entries_after(Version::ZERO).len(), 3);
    }

    #[test]
    fn extended_certification_finds_artificial_conflicts() {
        let mut log = CertifierLog::new();
        // v1 and v3 touch key 5; v2 is unrelated.
        log.append(ws(0, &[5]), Version::ZERO); // v1
        log.append(ws(0, &[7]), Version(1)); // v2
        log.append(ws(0, &[5, 8]), Version(2)); // v3 — certified back to v2 only.
        // Asking how far back v3 is conflict-free towards version 0 finds the
        // conflict with v1.
        assert_eq!(
            log.conflict_free_back_to(Version(3), Version::ZERO),
            Version(1)
        );
        // The result is memoised: asking again with a target at or after the
        // conflict yields the target itself.
        assert_eq!(
            log.conflict_free_back_to(Version(3), Version(1)),
            Version(1)
        );
        // v2 is conflict-free all the way back.
        assert_eq!(
            log.conflict_free_back_to(Version(2), Version::ZERO),
            Version::ZERO
        );
        // Unknown versions are reported as conflict-free to the target.
        assert_eq!(
            log.conflict_free_back_to(Version(99), Version(4)),
            Version(4)
        );
    }

    #[test]
    fn append_at_and_truncate() {
        let mut log = CertifierLog::new();
        log.append_at(Version(3), Arc::new(ws(0, &[1])));
        log.append_at(Version(5), Arc::new(ws(0, &[2])));
        assert_eq!(log.system_version(), Version(5));
        assert_eq!(log.conflict_after(&ws(0, &[1]), Version::ZERO), Some(Version(3)));
        let removed = log.truncate_up_to(Version(3));
        assert_eq!(removed, 1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.system_version(), Version(5));
        assert_eq!(log.floor(), Version(3));
    }

    #[test]
    fn truncation_floor_carries_the_system_version() {
        let mut log = CertifierLog::new();
        log.append(ws(0, &[1]), Version::ZERO); // v1
        log.append(ws(0, &[2]), Version::ZERO); // v2
        // Truncating past the end empties the log but the system version
        // survives in the floor — the next append continues at v3, and the
        // floor never claims versions that were never committed.
        assert_eq!(log.truncate_up_to(Version(100)), 2);
        assert!(log.is_empty());
        assert_eq!(log.floor(), Version(2));
        assert_eq!(log.system_version(), Version(2));
        assert_eq!(log.append(ws(0, &[3]), Version(2)), Version(3));
        // The floor is monotone: a smaller watermark cannot lower it.
        assert_eq!(log.truncate_up_to(Version(1)), 0);
        assert_eq!(log.floor(), Version(2));
    }
}
