//! Property tests for watermark-driven log truncation.
//!
//! Random interleavings of commits, replica crashes/recoveries and
//! checkpoint-and-trim cycles must uphold two guarantees:
//!
//! * **Watermark safety** — after every trim, no live replica sits below
//!   the truncation floor and every replica's newest checkpoint covers it,
//!   so no replica (live or recovering) ever needs a truncated record.
//! * **Trim transparency** — a cluster that trims aggressively behaves
//!   *identically* to one that never trims: the same op sequence produces
//!   the same commit/abort decisions at the same versions, and the healed
//!   clusters converge to the same contents.

use proptest::prelude::*;
use tashkent::{Cluster, ClusterConfig, SystemKind, TableId, Value};

#[derive(Debug, Clone, Copy)]
enum Op {
    Commit { replica: usize, key: i64 },
    Crash { replica: usize },
    Recover { replica: usize },
    Trim,
}

/// Weighted op choice: 5 commit : 1 crash : 1 recover : 2 trim.  The
/// vendored proptest has no `prop_oneof!`, so the weights live in an
/// integer selector mapped onto the variants.
fn arb_op() -> impl Strategy<Value = Op> {
    (0u32..9, 0usize..2, 0i64..48).prop_map(|(sel, replica, key)| match sel {
        0..=4 => Op::Commit { replica, key },
        5 => Op::Crash { replica },
        6 => Op::Recover { replica },
        _ => Op::Trim,
    })
}

fn arb_system() -> impl Strategy<Value = SystemKind> {
    (0u32..3).prop_map(|sel| match sel {
        0 => SystemKind::Base,
        1 => SystemKind::TashkentMw,
        _ => SystemKind::TashkentApi,
    })
}

fn build(system: SystemKind, shards: usize) -> (Cluster, TableId) {
    let mut config = ClusterConfig::small(system);
    config.certifier_shards = shards;
    let cluster = Cluster::new(config).unwrap();
    let table = cluster.create_table("kv", &["v"]);
    cluster.seal_baseline();
    (cluster, table)
}

/// Drives one op sequence; `trim` selects whether `Op::Trim` actually
/// checkpoints and truncates (the control cluster treats it as a no-op).
/// Returns the per-op decision log, then heals and syncs the cluster.
fn drive(cluster: &Cluster, table: TableId, ops: &[Op], trim: bool) -> Vec<String> {
    let mut log = Vec::new();
    let mut value = 0i64;
    for op in ops {
        match *op {
            Op::Commit { replica, key } => {
                // The payload counter advances even for skipped commits so
                // both clusters write identical values at identical steps.
                value += 1;
                if cluster.replica(replica).is_crashed() {
                    log.push("skipped".to_owned());
                    continue;
                }
                let tx = cluster.session(replica).begin();
                let outcome = tx
                    .insert(table, key, vec![("v".into(), Value::Int(value))])
                    .and_then(|()| tx.commit().map(|_| ()));
                log.push(match outcome {
                    Ok(()) => format!(
                        "commit@{}",
                        cluster.replica(replica).version().value()
                    ),
                    Err(_) => "abort".to_owned(),
                });
            }
            Op::Crash { replica } => {
                if !cluster.replica(replica).is_crashed() {
                    cluster.replica(replica).crash();
                }
                log.push(format!("crash-{replica}"));
            }
            Op::Recover { replica } => {
                if cluster.replica(replica).is_crashed() {
                    // Watermark safety in action: recovery must never fail
                    // for lack of a truncated record.
                    let recovered = cluster.recover_replica(replica);
                    prop_assert!(
                        recovered.is_ok(),
                        "recovery of replica {replica} failed on the {} cluster: {recovered:?}",
                        if trim { "trimmed" } else { "control" }
                    );
                }
                log.push(format!("recover-{replica}"));
            }
            Op::Trim => {
                if trim {
                    cluster.checkpoint();
                    let trimmed = cluster.trim();
                    prop_assert!(trimmed.is_ok(), "trim failed: {trimmed:?}");
                    let floor = cluster.truncation_floor();
                    for r in 0..cluster.replica_count() {
                        let node = cluster.replica(r);
                        if !node.is_crashed() {
                            prop_assert!(
                                node.version() >= floor,
                                "live replica {r} at {} fell below the floor {floor}",
                                node.version()
                            );
                        }
                        prop_assert!(
                            node.checkpoint_version() >= floor,
                            "replica {r} checkpoint {} does not cover the floor {floor}",
                            node.checkpoint_version()
                        );
                    }
                }
                log.push("trim".to_owned());
            }
        }
    }
    // Heal and converge before the content comparison.
    for r in 0..cluster.replica_count() {
        if cluster.replica(r).is_crashed() {
            let recovered = cluster.recover_replica(r);
            prop_assert!(recovered.is_ok(), "final heal of replica {r}: {recovered:?}");
        }
    }
    let synced = cluster.sync_all();
    prop_assert!(synced.is_ok(), "final sync: {synced:?}");
    log
}

/// Replica 0's table contents as a sorted, comparable list.
fn contents(cluster: &Cluster, table: TableId) -> Vec<(String, i64)> {
    let db = cluster.replica(0).database();
    let tx = db.begin();
    let mut rows: Vec<(String, i64)> = tx
        .scan(table)
        .unwrap()
        .iter()
        .map(|(key, row)| {
            (
                format!("{key:?}"),
                row.get("v").and_then(Value::as_int).unwrap_or(i64::MIN),
            )
        })
        .collect();
    tx.abort();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn trimmed_and_untrimmed_clusters_are_indistinguishable(
        system in arb_system(),
        shards in (0u32..2).prop_map(|s| 1 + s as usize),
        ops in prop::collection::vec(arb_op(), 1..28),
    ) {
        let (trimmed, trimmed_table) = build(system, shards);
        let (control, control_table) = build(system, shards);
        let trimmed_log = drive(&trimmed, trimmed_table, &ops, true);
        let control_log = drive(&control, control_table, &ops, false);
        // Decision-identical: same commits, same aborts, at the same
        // installed versions.
        prop_assert_eq!(&trimmed_log, &control_log);
        // Content-identical: the healed clusters converge to the same
        // system version and the same rows.
        prop_assert_eq!(trimmed.system_version(), control.system_version());
        prop_assert_eq!(
            contents(&trimmed, trimmed_table),
            contents(&control, control_table)
        );
    }
}
