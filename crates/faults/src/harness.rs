//! The schedule harness: one seed in, one verified schedule out.
//!
//! [`run_schedule`] is the single entry point the soak tests and CI smoke
//! use: the seed determines the cluster shape (system, replica count,
//! certifier shard count), the workload, the load parameters *and* the
//! fault plan, so a failing run is reproduced by exactly one number.
//! [`run_plan`] runs an explicit plan against an explicit configuration —
//! the building block [`shrink_failure`] uses to re-execute candidate plans
//! during minimization.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent::{Cluster, ClusterConfig, SystemKind, Watchdog, WatchdogConfig};
use tashkent_workloads::{
    run_driver, AllUpdates, DriverConfig, DriverReport, TpcB, Workload,
};

use crate::executor::{ExecutionTrace, FaultExecutor};
use crate::minimize::{minimize, Minimized};
use crate::oracle::{
    check_cluster, check_metrics_progression, TpcBInvariant, Violation, WorkloadInvariant,
};
use crate::plan::{FaultPlan, PlanConfig};

/// The workloads the harness drives fault schedules under.
///
/// Both are all-update mixes so the commit version — the injection-point
/// clock — advances briskly; TPC-B adds real write-write conflicts, the
/// multi-table writesets that exercise multi-shard certification, and a
/// conservation law for the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessWorkload {
    /// Disjoint-key single-row updates (no conflicts, maximal throughput).
    AllUpdates,
    /// TPC-B with a small branch set (conflicts, multi-shard writesets,
    /// balance-sum invariant).
    TpcB,
}

impl HarnessWorkload {
    fn build(self) -> Arc<dyn Workload> {
        match self {
            HarnessWorkload::AllUpdates => Arc::new(AllUpdates::default()),
            HarnessWorkload::TpcB => Arc::new(TpcB {
                branches: 2,
                tellers_per_branch: 2,
                accounts_per_branch: 100,
            }),
        }
    }

    fn invariant(self) -> Option<Box<dyn WorkloadInvariant>> {
        match self {
            HarnessWorkload::AllUpdates => None,
            HarnessWorkload::TpcB => Some(Box::new(TpcBInvariant)),
        }
    }
}

/// Everything one schedule run needs, derived from a seed or set by hand.
#[derive(Debug, Clone)]
pub struct ScheduleConfig {
    /// Replication design under test.
    pub system: SystemKind,
    /// Replica count.
    pub replicas: usize,
    /// Certifier shard count (1 = the unsharded certifier).
    pub certifier_shards: usize,
    /// Workload driving the commit clock.
    pub workload: HarnessWorkload,
    /// Closed-loop clients per replica.
    pub clients_per_replica: usize,
    /// Load window.
    pub duration: Duration,
    /// Crash/recover pairs to schedule.
    pub faults: usize,
    /// Maximum commit-version gap between consecutive fault events.
    pub version_step: u64,
    /// Lift the quorum-safety bounds on plan generation: schedules may
    /// down whole shard groups and every replica at once (see
    /// [`PlanConfig::total_outage`]).
    pub total_outage: bool,
    /// Run the cluster over the in-memory loopback network and weave link
    /// sever/heal events into the schedule (see [`PlanConfig::partition`]).
    pub partition: bool,
    /// Seeded packet loss for the whole run: each send has this
    /// probability of resetting its connection (see
    /// [`PlanConfig::drop_rate`]).  Implies the loopback transport.
    /// `0.0` disables.
    pub drop_rate: f64,
}

impl ScheduleConfig {
    /// Draws a mixed cluster/workload/fault shape from the seed.
    ///
    /// The draw is deterministic: the same seed always produces the same
    /// configuration (and, via [`run_schedule`], the same plan).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // A distinct stream from the plan's (which uses the seed directly).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5);
        let system = match rng.gen_range(0..3u32) {
            0 => SystemKind::Base,
            1 => SystemKind::TashkentMw,
            _ => SystemKind::TashkentApi,
        };
        let certifier_shards = [1usize, 2, 4][rng.gen_range(0..3usize)];
        let workload = if rng.gen_bool(0.5) {
            HarnessWorkload::AllUpdates
        } else {
            HarnessWorkload::TpcB
        };
        ScheduleConfig {
            system,
            replicas: rng.gen_range(2..=3usize),
            certifier_shards,
            workload,
            clients_per_replica: rng.gen_range(2..=3usize),
            duration: Duration::from_millis(rng.gen_range(200..=300u64)),
            faults: rng.gen_range(2..=4usize),
            version_step: rng.gen_range(15..=40u64),
            // Drawn last so the flag's introduction left every earlier
            // field of existing seeds unchanged.  A quarter of the seed
            // space exercises non-quorum-safe schedules: majority loss,
            // whole shard groups down, every replica down.
            total_outage: rng.gen_bool(0.25),
            // Same append-last convention, one draw later still: a fifth of
            // the seed space runs over the loopback network with link
            // faults layered onto the crash schedule.
            partition: rng.gen_bool(0.2),
            // Appended last again: a sixth of the seed space adds seeded
            // packet loss (random connection resets) on top of whatever
            // the earlier draws chose.  The rate stays low enough that the
            // driver's resilient clients ride out the reconnect storms.
            drop_rate: if rng.gen_bool(1.0 / 6.0) {
                rng.gen_range(0.001..0.005)
            } else {
                0.0
            },
        }
    }

    /// The cluster configuration this schedule runs on.
    #[must_use]
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut config = ClusterConfig::small(self.system);
        config.replicas = self.replicas;
        config.certifier_shards = self.certifier_shards;
        config.clients_per_replica = self.clients_per_replica;
        if self.partition || self.drop_rate > 0.0 {
            // Link faults need a real wire to cut (and packet loss a real
            // wire to lose): run the whole cluster over the deterministic
            // in-memory loopback transport.
            config.transport = tashkent::TransportKind::Loopback;
        }
        config
    }

    /// The plan-generation bounds matching this cluster shape.
    #[must_use]
    pub fn plan_config(&self) -> PlanConfig {
        let cluster = self.cluster_config();
        let mut plan = PlanConfig::for_cluster(
            self.replicas,
            self.certifier_shards,
            cluster.certifiers,
        );
        plan.faults = self.faults;
        plan.version_step = self.version_step;
        plan.total_outage = self.total_outage;
        plan.partition = self.partition;
        plan.drop_rate = self.drop_rate;
        plan
    }
}

/// The result of one executed-and-verified schedule.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The seed the schedule came from (0 for hand-built plans).
    pub seed: u64,
    /// The configuration the schedule ran under.
    pub config: ScheduleConfig,
    /// The plan that was executed.
    pub plan: FaultPlan,
    /// The executed events with resolved victims.
    pub trace: ExecutionTrace,
    /// The workload's driver report.
    pub report: DriverReport,
    /// Invariant violations (empty = the schedule passed).
    pub violations: Vec<Violation>,
    /// The cluster's final metrics snapshot (taken after the heal and the
    /// oracle) — how tests assert schedule-level effects like "logs were
    /// demonstrably truncated during this run".
    pub snapshot: tashkent::MetricsSnapshot,
    /// Diagnostic bundle captured for a failing schedule (`None` when the
    /// schedule passed or the bundle could not be written).
    pub bundle: Option<PathBuf>,
}

impl ScheduleOutcome {
    /// `true` if every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line replay recipe printed for failing schedules.
    #[must_use]
    pub fn replay_hint(&self) -> String {
        format!(
            "FAULT_SEED={:#x} cargo test --test fault_schedules -- --nocapture",
            self.seed
        )
    }
}

impl std::fmt::Display for ScheduleOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "schedule seed {:#x}: {} on {} ({} replicas, {} shard(s)) — {} commits, {} faults, prescreen {}/{} hit/miss, {}",
            self.seed,
            match self.config.workload {
                HarnessWorkload::AllUpdates => "AllUpdates",
                HarnessWorkload::TpcB => "TPC-B",
            },
            self.config.system,
            self.config.replicas,
            self.config.certifier_shards,
            self.report.committed,
            self.plan.fault_count(),
            // Printed on every schedule (PR smoke and nightly soak alike)
            // so pre-screen effectiveness under faults is visible in CI
            // logs, not just in benches.
            self.snapshot
                .counter(tashkent_common::metrics::CounterId::PrescreenHits),
            self.snapshot
                .counter(tashkent_common::metrics::CounterId::PrescreenMisses),
            if self.passed() { "PASS" } else { "FAIL" },
        )?;
        if !self.passed() {
            write!(f, "{}", self.plan)?;
            for violation in &self.violations {
                writeln!(f,"  {violation}")?;
            }
            if let Some(bundle) = &self.bundle {
                writeln!(f, "  evidence: {}", bundle.display())?;
            }
            writeln!(f, "  replay: {}", self.replay_hint())?;
        }
        Ok(())
    }
}

/// Runs one explicit plan under an explicit configuration.
///
/// Builds a fresh cluster, starts the fault injector, drives the workload
/// with resilient closed-loop clients, heals the cluster, and runs the
/// invariant oracle.
///
/// # Panics
///
/// Panics if the cluster configuration is invalid (harness configurations
/// are constructed valid) or the injector thread panics.
#[must_use]
pub fn run_plan(seed: u64, config: &ScheduleConfig, plan: &FaultPlan) -> ScheduleOutcome {
    let cluster = Arc::new(Cluster::new(config.cluster_config()).expect("valid configuration"));
    // Seeded packet loss rides under the whole schedule, salted away from
    // every other RNG stream so enabling it never moves a seed's fault
    // events (PlanConfig carries the rate; the loopback net rolls the
    // per-send dice).
    let drop_rate = config.plan_config().drop_rate;
    if drop_rate > 0.0 {
        cluster.set_packet_loss(seed ^ 0xD209_5EED_0CA5_CADE, drop_rate);
    }
    let workload = config.workload.build();
    workload.setup(&cluster);
    let metrics_before = cluster.metrics_snapshot();

    // Opt-in online anomaly detection during the schedule (nightly soaks
    // set FAULT_WATCHDOG=1): a firing detector writes its own bundle,
    // independent of the oracle capture below.
    let watchdog = std::env::var_os("FAULT_WATCHDOG")
        .is_some_and(|v| v != "0" && !v.is_empty())
        .then(|| cluster.start_watchdog(WatchdogConfig::from_env()));

    // The background trimmer seals checkpoints and advances the truncation
    // watermark *during* the schedule, so crashes land on trimmed logs and
    // recoveries exercise the checkpoint-plus-suffix state transfer.
    let trimmer = cluster.start_trimmer(tashkent::DEFAULT_TRIM_INTERVAL);

    let injector = FaultExecutor::new(Arc::clone(&cluster), plan.clone()).start();
    let report = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: config.clients_per_replica,
            duration: config.duration,
            seed: seed ^ 0x5EED_0BAD_F00D,
            resilient: true,
        },
    );
    // Disarm before the oracle runs: verification syncs replicas with the
    // load stopped (zero commits, WAL fsyncs still ticking), which is
    // indistinguishable from the drain-stall signature.  The real
    // drain-tail window is covered — `run_driver` blocks through the
    // drain, so a stuck shutdown fires the detector before this line.
    let fired = watchdog.map(Watchdog::stop).unwrap_or_default();
    for anomaly in &fired {
        eprintln!("watchdog fired during schedule {seed:#x}: {}", anomaly.verdict);
    }

    let (trace, mut violations) = match injector.finish() {
        Ok(trace) => (trace, Vec::new()),
        Err(e) => (
            ExecutionTrace::default(),
            vec![Violation {
                invariant: "executor",
                detail: format!("fault execution failed: {e}"),
            }],
        ),
    };
    // Stop the trimmer before the oracle runs: the dense-history and
    // durable-coverage checks read the truncation floor and the retained
    // stream as one consistent pair, which a concurrent trim would skew.
    drop(trimmer);
    let invariant = config.workload.invariant();
    violations.extend(check_cluster(&cluster, invariant.as_deref()));
    // One explicit checkpoint-and-trim on the healed, converged cluster:
    // short schedules can race the background trim tick and finish without
    // a single effective trim, leaving the truncation metrics empty.  It
    // runs *after* the oracle so the stream checks still see the floor the
    // background trimmer actually reached mid-run, and deterministically —
    // no waiting on thread timing.
    cluster.checkpoint();
    let _ = cluster.trim();
    // Crashes and recoveries must never make a metric run backwards.
    violations.extend(check_metrics_progression(
        &metrics_before,
        &cluster.metrics_snapshot(),
    ));
    // Nightly soaks additionally assert the bounded-memory postcondition:
    // a full checkpoint-and-trim on the healed cluster empties the logs
    // and the cluster still commits.
    if std::env::var_os("FAULT_BOUNDED_MEMORY").is_some_and(|v| v != "0" && !v.is_empty()) {
        violations.extend(crate::oracle::check_bounded_memory(&cluster));
    }

    // Any failure dumps a diagnostic bundle, and every violation (including
    // an executor panic) carries the path, so the replay instructions
    // always point at captured evidence.
    let mut bundle = None;
    if !violations.is_empty() {
        let detail = violations
            .iter()
            .map(Violation::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        if let Ok(path) = cluster.diagnostic_bundle("oracle", &detail).write_default() {
            let note = format!(" [bundle: {}]", path.display());
            for violation in &mut violations {
                violation.detail.push_str(&note);
            }
            bundle = Some(path);
        }
    }
    ScheduleOutcome {
        seed,
        config: config.clone(),
        plan: plan.clone(),
        trace,
        report,
        violations,
        snapshot: cluster.metrics_snapshot(),
        bundle,
    }
}

/// Runs the seed's schedule end to end: configuration, plan, execution,
/// oracle.
#[must_use]
pub fn run_schedule(seed: u64) -> ScheduleOutcome {
    let config = ScheduleConfig::from_seed(seed);
    let plan = FaultPlan::generate(seed, &config.plan_config());
    run_plan(seed, &config, &plan)
}

/// Shrinks a failing schedule to the smallest fault subsequence that still
/// fails, re-executing candidate plans on fresh clusters.
///
/// Expensive (one full schedule run per candidate); called only when a
/// schedule has already failed, to sharpen the report.
#[must_use]
pub fn shrink_failure(outcome: &ScheduleOutcome) -> Minimized {
    let config = outcome.config.clone();
    let seed = outcome.seed;
    minimize(&outcome.plan, move |candidate| {
        !run_plan(seed, &config, candidate).passed()
    })
}
