//! The invariant oracle: what must hold after every fault schedule.
//!
//! After the executor heals the cluster, [`check_cluster`] verifies the
//! end-to-end guarantees the paper claims survive failures:
//!
//! 1. **Convergence** — after a sync, every replica sits at exactly the
//!    certifier's system version.
//! 2. **Dense history** — above the truncation floor the certified stream
//!    is exactly the gap-free ascending range `floor+1..=system_version`
//!    (`1..=system_version` when nothing was trimmed): no commit lost,
//!    duplicated or reordered by any crash or trim.
//! 3. **Durable-log agreement** — every certifier node of every shard group
//!    holds the same durable records as its shard leader,
//!    record-for-record (recovered nodes were healed by state transfer).
//! 4. **Durable coverage** — the union of the shard leaders' durable logs
//!    covers the entire certified history above the truncation floor
//!    (home-shard durability loses nothing; trimmed prefixes are covered
//!    by sealed checkpoints).
//! 5. **Replica agreement** — all replicas hold identical table contents,
//!    row for row.
//! 6. **Workload invariants** — workload-specific conservation laws (the
//!    TPC-B balance sums).
//! 7. **Metrics consistency** — the flight recorder's data plane agrees
//!    with itself: the certified-commit counter equals the sum of per-shard
//!    commit decisions, decisions never exceed requests, and (via
//!    [`check_metrics_progression`]) no counter regresses between
//!    successive snapshots even across crashes and recoveries.

use tashkent::{Cluster, MetricsSnapshot, ShardId, SystemKind, Version};
use tashkent_common::metrics::CounterId;
use tashkent_common::{Stage, Value};

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// What was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// A workload-specific conservation law checked on top of the generic
/// cluster invariants.
pub trait WorkloadInvariant: Send + Sync {
    /// Checks the invariant, returning a description of the first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description when violated.
    fn check(&self, cluster: &Cluster) -> Result<(), String>;
}

/// TPC-B conservation: on every replica the branch, teller and account
/// balance sums agree (every delta was applied to all three), and the sums
/// are identical across replicas.
pub struct TpcBInvariant;

impl WorkloadInvariant for TpcBInvariant {
    fn check(&self, cluster: &Cluster) -> Result<(), String> {
        let mut reference: Option<i64> = None;
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let sum = |name: &str| -> Result<i64, String> {
                let table = db
                    .table_id(name)
                    .ok_or_else(|| format!("replica {r} is missing table {name}"))?;
                let tx = db.begin();
                let total = tx
                    .scan(table)
                    .map_err(|e| format!("replica {r} scan of {name} failed: {e}"))?
                    .iter()
                    .filter_map(|(_, row)| row.get("balance").and_then(Value::as_int))
                    .sum();
                tx.abort();
                Ok(total)
            };
            let branches = sum("branches")?;
            let tellers = sum("tellers")?;
            let accounts = sum("accounts")?;
            if branches != tellers || branches != accounts {
                return Err(format!(
                    "replica {r}: branch sum {branches} vs teller sum {tellers} vs account sum {accounts}"
                ));
            }
            match reference {
                None => reference = Some(branches),
                Some(expected) if expected != branches => {
                    return Err(format!(
                        "replica {r} branch sum {branches} differs from replica 0's {expected}"
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// Runs every invariant against a healed cluster, returning all violations
/// found (empty means the schedule passed).
///
/// The caller must have stopped the load and recovered every crashed
/// component first (the executor's healing epilogue does this).
#[must_use]
pub fn check_cluster(
    cluster: &Cluster,
    workload: Option<&dyn WorkloadInvariant>,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Convergence: bring every replica up to date, then compare versions.
    if let Err(e) = cluster.sync_all() {
        violations.push(Violation {
            invariant: "convergence",
            detail: format!("sync_all failed on the healed cluster: {e}"),
        });
        return violations;
    }
    let system = cluster.system_version();
    for (replica, version) in cluster.replica_versions() {
        if version != system {
            violations.push(Violation {
                invariant: "convergence",
                detail: format!("{replica} at {version}, certifier at {system}"),
            });
        }
    }

    // Dense history, truncation-aware.  With watermark-driven truncation
    // the retained stream no longer starts at version 1: each shard keeps
    // its suffix above its own floor (per-shard floors differ because each
    // clamps to its own log).  What must still hold: the merged stream is
    // strictly ascending with no duplicates, never exceeds the system
    // version, and above the *global* floor (the max across shards) it is
    // exactly the gap-free range `floor+1..=system_version` — no commit
    // lost, duplicated or reordered by any crash or trim.
    let certifier = cluster.certifier();
    let floor = certifier.truncation_floor();
    let stream: Vec<u64> = certifier
        .writesets_after(Version::ZERO)
        .iter()
        .map(|r| r.commit_version.value())
        .collect();
    if stream.windows(2).any(|w| w[0] >= w[1]) {
        violations.push(Violation {
            invariant: "dense-history",
            detail: "certified stream is not strictly ascending".into(),
        });
    }
    let expected: Vec<u64> = (floor.value() + 1..=system.value()).collect();
    let tail: Vec<u64> = stream
        .iter()
        .copied()
        .filter(|v| *v > floor.value())
        .collect();
    if tail != expected {
        violations.push(Violation {
            invariant: "dense-history",
            detail: format!(
                "certified stream has {} entries above floor {} for system version {} (first divergence at index {:?})",
                tail.len(),
                floor.value(),
                system.value(),
                tail.iter().zip(&expected).position(|(a, b)| a != b)
            ),
        });
    }

    // Durable-log invariants only hold when the certifier logs durably.
    if cluster.system() != SystemKind::TashkentApiNoCertDurability {
        let mut durable_union: Vec<u64> = Vec::new();
        for s in 0..certifier.shard_count() {
            let shard = ShardId(s as u32);
            let leader = certifier.shard_leader(shard);
            let leader_entries = match certifier.shard_durable_entries(shard, leader) {
                Ok(entries) => entries,
                Err(e) => {
                    violations.push(Violation {
                        invariant: "durable-agreement",
                        detail: format!("{shard} leader {leader} log unreadable: {e}"),
                    });
                    continue;
                }
            };
            let mut leader_sorted = leader_entries;
            leader_sorted.sort_by_key(|(v, _)| *v);
            durable_union.extend(leader_sorted.iter().map(|(v, _)| v.value()));
            for node in certifier.shard_up_nodes(shard) {
                if node == leader {
                    continue;
                }
                let mut entries = match certifier.shard_durable_entries(shard, node) {
                    Ok(entries) => entries,
                    Err(e) => {
                        violations.push(Violation {
                            invariant: "durable-agreement",
                            detail: format!("{shard} node {node} log unreadable: {e}"),
                        });
                        continue;
                    }
                };
                entries.sort_by_key(|(v, _)| *v);
                // Record-for-record: same versions *and* same writesets as
                // the shard leader (append order on disk may differ; the
                // version-sorted records must not).
                if entries != leader_sorted {
                    violations.push(Violation {
                        invariant: "durable-agreement",
                        detail: format!(
                            "{shard} node {node} holds {} records, leader {leader} holds {} (or contents differ)",
                            entries.len(),
                            leader_sorted.len()
                        ),
                    });
                }
            }
        }
        // Durable coverage: above the global floor the home-shard logs
        // jointly hold every commit (records at or below a shard's floor
        // are covered by its sealed checkpoint instead).
        durable_union.sort_unstable();
        durable_union.dedup();
        durable_union.retain(|v| *v > floor.value());
        if durable_union != expected {
            violations.push(Violation {
                invariant: "durable-coverage",
                detail: format!(
                    "shard leaders jointly hold {} distinct records above floor {} for system version {}",
                    durable_union.len(),
                    floor.value(),
                    system.value()
                ),
            });
        }
    }

    // Metrics consistency: the flight recorder's data plane must agree with
    // itself no matter what was crashed and recovered.
    violations.extend(check_metrics_consistency(&cluster.metrics_snapshot()));

    // Replica agreement: identical table contents everywhere.
    violations.extend(replica_contents_agree(cluster));

    // Workload-specific conservation laws.
    if let Some(workload) = workload {
        if let Err(detail) = workload.check(cluster) {
            violations.push(Violation {
                invariant: "workload",
                detail,
            });
        }
    }
    violations
}

/// The bounded-memory postcondition behind log truncation: on a healed,
/// synced cluster, one full checkpoint-and-trim cycle must empty the
/// certifier's shard logs and every replica's WAL — and the cluster must
/// still commit on the trimmed logs.  Run by the harness when
/// `FAULT_BOUNDED_MEMORY` is set (nightly soaks); expensive enough (a probe
/// table and commit) to stay out of the default oracle.
#[must_use]
pub fn check_bounded_memory(cluster: &Cluster) -> Vec<Violation> {
    let mut violations = Vec::new();
    cluster.checkpoint();
    if let Err(e) = cluster.trim() {
        violations.push(Violation {
            invariant: "bounded-memory",
            detail: format!("trim failed on the healed cluster: {e}"),
        });
        return violations;
    }
    let retained = cluster.certifier_log_len();
    if retained > 0 {
        violations.push(Violation {
            invariant: "bounded-memory",
            detail: format!(
                "certifier retains {retained} log entries after a full checkpoint-and-trim"
            ),
        });
    }
    let wal_bytes = cluster.wal_bytes();
    if wal_bytes > 0 {
        violations.push(Violation {
            invariant: "bounded-memory",
            detail: format!(
                "replica WALs retain {wal_bytes} bytes after a full checkpoint-and-trim"
            ),
        });
    }
    // Viability probe: the cluster still commits on fully trimmed logs.
    let before = cluster.system_version();
    let t = cluster.create_table("__trim_probe", &["v"]);
    let tx = cluster.session(0).begin();
    let outcome = tx
        .insert(t, 1, vec![("v".into(), Value::Int(1))])
        .and_then(|()| tx.commit().map(|_| ()));
    match outcome {
        Ok(()) if cluster.system_version() == before.next() => {}
        Ok(()) => violations.push(Violation {
            invariant: "bounded-memory",
            detail: format!(
                "probe commit moved the system version from {before} to {} (expected {})",
                cluster.system_version(),
                before.next()
            ),
        }),
        Err(e) => violations.push(Violation {
            invariant: "bounded-memory",
            detail: format!("probe commit failed on the trimmed cluster: {e}"),
        }),
    }
    violations
}

/// Internal-consistency checks on one metrics snapshot: certified commits
/// equal the sum of per-shard commit decisions (the sharded certifier may
/// not double- or under-count), and decisions never exceed requests.
#[must_use]
pub fn check_metrics_consistency(snapshot: &MetricsSnapshot) -> Vec<Violation> {
    let mut violations = Vec::new();
    let certified = snapshot.counter(CounterId::CertifyCommits);
    let shard_sum = snapshot.shard_commit_sum();
    if certified != shard_sum {
        violations.push(Violation {
            invariant: "metrics-consistency",
            detail: format!(
                "certified-commit counter {certified} != sum of shard commit decisions {shard_sum}"
            ),
        });
    }
    let requests = snapshot.counter(CounterId::CertifyRequests);
    let aborts = snapshot.counter(CounterId::CertifyAborts);
    if certified + aborts > requests {
        violations.push(Violation {
            invariant: "metrics-consistency",
            detail: format!(
                "certify decisions ({certified} commits + {aborts} aborts) exceed {requests} requests"
            ),
        });
    }
    let durable = snapshot.counter(CounterId::DurableAppends);
    if durable != certified {
        violations.push(Violation {
            invariant: "metrics-consistency",
            detail: format!(
                "durable appends {durable} != certified commits {certified} (a commit was certified without its home-shard append, or vice versa)"
            ),
        });
    }
    // Pre-screen accounting: every pre-screen verdict belongs to exactly
    // one certification, so hits + misses can never exceed requests (a
    // writeset that skips the pre-screen — floored, forced-abort path,
    // batching off — simply counts neither).
    let hits = snapshot.counter(CounterId::PrescreenHits);
    let misses = snapshot.counter(CounterId::PrescreenMisses);
    if hits + misses > requests {
        violations.push(Violation {
            invariant: "metrics-consistency",
            detail: format!(
                "pre-screen verdicts ({hits} hits + {misses} misses) exceed {requests} certify requests"
            ),
        });
    }
    violations
}

/// Monotonicity between two snapshots of the same registry: counters and
/// per-stage histogram counts only ever grow — a crash or recovery must
/// never make a metric run backwards.
#[must_use]
pub fn check_metrics_progression(
    earlier: &MetricsSnapshot,
    later: &MetricsSnapshot,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for id in CounterId::ALL {
        let (then, now) = (earlier.counter(id), later.counter(id));
        if now < then {
            violations.push(Violation {
                invariant: "metrics-progression",
                detail: format!("counter {} regressed from {then} to {now}", id.label()),
            });
        }
    }
    for stage in Stage::ALL {
        let (then, now) = (earlier.stage(stage).count(), later.stage(stage).count());
        if now < then {
            violations.push(Violation {
                invariant: "metrics-progression",
                detail: format!(
                    "stage {} histogram count regressed from {then} to {now}",
                    stage.label()
                ),
            });
        }
    }
    if later.elapsed < earlier.elapsed {
        violations.push(Violation {
            invariant: "metrics-progression",
            detail: format!(
                "registry uptime regressed from {:?} to {:?}",
                earlier.elapsed, later.elapsed
            ),
        });
    }
    violations
}

/// Compares every table's rows across replicas (replica 0 is the
/// reference).
fn replica_contents_agree(cluster: &Cluster) -> Vec<Violation> {
    let mut violations = Vec::new();
    let reference = cluster.replica(0).database();
    for (table_name, _) in reference.schema() {
        let Some(ref_table) = reference.table_id(&table_name) else {
            continue;
        };
        let ref_tx = reference.begin();
        let ref_rows = ref_tx.scan(ref_table);
        ref_tx.abort();
        let mut ref_rows = match ref_rows {
            Ok(rows) => rows,
            Err(e) => {
                // A healed reference replica whose table cannot even be
                // scanned is itself a violation — never silently skip it.
                violations.push(Violation {
                    invariant: "replica-agreement",
                    detail: format!("replica 0 scan of {table_name} failed: {e}"),
                });
                continue;
            }
        };
        ref_rows.sort_by(|a, b| a.0.cmp(&b.0));
        for r in 1..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let Some(table) = db.table_id(&table_name) else {
                violations.push(Violation {
                    invariant: "replica-agreement",
                    detail: format!("replica {r} is missing table {table_name}"),
                });
                continue;
            };
            let tx = db.begin();
            let rows = tx.scan(table);
            tx.abort();
            match rows {
                Ok(mut rows) => {
                    rows.sort_by(|a, b| a.0.cmp(&b.0));
                    if rows != ref_rows {
                        let diverging = rows
                            .iter()
                            .zip(&ref_rows)
                            .find(|(a, b)| a != b)
                            .map(|((k, _), _)| format!("{k:?}"));
                        violations.push(Violation {
                            invariant: "replica-agreement",
                            detail: format!(
                                "table {table_name}: replica {r} has {} rows vs replica 0's {} (first divergence {diverging:?})",
                                rows.len(),
                                ref_rows.len()
                            ),
                        });
                    }
                }
                Err(e) => violations.push(Violation {
                    invariant: "replica-agreement",
                    detail: format!("replica {r} scan of {table_name} failed: {e}"),
                }),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use tashkent::{ClusterConfig, SystemKind};
    use tashkent_common::Value;

    use super::*;

    #[test]
    fn healthy_cluster_passes_every_invariant() {
        for shards in [1usize, 2] {
            let mut config = ClusterConfig::small(SystemKind::TashkentApi);
            config.certifier_shards = shards;
            let cluster = Cluster::new(config).unwrap();
            let t = cluster.create_table("kv", &["v"]);
            for i in 0..8 {
                let tx = cluster.session(i % 2).begin();
                tx.insert(t, i as i64, vec![("v".into(), Value::Int(i as i64))])
                    .unwrap();
                tx.commit().unwrap();
            }
            let violations = check_cluster(&cluster, None);
            assert!(violations.is_empty(), "{shards} shards: {violations:?}");
        }
    }

    #[test]
    fn diverged_replica_is_reported() {
        let cluster = Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap();
        let t = cluster.create_table("kv", &["v"]);
        let tx = cluster.session(0).begin();
        tx.insert(t, 1, vec![("v".into(), Value::Int(1))]).unwrap();
        tx.commit().unwrap();
        cluster.sync_all().unwrap();
        // Corrupt replica 1 behind the protocol's back.
        let db = cluster.replica(1).database();
        db.bulk_load(
            db.table_id("kv").unwrap(),
            vec![(
                tashkent::RowKey::Int(99),
                tashkent::Row::from_columns(vec![("v".into(), Value::Int(9))]),
            )],
            Version::ZERO,
        );
        let violations = check_cluster(&cluster, None);
        assert!(
            violations.iter().any(|v| v.invariant == "replica-agreement"),
            "{violations:?}"
        );
    }

    #[test]
    fn tpcb_invariant_detects_broken_sums() {
        let cluster = Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap();
        cluster.create_table("branches", &["balance"]);
        cluster.create_table("tellers", &["branch", "balance"]);
        cluster.create_table("accounts", &["branch", "balance"]);
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            db.bulk_load(
                db.table_id("branches").unwrap(),
                vec![(
                    tashkent::RowKey::Int(0),
                    tashkent::Row::from_columns(vec![("balance".into(), Value::Int(10))]),
                )],
                Version::ZERO,
            );
        }
        // Branch sum is 10 but teller/account sums are 0: conservation broken.
        assert!(TpcBInvariant.check(&cluster).is_err());
    }
}
