//! Greedy schedule minimization: shrink a failing plan to the smallest
//! fault subsequence that still fails.
//!
//! The minimizer repeatedly tries dropping one crash/recover pair and
//! re-runs the schedule; a removal is kept whenever the reduced plan still
//! fails.  It converges to a plan from which no single pair can be removed
//! — a local minimum, which in practice is the one or two faults that
//! actually interact.  The re-run predicate is a closure so the minimizer
//! is equally usable against a live cluster (expensive, exact) or a model
//! (tests).

use crate::plan::FaultPlan;

/// Outcome of a minimization.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The smallest still-failing plan found.
    pub plan: FaultPlan,
    /// Schedule executions spent shrinking.
    pub runs: usize,
}

/// Greedily shrinks `plan`, keeping any single-pair removal after which
/// `still_fails` returns `true`.
///
/// `still_fails` receives a candidate plan and must re-execute the schedule
/// (non-determinism of a live cluster means a flaky failure may survive
/// minimization only probabilistically; run the predicate's schedule more
/// than once for confidence if needed).
pub fn minimize(plan: &FaultPlan, mut still_fails: impl FnMut(&FaultPlan) -> bool) -> Minimized {
    let mut current = plan.clone();
    let mut runs = 0;
    loop {
        let mut reduced = false;
        for fault in current.fault_ids() {
            let candidate = current.without_fault(fault);
            runs += 1;
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return Minimized {
                plan: current,
                runs,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use tashkent::ShardId;
    use tashkent_common::Version;

    use crate::plan::{FaultAction, FaultPlan, FaultTarget, NodePick, PlanConfig};

    use super::*;

    /// A model failure that needs faults on replica 1 *and* shard 0's
    /// leader to manifest.
    fn fails(plan: &FaultPlan) -> bool {
        let mut hit_replica = false;
        let mut hit_leader = false;
        for event in &plan.events {
            if let FaultAction::Crash { target, .. } = event.action {
                match target {
                    FaultTarget::Replica(1) => hit_replica = true,
                    FaultTarget::CertifierNode {
                        shard: ShardId(0),
                        pick: NodePick::Leader,
                    } => hit_leader = true,
                    _ => {}
                }
            }
        }
        hit_replica && hit_leader
    }

    #[test]
    fn shrinks_to_the_interacting_pair() {
        let mut config = PlanConfig::for_cluster(3, 2, 3);
        config.faults = 10;
        // Find a seed whose schedule contains the interacting pair.
        let plan = (0..200u64)
            .map(|seed| FaultPlan::generate(seed, &config))
            .find(fails)
            .expect("some 10-fault schedule hits both targets");
        let minimized = minimize(&plan, fails);
        assert!(fails(&minimized.plan));
        assert_eq!(
            minimized.plan.fault_count(),
            2,
            "exactly the interacting pair survives:\n{}",
            minimized.plan
        );
        assert!(minimized.runs > 0);
    }

    #[test]
    fn passing_plan_is_a_fixed_point() {
        let plan = FaultPlan::single(
            FaultTarget::Replica(0),
            Version(1),
            Version(2),
        );
        let minimized = minimize(&plan, |_| false);
        assert_eq!(minimized.plan, plan);
    }
}
