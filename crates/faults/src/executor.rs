//! The fault executor: drives a [`FaultPlan`] against a live [`Cluster`].
//!
//! The executor runs on its own injector thread next to the workload
//! driver.  It watches the cluster's global commit version and fires each
//! plan event once its version threshold is reached, resolving leader /
//! follower picks against the shard group's membership *at crash time* (the
//! membership only changes through the plan's own earlier events, so
//! resolution is deterministic for a given plan).  When the load window
//! closes, any event the load did not reach is fired immediately — a
//! schedule always executes completely — and every target the plan left
//! crashed (there should be none for generated plans) is recovered so the
//! invariant oracle inspects a fully-healed cluster.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tashkent::{Cluster, CertifierNodeId};
use tashkent_common::{Error, Result};

use crate::plan::{
    FaultAction, FaultEvent, FaultPlan, FaultTarget, LinkAction, LinkDirection, LinkEvent,
    LinkTarget, NodePick,
};

/// One executed event, with its pick resolved to a concrete victim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredEvent {
    /// The crash/recover pair this event belongs to.
    pub fault: usize,
    /// `true` for the crash half, `false` for the recover half.
    pub crash: bool,
    /// The planned target.
    pub target: FaultTarget,
    /// The concrete certifier node hit (certifier faults only).
    pub node: Option<CertifierNodeId>,
    /// The planned injection point.
    pub planned_at: tashkent::Version,
}

/// The executed schedule: every fired event in order.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// Events in firing order.
    pub fired: Vec<FiredEvent>,
    /// Recover attempts that had to be retried (transient unavailability
    /// while the cluster was still degraded).
    pub recover_retries: u64,
    /// Planned recovers that kept failing mid-schedule and were left for
    /// the healing epilogue (non-quorum-safe schedules only).
    pub deferred_recovers: u64,
    /// Link sever/heal events fired (partition schedules only; the field
    /// is appended so existing trace consumers are unaffected).
    pub link_events: u64,
}

impl ExecutionTrace {
    /// The resolved victims in firing order — the replay-determinism
    /// fingerprint compared across runs of the same seed.
    #[must_use]
    pub fn victims(&self) -> Vec<(usize, bool, FaultTarget, Option<CertifierNodeId>)> {
        self.fired
            .iter()
            .map(|e| (e.fault, e.crash, e.target, e.node))
            .collect()
    }
}

/// One entry of the merged node+link firing timeline.
enum MergedEvent<'p> {
    Node(&'p FaultEvent),
    Link(&'p LinkEvent),
}

/// Executes a fault plan against a cluster.
pub struct FaultExecutor {
    cluster: Arc<Cluster>,
    plan: FaultPlan,
    /// How often the injector polls the system version.
    pub poll_interval: Duration,
}

/// Handle to a running injector thread.
pub struct FaultInjector {
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<Result<ExecutionTrace>>,
}

impl FaultInjector {
    /// Signals the end of the load window and waits for the injector to
    /// drain the remaining events and heal the cluster.
    ///
    /// # Errors
    ///
    /// Propagates recovery errors (e.g. a shard group left without a donor,
    /// which generated plans never produce).
    pub fn finish(self) -> Result<ExecutionTrace> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .join()
            .map_err(|_| Error::Protocol("fault injector thread panicked".into()))?
    }
}

impl FaultExecutor {
    /// Creates an executor for `plan` over `cluster`.
    #[must_use]
    pub fn new(cluster: Arc<Cluster>, plan: FaultPlan) -> Self {
        FaultExecutor {
            cluster,
            plan,
            poll_interval: Duration::from_micros(200),
        }
    }

    /// Spawns the injector thread.  Run the workload driver concurrently,
    /// then call [`FaultInjector::finish`].
    #[must_use]
    pub fn start(self) -> FaultInjector {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::spawn(move || self.run(&thread_stop));
        FaultInjector { stop, handle }
    }

    /// Merges the crash/recover and link streams into one firing order by
    /// ascending `at_version` (node events first at equal thresholds, so a
    /// crash and a sever pinned to the same version replay in a stable
    /// order).
    fn merged_timeline<'p>(plan: &'p FaultPlan) -> Vec<MergedEvent<'p>> {
        let mut timeline: Vec<MergedEvent<'p>> = plan
            .events
            .iter()
            .map(MergedEvent::Node)
            .chain(plan.links.iter().map(MergedEvent::Link))
            .collect();
        timeline.sort_by_key(|e| match e {
            MergedEvent::Node(event) => (event.at_version, 0u8),
            MergedEvent::Link(link) => (link.at_version, 1u8),
        });
        timeline
    }

    fn run(self, stop: &AtomicBool) -> Result<ExecutionTrace> {
        let mut trace = ExecutionTrace::default();
        // Resolved victim per fault id, for the recover half and the healing
        // epilogue.
        let mut resolved: Vec<Option<(FaultTarget, Option<CertifierNodeId>)>> = Vec::new();
        for merged in Self::merged_timeline(&self.plan) {
            let at_version = match merged {
                MergedEvent::Node(event) => event.at_version,
                MergedEvent::Link(link) => link.at_version,
            };
            // Wait for the injection point; once the load window closes the
            // remaining events fire immediately so the schedule always
            // completes.
            while !stop.load(Ordering::Relaxed) && self.cluster.system_version() < at_version {
                thread::sleep(self.poll_interval);
            }
            match merged {
                MergedEvent::Node(event) => self.fire(event, &mut resolved, &mut trace)?,
                MergedEvent::Link(link) => self.fire_link(link, &mut trace),
            }
        }
        // Healing epilogue: heal severed links first — every recovery path
        // below (donor state transfer, replica catch-up) may need the wire.
        // Then certifier groups, then replicas: replica catch-up runs
        // against healed groups.
        self.cluster.heal_all_links();
        let entries: Vec<(FaultTarget, Option<CertifierNodeId>)> =
            resolved.into_iter().flatten().collect();
        for (target, node) in &entries {
            if let (FaultTarget::CertifierNode { shard, .. }, Some(node)) = (target, node) {
                if !self
                    .cluster
                    .certifier()
                    .shard_up_nodes(*shard)
                    .contains(node)
                {
                    self.recover_with_retry(&mut trace, |c| {
                        c.recover_certifier_shard_node(*shard, *node)
                    })?;
                }
            }
        }
        for (target, _) in &entries {
            if let FaultTarget::Replica(r) = target {
                if self.cluster.replica(*r).is_crashed() {
                    self.recover_with_retry(&mut trace, |c| c.recover_replica(*r).map(|_| ()))?;
                }
            }
        }
        Ok(trace)
    }

    fn fire(
        &self,
        event: &FaultEvent,
        resolved: &mut Vec<Option<(FaultTarget, Option<CertifierNodeId>)>>,
        trace: &mut ExecutionTrace,
    ) -> Result<()> {
        match event.action {
            FaultAction::Crash { fault, target } => {
                let node = match target {
                    FaultTarget::Replica(r) => {
                        self.cluster.crash_replica(r);
                        None
                    }
                    FaultTarget::CertifierNode { shard, pick } => {
                        let certifier = self.cluster.certifier();
                        let leader = certifier.shard_leader(shard);
                        let victim = match pick {
                            NodePick::Leader => leader,
                            NodePick::Follower(k) => {
                                let followers: Vec<CertifierNodeId> = certifier
                                    .shard_up_nodes(shard)
                                    .into_iter()
                                    .filter(|n| *n != leader)
                                    .collect();
                                // Quorum safety guarantees at least one up
                                // follower; fall back to the leader for
                                // degenerate hand-built plans.
                                followers
                                    .get(k % followers.len().max(1))
                                    .copied()
                                    .unwrap_or(leader)
                            }
                        };
                        self.cluster.crash_certifier_shard_node(shard, victim);
                        Some(victim)
                    }
                };
                if resolved.len() <= fault {
                    resolved.resize(fault + 1, None);
                }
                resolved[fault] = Some((target, node));
                trace.fired.push(FiredEvent {
                    fault,
                    crash: true,
                    target,
                    node,
                    planned_at: event.at_version,
                });
            }
            FaultAction::Recover { fault } => {
                let (target, node) = resolved
                    .get(fault)
                    .copied()
                    .flatten()
                    .ok_or_else(|| {
                        Error::Protocol(format!("recover of unknown fault #{fault}"))
                    })?;
                // A recover that keeps failing (the cluster can be too
                // degraded mid-schedule — e.g. a replica recover during a
                // total certifier outage) is *deferred*, not fatal: the
                // target stays down and the healing epilogue below retries
                // it once the rest of the schedule has run.
                let outcome = match (target, node) {
                    (FaultTarget::Replica(r), _) => {
                        self.recover_with_retry(trace, |c| c.recover_replica(r).map(|_| ()))
                    }
                    (FaultTarget::CertifierNode { shard, .. }, Some(victim)) => {
                        self.recover_with_retry(trace, |c| {
                            c.recover_certifier_shard_node(shard, victim)
                        })
                    }
                    (FaultTarget::CertifierNode { .. }, None) => {
                        return Err(Error::Protocol(format!(
                            "fault #{fault} resolved without a victim node"
                        )));
                    }
                };
                if outcome.is_err() {
                    trace.deferred_recovers += 1;
                }
                trace.fired.push(FiredEvent {
                    fault,
                    crash: false,
                    target,
                    node,
                    planned_at: event.at_version,
                });
            }
        }
        Ok(())
    }

    /// Fires one link event.  On a non-loopback cluster the hooks are
    /// no-ops (`false`), which keeps hand-built link plans harmless against
    /// in-process clusters.
    fn fire_link(&self, link: &LinkEvent, trace: &mut ExecutionTrace) {
        match link.action {
            LinkAction::Sever(target, direction) => {
                let replicas: Vec<usize> = match target {
                    LinkTarget::Replica(r) => vec![r],
                    LinkTarget::AllReplicas => (0..self.cluster.replica_count()).collect(),
                };
                for r in replicas {
                    match direction {
                        LinkDirection::Both => {
                            self.cluster.sever_certifier_link(r);
                        }
                        LinkDirection::ToCertifier => {
                            self.cluster.sever_certifier_link_one_way(r, true);
                        }
                        LinkDirection::FromCertifier => {
                            self.cluster.sever_certifier_link_one_way(r, false);
                        }
                    }
                }
            }
            // Heals cover every direction, so a one-way sever and its heal
            // pair exactly like a symmetric one.
            LinkAction::Heal(LinkTarget::Replica(r)) => {
                self.cluster.heal_certifier_link(r);
            }
            LinkAction::Heal(LinkTarget::AllReplicas) => {
                self.cluster.heal_all_links();
            }
        }
        trace.link_events += 1;
    }

    /// Runs a recovery action, retrying briefly: a recover fired while the
    /// cluster is still degraded can be transiently refused (e.g. a replica
    /// catch-up racing an unavailable component).
    fn recover_with_retry(
        &self,
        trace: &mut ExecutionTrace,
        mut action: impl FnMut(&Cluster) -> Result<()>,
    ) -> Result<()> {
        const ATTEMPTS: usize = 50;
        let mut last = None;
        for attempt in 0..ATTEMPTS {
            match action(&self.cluster) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    if attempt + 1 < ATTEMPTS {
                        trace.recover_retries += 1;
                        thread::sleep(Duration::from_millis(2));
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.expect("loop ran at least once"))
    }
}
