//! Deterministic fault-schedule harness for the Tashkent reproduction.
//!
//! The paper's core claim is that uniting durability with transaction
//! ordering survives failures of replicas *and* certifier nodes.  This
//! crate turns that claim into a soak target: seeded, replayable
//! crash/recover schedules executed against a live [`tashkent::Cluster`]
//! under load, with an invariant oracle that checks after every schedule
//! that nothing was lost, duplicated, reordered or diverged.
//!
//! The pieces:
//!
//! * [`plan`] — [`FaultPlan`]: a seeded generator of randomized,
//!   quorum-safe schedules over replicas and certifier shard nodes
//!   (leader- and follower-targeted, overlapping and cascading), with
//!   injection points anchored to commit versions so the same seed replays
//!   the same schedule.
//! * [`executor`] — [`FaultExecutor`]: fires the plan against a live
//!   cluster while a workload runs, resolving leader/follower picks at
//!   crash time and healing the cluster afterwards.
//! * [`oracle`] — [`check_cluster`]: convergence, dense gap-free commit
//!   history, record-for-record durable-log agreement, durable coverage,
//!   replica content agreement and workload conservation laws.
//! * [`minimize`] — [`minimize()`](minimize::minimize): greedy shrinking of
//!   a failing schedule to the smallest still-failing fault subsequence.
//! * [`harness`] — [`run_schedule`]: one seed in, one verified schedule
//!   out; the entry point of the `fault_schedules` soak/CI test.
//!
//! # Replaying a failure
//!
//! Every failing schedule prints a single seed.  Re-run it with:
//!
//! ```text
//! FAULT_SEED=0x1234 cargo test --test fault_schedules -- --nocapture
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod harness;
pub mod minimize;
pub mod oracle;
pub mod plan;

pub use executor::{ExecutionTrace, FaultExecutor, FaultInjector, FiredEvent};
pub use harness::{
    run_plan, run_schedule, shrink_failure, HarnessWorkload, ScheduleConfig, ScheduleOutcome,
};
pub use minimize::{minimize as minimize_plan, Minimized};
pub use oracle::{
    check_bounded_memory, check_cluster, check_metrics_consistency, check_metrics_progression,
    TpcBInvariant, Violation,
    WorkloadInvariant,
};
pub use plan::{
    FaultAction, FaultEvent, FaultPlan, FaultTarget, LinkAction, LinkDirection, LinkEvent,
    LinkTarget, NodePick, PlanConfig,
};
