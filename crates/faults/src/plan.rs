//! Fault plans: seeded, replayable crash/recover schedules.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each pinned to a
//! *version-threshold injection point*: the executor fires an event once the
//! cluster's global commit version reaches `at_version`.  Anchoring
//! injection points to commit versions — not wall-clock time — is what makes
//! a schedule replayable: two runs of the same plan inject each fault at the
//! same logical position in the commit history, regardless of how fast the
//! machine happens to run.
//!
//! Plans are generated from a seed by [`FaultPlan::generate`] under
//! *quorum-safety constraints*: at every point of the schedule each
//! certifier shard group keeps a majority of nodes up (so certification can
//! always make progress and a recovery donor always exists) and at least one
//! replica stays up (so load keeps flowing).  Within those bounds the
//! generator freely overlaps faults — several shards down at once, a replica
//! and a certifier node down together, repeated crashes of the same target —
//! and targets shard *leaders* as well as followers.
//!
//! Setting [`PlanConfig::total_outage`] lifts the quorum-safety bounds:
//! schedules may then lose a shard group's majority — or the whole group —
//! and crash every replica at once.  Crashes stay paired with recovers;
//! recovery relies on sealed checkpoints and the certifier's
//! union-of-logs state transfer instead of a live donor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent::ShardId;
use tashkent_common::Version;

/// How a certifier-node fault picks its victim within the shard group.
///
/// Picks are resolved by the executor at crash time against the group's
/// *current* membership, so a plan can say "the leader, whoever that is by
/// then" — and still replay deterministically, because leadership and
/// up/down state only change through the plan's own earlier events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodePick {
    /// The shard group's current leader — the worst node to lose.
    Leader,
    /// The `k`-th currently-up non-leader node (modulo the follower count).
    Follower(usize),
}

/// What a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A database replica, by index.
    Replica(usize),
    /// A node of one certifier shard's replicated group (the unsharded
    /// certifier is addressed as shard 0).
    CertifierNode {
        /// The shard whose group is hit.
        shard: ShardId,
        /// Which node of the group.
        pick: NodePick,
    },
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::Replica(r) => write!(f, "replica-{r}"),
            FaultTarget::CertifierNode { shard, pick } => match pick {
                NodePick::Leader => write!(f, "{shard}-leader"),
                NodePick::Follower(k) => write!(f, "{shard}-follower-{k}"),
            },
        }
    }
}

/// One step of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash the target.  `fault` identifies the crash/recover pair.
    Crash {
        /// Identifier pairing this crash with its recover event.
        fault: usize,
        /// What to crash.
        target: FaultTarget,
    },
    /// Recover the target crashed by fault `fault`.
    Recover {
        /// The crash this event undoes.
        fault: usize,
    },
}

/// A fault action pinned to its injection point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Fire once the cluster's system version reaches this threshold.
    pub at_version: Version,
    /// What to do.
    pub action: FaultAction,
}

/// Which replica↔certifier link a link fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTarget {
    /// One replica's link to the certifier.
    Replica(usize),
    /// Every replica's link at once — the full replica↔certifier
    /// partition.
    AllReplicas,
}

impl std::fmt::Display for LinkTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkTarget::Replica(r) => write!(f, "link replica-{r}<->certifier"),
            LinkTarget::AllReplicas => write!(f, "links *<->certifier"),
        }
    }
}

/// Which direction(s) of a link a sever cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// The full symmetric partition: both directions die, connections
    /// reset, dials are refused.
    Both,
    /// Only replica→certifier bytes are dropped: requests silently vanish
    /// while responses (to nothing) could still flow — the replica's sends
    /// keep "succeeding".
    ToCertifier,
    /// Only certifier→replica bytes are dropped: requests arrive and are
    /// *served* (the certifier commits!) but the responses vanish — the
    /// nastier half-open case, exercising the session layer's
    /// no-response-traffic detector and the proxy's retry path.
    FromCertifier,
}

impl std::fmt::Display for LinkDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkDirection::Both => write!(f, "both ways"),
            LinkDirection::ToCertifier => write!(f, "->certifier only"),
            LinkDirection::FromCertifier => write!(f, "<-certifier only"),
        }
    }
}

/// One step of a link-fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// Cut the link (in the given direction(s)): affected requests fail
    /// with `Unavailable` or silently vanish, reconnects are refused,
    /// until the matching heal.
    Sever(LinkTarget, LinkDirection),
    /// Restore the link severed by the paired sever event (heals every
    /// direction).
    Heal(LinkTarget),
}

/// A link fault pinned to its version-threshold injection point.
///
/// Link events live in [`FaultPlan::links`] — a list *separate from*
/// [`FaultPlan::events`], so plans generated before networking existed
/// replay with byte-identical crash/recover schedules (the link stream is
/// drawn from its own salted RNG).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// Fire once the cluster's system version reaches this threshold.
    pub at_version: Version,
    /// What to do to which link.
    pub action: LinkAction,
}

/// Bounds on schedule generation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Replicas in the cluster the plan targets.
    pub replicas: usize,
    /// Certifier shards (1 for the unsharded certifier).
    pub certifier_shards: usize,
    /// Nodes per certifier shard group.
    pub nodes_per_shard: usize,
    /// Number of crash/recover fault pairs to draw.
    pub faults: usize,
    /// Maximum commit-version gap between consecutive events (each gap is
    /// drawn uniformly from `1..=version_step`).
    pub version_step: u64,
    /// Allow replica faults.
    pub target_replicas: bool,
    /// Allow certifier-node faults.
    pub target_certifiers: bool,
    /// Drop the quorum-safety constraints: schedules may crash a shard
    /// group's majority — up to the *whole* group — and every replica at
    /// once.  Recovery then leans on checkpoints and the union-of-logs
    /// state transfer instead of a live donor.  Off by default; generated
    /// plans still pair every crash with a recover.
    pub total_outage: bool,
    /// Also draw link faults (sever/heal of replica↔certifier loopback
    /// links, including full partitions and one-direction half-open cuts).
    /// Appended so configurations serialised before networking existed
    /// keep their field order; the crash/recover stream of a seed is
    /// unaffected either way.
    pub partition: bool,
    /// Seeded packet loss: the probability that any given send resets its
    /// connection, applied to the loopback network for the whole run via
    /// [`LoopbackNet::set_drop_rate`](../../tashkent_net/loopback/struct.LoopbackNet.html#method.set_drop_rate)
    /// with an RNG salted separately from every event stream.  `0.0`
    /// disables.  Appended last — it is not an event stream, so existing
    /// seeds replay their exact crash/recover and link schedules whether
    /// or not loss is enabled on top.
    pub drop_rate: f64,
}

impl PlanConfig {
    /// A configuration matching a cluster shape, with default fault counts.
    #[must_use]
    pub fn for_cluster(replicas: usize, certifier_shards: usize, nodes_per_shard: usize) -> Self {
        PlanConfig {
            replicas,
            certifier_shards,
            nodes_per_shard,
            faults: 3,
            version_step: 30,
            target_replicas: true,
            target_certifiers: true,
            total_outage: false,
            partition: false,
            drop_rate: 0.0,
        }
    }

    /// Most certifier nodes of one shard group that may be down at once
    /// while keeping a majority up (quorum safety).
    #[must_use]
    pub fn max_down_per_shard(&self) -> usize {
        self.nodes_per_shard - (self.nodes_per_shard / 2 + 1)
    }

    /// The per-shard down limit the generator enforces: the quorum-safe
    /// bound normally, the whole group in total-outage mode.
    #[must_use]
    pub fn down_limit_per_shard(&self) -> usize {
        if self.total_outage {
            self.nodes_per_shard
        } else {
            self.max_down_per_shard()
        }
    }
}

/// A complete, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// Events in ascending `at_version` order.
    pub events: Vec<FaultEvent>,
    /// Link faults in ascending `at_version` order, drawn from a salted
    /// RNG stream so their presence never changes `events` for a given
    /// seed.  Empty unless [`PlanConfig::partition`] was set.
    pub links: Vec<LinkEvent>,
}

impl FaultPlan {
    /// An empty plan (useful as a minimizer fixed point and for baseline
    /// no-fault runs of the harness).
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
            links: Vec::new(),
        }
    }

    /// A hand-built single-fault plan: crash `target` at `crash_at`, recover
    /// it at `recover_at`.
    ///
    /// # Panics
    ///
    /// Panics if `recover_at < crash_at`.
    #[must_use]
    pub fn single(target: FaultTarget, crash_at: Version, recover_at: Version) -> Self {
        assert!(crash_at <= recover_at, "recover must not precede crash");
        FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent {
                    at_version: crash_at,
                    action: FaultAction::Crash { fault: 0, target },
                },
                FaultEvent {
                    at_version: recover_at,
                    action: FaultAction::Recover { fault: 0 },
                },
            ],
            links: Vec::new(),
        }
    }

    /// Draws a randomized quorum-safe schedule from a seeded RNG.
    ///
    /// The same `(seed, config)` always yields the identical plan — same
    /// victims, same injection points — which is the replay contract failing
    /// schedules print.
    #[must_use]
    pub fn generate(seed: u64, config: &PlanConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_down = config.down_limit_per_shard();
        let mut replica_down = vec![false; config.replicas];
        let mut shard_down = vec![0usize; config.certifier_shards];
        // Open faults awaiting their recover event.
        let mut open: Vec<(usize, FaultTarget)> = Vec::new();
        let mut events = Vec::new();
        let mut version = 0u64;
        let mut next_fault = 0usize;

        let bump = |rng: &mut StdRng, version: &mut u64| {
            *version += rng.gen_range(1..=config.version_step.max(1));
            Version(*version)
        };

        while next_fault < config.faults || !open.is_empty() {
            // Enumerate legal crash targets under the quorum-safety bounds.
            let mut crashable: Vec<FaultTarget> = Vec::new();
            if next_fault < config.faults {
                if config.target_replicas {
                    let up = replica_down.iter().filter(|d| !**d).count();
                    // Quorum-safe schedules always leave one replica
                    // serving load; total-outage mode may crash them all.
                    if up > 1 || (config.total_outage && up > 0) {
                        crashable.extend(
                            replica_down
                                .iter()
                                .enumerate()
                                .filter(|(_, down)| !**down)
                                .map(|(r, _)| FaultTarget::Replica(r)),
                        );
                    }
                }
                if config.target_certifiers {
                    for (s, down) in shard_down.iter().enumerate() {
                        if *down < max_down {
                            crashable.push(FaultTarget::CertifierNode {
                                shard: ShardId(s as u32),
                                pick: NodePick::Leader, // placeholder, drawn below
                            });
                        }
                    }
                }
            }
            // Choose between opening a new fault and closing an open one.
            // Recover pressure grows with the number of open faults so
            // schedules overlap without staying degraded forever.
            let crash = !crashable.is_empty()
                && (open.is_empty() || rng.gen_range(0..open.len() + 2) < 2);
            if crash {
                let mut target = crashable[rng.gen_range(0..crashable.len())];
                if let FaultTarget::CertifierNode { shard, ref mut pick } = target {
                    // Half the certifier faults hit the current leader, the
                    // rest a follower drawn by rank among the up non-leaders.
                    *pick = if rng.gen_bool(0.5) {
                        NodePick::Leader
                    } else {
                        NodePick::Follower(rng.gen_range(0..config.nodes_per_shard))
                    };
                    shard_down[shard.index()] += 1;
                } else if let FaultTarget::Replica(r) = target {
                    replica_down[r] = true;
                }
                events.push(FaultEvent {
                    at_version: bump(&mut rng, &mut version),
                    action: FaultAction::Crash {
                        fault: next_fault,
                        target,
                    },
                });
                open.push((next_fault, target));
                next_fault += 1;
            } else if !open.is_empty() {
                let (fault, target) = open.remove(rng.gen_range(0..open.len()));
                match target {
                    FaultTarget::Replica(r) => replica_down[r] = false,
                    FaultTarget::CertifierNode { shard, .. } => {
                        shard_down[shard.index()] -= 1;
                    }
                }
                events.push(FaultEvent {
                    at_version: bump(&mut rng, &mut version),
                    action: FaultAction::Recover { fault },
                });
            } else {
                // No legal crash and nothing to recover: the configuration
                // admits no faults (e.g. single-node groups with replica
                // targeting off).
                break;
            }
        }
        let links = if config.partition {
            Self::generate_links(seed, config, version)
        } else {
            Vec::new()
        };
        FaultPlan {
            seed,
            events,
            links,
        }
    }

    /// Salt separating the link-fault RNG stream from the crash/recover
    /// stream, so turning partitions on never perturbs existing seeds.
    const LINK_SALT: u64 = 0x11F0_1D5E_A5ED_11AB;

    /// Salt for the *direction* stream: directions are drawn from their
    /// own RNG so their introduction left every existing seed's link
    /// targets and injection points exactly where they were — seeds that
    /// used to draw a symmetric partition still sever the same link at
    /// the same version, possibly one-way now.
    const DIRECTION_SALT: u64 = 0x0D12_EC71_04A1_5EED;

    /// Draws the link-fault schedule: one to two sever/heal pairs spread
    /// over the same version span as the crash/recover events.
    fn generate_links(seed: u64, config: &PlanConfig, span: u64) -> Vec<LinkEvent> {
        let mut rng = StdRng::seed_from_u64(seed ^ Self::LINK_SALT);
        let mut direction_rng = StdRng::seed_from_u64(seed ^ Self::DIRECTION_SALT);
        let step = config.version_step.max(1);
        let mut links = Vec::new();
        let mut version = 0u64;
        let pairs = rng.gen_range(1..=2);
        for _ in 0..pairs {
            // A third of the pairs partition every replica at once; the
            // rest cut a single replica's link.
            let target = if config.replicas > 0 && !rng.gen_bool(1.0 / 3.0) {
                LinkTarget::Replica(rng.gen_range(0..config.replicas))
            } else {
                LinkTarget::AllReplicas
            };
            // Half the severs are full partitions, the rest split between
            // the two half-open directions.
            let direction = match direction_rng.gen_range(0..4u32) {
                0 | 1 => LinkDirection::Both,
                2 => LinkDirection::ToCertifier,
                _ => LinkDirection::FromCertifier,
            };
            version += rng.gen_range(1..=step);
            let sever_at = Version(version);
            version += rng.gen_range(1..=step);
            let heal_at = Version(version);
            links.push(LinkEvent {
                at_version: sever_at,
                action: LinkAction::Sever(target, direction),
            });
            links.push(LinkEvent {
                at_version: heal_at,
                action: LinkAction::Heal(target),
            });
            // Spread later pairs across the rest of the plan's span.
            if version < span {
                version += rng.gen_range(0..=span - version);
            }
        }
        links
    }

    /// The fault-pair identifiers present in the plan, in crash order.
    #[must_use]
    pub fn fault_ids(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Crash { fault, .. } => Some(fault),
                FaultAction::Recover { .. } => None,
            })
            .collect()
    }

    /// The plan with one crash/recover pair removed (schedule
    /// minimization).
    #[must_use]
    pub fn without_fault(&self, fault: usize) -> Self {
        FaultPlan {
            seed: self.seed,
            events: self
                .events
                .iter()
                .filter(|e| match e.action {
                    FaultAction::Crash { fault: f, .. } | FaultAction::Recover { fault: f } => {
                        f != fault
                    }
                })
                .cloned()
                .collect(),
            links: self.links.clone(),
        }
    }

    /// Number of link sever/heal events in the plan.
    #[must_use]
    pub fn link_event_count(&self) -> usize {
        self.links.len()
    }

    /// Number of crash/recover pairs.
    #[must_use]
    pub fn fault_count(&self) -> usize {
        self.fault_ids().len()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fault plan (seed {:#x}):", self.seed)?;
        let mut targets: Vec<Option<FaultTarget>> = Vec::new();
        for event in &self.events {
            match event.action {
                FaultAction::Crash { fault, target } => {
                    if targets.len() <= fault {
                        targets.resize(fault + 1, None);
                    }
                    targets[fault] = Some(target);
                    writeln!(f, "  v>={:<6} crash   #{fault} {target}", event.at_version.value())?;
                }
                FaultAction::Recover { fault } => {
                    let target = targets
                        .get(fault)
                        .copied()
                        .flatten()
                        .map_or_else(|| "?".to_owned(), |t| t.to_string());
                    writeln!(f, "  v>={:<6} recover #{fault} {target}", event.at_version.value())?;
                }
            }
        }
        for link in &self.links {
            match link.action {
                LinkAction::Sever(target, direction) => {
                    writeln!(
                        f,
                        "  v>={:<6} sever   {target} ({direction})",
                        link.at_version.value()
                    )?;
                }
                LinkAction::Heal(target) => {
                    writeln!(f, "  v>={:<6} heal    {target}", link.at_version.value())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PlanConfig {
        PlanConfig::for_cluster(3, 2, 3)
    }

    #[test]
    fn same_seed_same_plan() {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let a = FaultPlan::generate(seed, &config());
            let b = FaultPlan::generate(seed, &config());
            assert_eq!(a, b, "seed {seed:#x} must replay identically");
            assert_eq!(a.fault_count(), config().faults);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(1, &config());
        let b = FaultPlan::generate(2, &config());
        assert_ne!(a, b);
    }

    #[test]
    fn schedules_are_quorum_safe_and_paired() {
        let mut config = config();
        config.faults = 12;
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, &config);
            let mut replica_down = vec![false; config.replicas];
            let mut shard_down = vec![0usize; config.certifier_shards];
            let mut open: std::collections::HashMap<usize, FaultTarget> =
                std::collections::HashMap::new();
            let mut last = Version::ZERO;
            for event in &plan.events {
                assert!(event.at_version > last, "injection points ascend strictly");
                last = event.at_version;
                match event.action {
                    FaultAction::Crash { fault, target } => {
                        assert!(open.insert(fault, target).is_none(), "fault ids unique");
                        match target {
                            FaultTarget::Replica(r) => {
                                assert!(!replica_down[r], "no double crash");
                                replica_down[r] = true;
                                let up = replica_down.iter().filter(|d| !**d).count();
                                assert!(up >= 1, "at least one replica stays up");
                            }
                            FaultTarget::CertifierNode { shard, .. } => {
                                shard_down[shard.index()] += 1;
                                assert!(
                                    shard_down[shard.index()] <= config.max_down_per_shard(),
                                    "shard {shard} keeps its majority"
                                );
                            }
                        }
                    }
                    FaultAction::Recover { fault } => {
                        let target = open.remove(&fault).expect("recover pairs with a crash");
                        match target {
                            FaultTarget::Replica(r) => replica_down[r] = false,
                            FaultTarget::CertifierNode { shard, .. } => {
                                shard_down[shard.index()] -= 1;
                            }
                        }
                    }
                }
            }
            assert!(open.is_empty(), "every crash is recovered by plan end");
            assert_eq!(plan.fault_count(), config.faults);
        }
    }

    #[test]
    fn total_outage_mode_reaches_full_outages_yet_stays_paired() {
        let mut config = config();
        config.faults = 12;
        config.total_outage = true;
        let mut saw_shard_outage = false;
        let mut saw_replica_outage = false;
        for seed in 0..100u64 {
            let plan = FaultPlan::generate(seed, &config);
            let mut replica_down = vec![false; config.replicas];
            let mut shard_down = vec![0usize; config.certifier_shards];
            let mut open: std::collections::HashMap<usize, FaultTarget> =
                std::collections::HashMap::new();
            for event in &plan.events {
                match event.action {
                    FaultAction::Crash { fault, target } => {
                        assert!(open.insert(fault, target).is_none());
                        match target {
                            FaultTarget::Replica(r) => {
                                assert!(!replica_down[r], "no double crash");
                                replica_down[r] = true;
                                if replica_down.iter().all(|d| *d) {
                                    saw_replica_outage = true;
                                }
                            }
                            FaultTarget::CertifierNode { shard, .. } => {
                                shard_down[shard.index()] += 1;
                                assert!(
                                    shard_down[shard.index()] <= config.nodes_per_shard,
                                    "never more crashes than nodes"
                                );
                                if shard_down[shard.index()] == config.nodes_per_shard {
                                    saw_shard_outage = true;
                                }
                            }
                        }
                    }
                    FaultAction::Recover { fault } => {
                        match open.remove(&fault).expect("recover pairs with a crash") {
                            FaultTarget::Replica(r) => replica_down[r] = false,
                            FaultTarget::CertifierNode { shard, .. } => {
                                shard_down[shard.index()] -= 1;
                            }
                        }
                    }
                }
            }
            assert!(open.is_empty(), "every crash is recovered by plan end");
        }
        assert!(saw_shard_outage, "some schedule downs a whole shard group");
        assert!(saw_replica_outage, "some schedule downs every replica");
    }

    #[test]
    fn partitions_never_perturb_the_crash_stream() {
        // The seed-replay contract across the networking change: a plan
        // generated before link faults existed must keep its exact
        // crash/recover schedule when partitions are enabled on top.
        let mut with_links = config();
        with_links.partition = true;
        for seed in 0..50u64 {
            let old = FaultPlan::generate(seed, &config());
            let new = FaultPlan::generate(seed, &with_links);
            assert!(old.links.is_empty(), "partition off draws no link faults");
            assert_eq!(old.events, new.events, "seed {seed:#x} events must not move");
            assert!(!new.links.is_empty(), "partition on draws link faults");
        }
    }

    #[test]
    fn link_schedules_are_paired_and_ascending() {
        let mut config = config();
        config.partition = true;
        let mut saw_full_partition = false;
        let mut saw_one_way = false;
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, &config);
            assert_eq!(plan.link_event_count(), plan.links.len());
            let mut last = Version::ZERO;
            let mut open: Option<LinkTarget> = None;
            for link in &plan.links {
                assert!(link.at_version > last, "link injection points ascend");
                last = link.at_version;
                match link.action {
                    LinkAction::Sever(target, direction) => {
                        assert!(open.is_none(), "one link fault open at a time");
                        if target == LinkTarget::AllReplicas {
                            saw_full_partition = true;
                        }
                        if direction != LinkDirection::Both {
                            saw_one_way = true;
                        }
                        open = Some(target);
                    }
                    LinkAction::Heal(target) => {
                        assert_eq!(open.take(), Some(target), "heal pairs its sever");
                    }
                }
            }
            assert!(open.is_none(), "every sever is healed by plan end");
            // Same seed replays the same links.
            assert_eq!(plan.links, FaultPlan::generate(seed, &config).links);
        }
        assert!(saw_full_partition, "some schedule partitions every replica");
        assert!(saw_one_way, "some schedule draws a half-open (one-way) cut");
    }

    #[test]
    fn directions_never_perturb_link_targets_or_versions() {
        // The direction stream is salted separately: for every seed, the
        // sever/heal targets and injection points must be exactly what the
        // symmetric-only generator drew (checked structurally: severs and
        // heals pair on the same targets at ascending versions regardless
        // of direction, and the version/target sequence is a pure function
        // of the LINK_SALT stream — pinned by same-seed replay).
        let mut config = config();
        config.partition = true;
        for seed in 0..20u64 {
            let a = FaultPlan::generate(seed, &config);
            let b = FaultPlan::generate(seed, &config);
            assert_eq!(a.links, b.links, "directions replay deterministically");
        }
    }

    #[test]
    fn display_renders_link_events() {
        let mut config = config();
        config.partition = true;
        let plan = (0..50u64)
            .map(|seed| FaultPlan::generate(seed, &config))
            .find(|p| !p.links.is_empty())
            .expect("some plan has link faults");
        let text = plan.to_string();
        assert!(text.contains("sever"));
        assert!(text.contains("heal"));
        assert!(text.contains("certifier"));
    }

    #[test]
    fn without_fault_drops_both_events() {
        let plan = FaultPlan::generate(7, &config());
        let ids = plan.fault_ids();
        let reduced = plan.without_fault(ids[0]);
        assert_eq!(reduced.fault_count(), plan.fault_count() - 1);
        assert_eq!(reduced.events.len(), plan.events.len() - 2);
        assert!(!reduced.fault_ids().contains(&ids[0]));
    }

    #[test]
    fn single_node_groups_admit_no_certifier_faults() {
        let mut config = PlanConfig::for_cluster(2, 1, 1);
        config.target_replicas = false;
        let plan = FaultPlan::generate(3, &config);
        assert!(plan.events.is_empty());
    }

    #[test]
    fn display_renders_every_event() {
        let plan = FaultPlan::generate(9, &config());
        let text = plan.to_string();
        assert!(text.contains("crash"));
        assert!(text.contains("recover"));
        assert!(text.contains("seed 0x9"));
    }
}
