//! The proxy's local copy of recently seen writesets.
//!
//! Local certification (Section 6.2) is a performance optimisation: the proxy
//! keeps the footprints of the writesets it has already seen (remote
//! writesets it applied and local transactions it committed) and checks a
//! committing transaction against them *before* contacting the certifier.
//! A conflict found locally aborts the transaction without a round trip; a
//! clean check lets the proxy advance the transaction's effective start
//! version, which reduces the intersection work at the certifier.

use std::collections::HashSet;

use tashkent_common::{RowKey, TableId, Version, WriteSet};

/// Footprints of recently seen writesets, indexed by commit version.
#[derive(Debug, Default)]
pub struct SeenWriteSets {
    entries: Vec<(Version, HashSet<(TableId, RowKey)>)>,
}

impl SeenWriteSets {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        SeenWriteSets::default()
    }

    /// Records a writeset committed at `version`.
    ///
    /// Versions are expected in increasing order (the proxy schedules
    /// writesets in global order); a version at or below the newest recorded
    /// one is already known and is ignored.
    pub fn record(&mut self, version: Version, writeset: &WriteSet) {
        if writeset.is_empty() {
            return;
        }
        if self.entries.last().is_some_and(|(v, _)| *v >= version) {
            return;
        }
        self.entries.push((version, writeset.footprint()));
    }

    /// Checks `writeset` against every recorded writeset committed after
    /// `start_version`.  Returns the commit version of the first conflict, or
    /// `None` if the writeset is locally conflict-free.
    #[must_use]
    pub fn conflict_after(&self, writeset: &WriteSet, start_version: Version) -> Option<Version> {
        if writeset.is_empty() {
            return None;
        }
        let start = self.entries.partition_point(|(v, _)| *v <= start_version);
        self.entries[start..]
            .iter()
            .find(|(_, footprint)| writeset.conflicts_with_footprint(footprint))
            .map(|(v, _)| *v)
    }

    /// Newest recorded version, or zero if empty.
    #[must_use]
    pub fn latest_version(&self) -> Version {
        self.entries.last().map_or(Version::ZERO, |(v, _)| *v)
    }

    /// Number of retained footprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discards entries at or below `version` (no active transaction can have
    /// started before it), returning how many were discarded.
    pub fn prune_up_to(&mut self, version: Version) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(v, _)| *v > version);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use tashkent_common::{Value, WriteItem};

    use super::*;

    fn ws(keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| WriteItem::update(TableId(0), k, vec![("x".into(), Value::Int(k))]))
                .collect(),
        )
    }

    #[test]
    fn conflicts_respect_start_version() {
        let mut seen = SeenWriteSets::new();
        assert!(seen.is_empty());
        seen.record(Version(1), &ws(&[1]));
        seen.record(Version(2), &ws(&[2]));
        seen.record(Version(3), &ws(&[3]));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen.latest_version(), Version(3));
        assert_eq!(seen.conflict_after(&ws(&[2]), Version::ZERO), Some(Version(2)));
        assert_eq!(seen.conflict_after(&ws(&[2]), Version(2)), None);
        assert_eq!(seen.conflict_after(&ws(&[9]), Version::ZERO), None);
        assert_eq!(seen.conflict_after(&WriteSet::new(), Version::ZERO), None);
    }

    #[test]
    fn empty_writesets_are_not_recorded() {
        let mut seen = SeenWriteSets::new();
        seen.record(Version(1), &WriteSet::new());
        assert!(seen.is_empty());
    }

    #[test]
    fn pruning_discards_old_entries() {
        let mut seen = SeenWriteSets::new();
        for v in 1..=10 {
            seen.record(Version(v), &ws(&[v as i64]));
        }
        let removed = seen.prune_up_to(Version(7));
        assert_eq!(removed, 7);
        assert_eq!(seen.len(), 3);
        // Entries above the prune point still detect conflicts.
        assert_eq!(seen.conflict_after(&ws(&[9]), Version::ZERO), Some(Version(9)));
        assert_eq!(seen.conflict_after(&ws(&[5]), Version::ZERO), None);
    }
}
