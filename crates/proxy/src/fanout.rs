//! Proxy-side fan-out over the sharded certifier.
//!
//! [`CertifierHandle`] is the proxy's uniform view of "the certifier":
//! either the paper's single [`Certifier`] or a [`ShardedCertifier`].  The
//! handle keeps the sharding invisible to the commit pipelines — for the
//! sharded case, [`CertifierHandle::writesets_after`] *fans out* to every
//! shard's version stream and *fans in* by merging them on ascending global
//! commit version ([`tashkent_certifier::merge_shard_streams`]), so `apply_remotes_serial` and
//! `commit_concurrent` consume exactly the gap-free totally-ordered stream
//! they were written against.

use std::sync::Arc;

use tashkent_certifier::{
    CertificationRequest, CertificationResponse, Certifier, CertifierNodeId, CertifierStats,
    RemoteWriteSet, ShardedCertifier,
};
use tashkent_common::{Result, ShardId, Version, WriteSet};

/// The certification *data plane* as seen from across a wire.
///
/// These are exactly the operations a replica's proxy performs per
/// transaction (or during recovery catch-up) — the ones that must travel
/// when the certifier is a remote process.  `tashkent-net` implements this
/// trait with a framed wire protocol; everything else on
/// [`CertifierHandle`] is control plane (fault injection, checkpointing,
/// log inspection) and stays on the colocated in-process handle.
pub trait CertifierService: Send + Sync {
    /// Certifies an update transaction.
    ///
    /// # Errors
    ///
    /// Returns [`tashkent_common::Error::Unavailable`] if the certifier has
    /// lost its majority *or* the wire to it is down.
    fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse>;

    /// The remote writesets committed after `since`, in ascending global
    /// version order.  Returns an empty stream when the wire is down (the
    /// proxy's bounded-staleness refresh retries later).
    fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet>;

    /// The certifier's global system version (the last observed one when
    /// the wire is down).
    fn system_version(&self) -> Version;

    /// `true` if certification can currently make progress end to end —
    /// majority up *and* the wire reachable.
    fn is_available(&self) -> bool;

    /// The certifier's truncation floor (recovery refuses to catch up a
    /// replica whose version lies below it).
    fn truncation_floor(&self) -> Version;
}

/// A cheaply-cloneable handle to the cluster's certification service.
#[derive(Clone)]
pub enum CertifierHandle {
    /// The unsharded certifier of the paper.
    Single(Arc<Certifier>),
    /// The sharded certifier (PR 4): per-shard logs behind a global
    /// sequencer.
    Sharded(Arc<ShardedCertifier>),
    /// A certifier reached over a wire: the data plane goes through a
    /// [`CertifierService`] (network round-trips), while the control plane
    /// — fault injection, checkpoint/truncation, log inspection — delegates
    /// to the colocated in-process handle the service fronts.  This keeps
    /// the fault executor, the trimmer and the oracle transport-agnostic.
    Remote {
        /// The wire-facing data plane.
        service: Arc<dyn CertifierService>,
        /// The in-process handle behind the server, for control-plane
        /// operations.
        colocated: Box<CertifierHandle>,
    },
}

impl std::fmt::Debug for CertifierHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifierHandle::Single(c) => f.debug_tuple("Single").field(c).finish(),
            CertifierHandle::Sharded(c) => f.debug_tuple("Sharded").field(c).finish(),
            CertifierHandle::Remote { colocated, .. } => {
                f.debug_tuple("Remote").field(colocated).finish()
            }
        }
    }
}

impl From<Arc<Certifier>> for CertifierHandle {
    fn from(certifier: Arc<Certifier>) -> Self {
        CertifierHandle::Single(certifier)
    }
}

impl From<Arc<ShardedCertifier>> for CertifierHandle {
    fn from(certifier: Arc<ShardedCertifier>) -> Self {
        CertifierHandle::Sharded(certifier)
    }
}

impl CertifierHandle {
    /// Certifies an update transaction.
    ///
    /// # Errors
    ///
    /// Returns [`tashkent_common::Error::Unavailable`] if the certifier (or,
    /// sharded, any shard owning the writeset) has lost its majority.
    pub fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
        match self {
            CertifierHandle::Single(c) => c.certify(request),
            CertifierHandle::Sharded(c) => c.certify(request),
            CertifierHandle::Remote { service, .. } => service.certify(request),
        }
    }

    /// The remote writesets committed after `since`, as one gap-free stream
    /// in ascending global version order.
    ///
    /// For the sharded certifier this is the fan-out/fan-in: sample the
    /// system version, fetch every shard's stream
    /// ([`ShardedCertifier::shard_streams_after`]), merge by version with
    /// the sampled bound ([`tashkent_certifier::merge_shard_streams`]).
    /// Everything above this call is oblivious to sharding.
    #[must_use]
    pub fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet> {
        match self {
            CertifierHandle::Single(c) => c.writesets_after(since),
            CertifierHandle::Sharded(c) => c.writesets_after(since),
            CertifierHandle::Remote { service, .. } => service.writesets_after(since),
        }
    }

    /// The certifier's global system version.
    #[must_use]
    pub fn system_version(&self) -> Version {
        match self {
            CertifierHandle::Single(c) => c.system_version(),
            CertifierHandle::Sharded(c) => c.system_version(),
            CertifierHandle::Remote { service, .. } => service.system_version(),
        }
    }

    /// `true` if certification can make progress (every replicated group —
    /// the single group, or all shard groups — has a majority up).
    #[must_use]
    pub fn is_available(&self) -> bool {
        match self {
            CertifierHandle::Single(c) => c.is_available(),
            CertifierHandle::Sharded(c) => c.is_available(),
            CertifierHandle::Remote { service, .. } => service.is_available(),
        }
    }

    /// Crashes one certifier node (for the sharded certifier: that node in
    /// every shard's group — the physical-machine fault model).
    pub fn crash_node(&self, node: CertifierNodeId) {
        match self {
            CertifierHandle::Single(c) => c.crash_node(node),
            CertifierHandle::Sharded(c) => c.crash_node(node),
            CertifierHandle::Remote { colocated, .. } => colocated.crash_node(node),
        }
    }

    /// Recovers one certifier node via state transfer.
    ///
    /// # Errors
    ///
    /// Returns [`tashkent_common::Error::Unavailable`] if no up node can
    /// donate the log.
    pub fn recover_node(&self, node: CertifierNodeId) -> Result<()> {
        match self {
            CertifierHandle::Single(c) => c.recover_node(node),
            CertifierHandle::Sharded(c) => c.recover_node(node),
            CertifierHandle::Remote { colocated, .. } => colocated.recover_node(node),
        }
    }

    /// Statistics in the unsharded shape (sharded counters are aggregated
    /// across shards; see
    /// [`ShardedCertifierStats::aggregate`](tashkent_certifier::ShardedCertifierStats::aggregate)).
    #[must_use]
    pub fn stats(&self) -> CertifierStats {
        match self {
            CertifierHandle::Single(c) => c.stats(),
            CertifierHandle::Sharded(c) => c.stats().aggregate(),
            CertifierHandle::Remote { colocated, .. } => colocated.stats(),
        }
    }

    /// Number of certification shards (1 for the unsharded certifier).
    ///
    /// Together with the `shard_*` methods below this gives fault injectors
    /// one uniform, shard-addressed view of the certification service: the
    /// unsharded certifier is addressed as the single shard `ShardId(0)`.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        match self {
            CertifierHandle::Single(_) => 1,
            CertifierHandle::Sharded(c) => c.shard_count(),
            CertifierHandle::Remote { colocated, .. } => colocated.shard_count(),
        }
    }

    /// Total number of nodes in each shard's replicated group.
    #[must_use]
    pub fn nodes_per_shard(&self) -> usize {
        match self {
            CertifierHandle::Single(c) => c.node_count(),
            CertifierHandle::Sharded(c) => c.nodes_per_shard(),
            CertifierHandle::Remote { colocated, .. } => colocated.nodes_per_shard(),
        }
    }

    /// The current leader of one shard's replicated group.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_leader(&self, shard: ShardId) -> CertifierNodeId {
        match self {
            CertifierHandle::Single(c) => {
                assert_eq!(shard, ShardId(0), "unsharded certifier has one shard");
                c.leader()
            }
            CertifierHandle::Sharded(c) => c.shard_leader(shard),
            CertifierHandle::Remote { colocated, .. } => colocated.shard_leader(shard),
        }
    }

    /// The up nodes of one shard's replicated group, in node-id order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_up_nodes(&self, shard: ShardId) -> Vec<CertifierNodeId> {
        match self {
            CertifierHandle::Single(c) => {
                assert_eq!(shard, ShardId(0), "unsharded certifier has one shard");
                c.up_nodes()
            }
            CertifierHandle::Sharded(c) => c.shard_up_nodes(shard),
            CertifierHandle::Remote { colocated, .. } => colocated.shard_up_nodes(shard),
        }
    }

    /// Crashes one node of one shard's replicated group.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn crash_shard_node(&self, shard: ShardId, node: CertifierNodeId) {
        match self {
            CertifierHandle::Single(c) => {
                assert_eq!(shard, ShardId(0), "unsharded certifier has one shard");
                c.crash_node(node);
            }
            CertifierHandle::Sharded(c) => c.crash_shard_node(shard, node),
            CertifierHandle::Remote { colocated, .. } => colocated.crash_shard_node(shard, node),
        }
    }

    /// Recovers one node of one shard's replicated group via state transfer.
    ///
    /// # Errors
    ///
    /// Returns [`tashkent_common::Error::Unavailable`] if the shard has no
    /// up node to donate its log.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn recover_shard_node(&self, shard: ShardId, node: CertifierNodeId) -> Result<()> {
        match self {
            CertifierHandle::Single(c) => {
                assert_eq!(shard, ShardId(0), "unsharded certifier has one shard");
                c.recover_node(node)
            }
            CertifierHandle::Sharded(c) => c.recover_shard_node(shard, node),
            CertifierHandle::Remote { colocated, .. } => colocated.recover_shard_node(shard, node),
        }
    }

    /// Reads the durable log of one node of one shard's group (the
    /// fault-schedule oracle compares these record-for-record).
    ///
    /// # Errors
    ///
    /// Propagates decode errors and unknown-node errors.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_durable_entries(
        &self,
        shard: ShardId,
        node: CertifierNodeId,
    ) -> Result<Vec<(Version, WriteSet)>> {
        match self {
            CertifierHandle::Single(c) => {
                assert_eq!(shard, ShardId(0), "unsharded certifier has one shard");
                c.durable_entries(node)
            }
            CertifierHandle::Sharded(c) => c.shard_durable_entries(shard, node),
            CertifierHandle::Remote { colocated, .. } => colocated.shard_durable_entries(shard, node),
        }
    }

    /// Seals a durable checkpoint of the certified log (every shard's log,
    /// when sharded).  Returns the version the checkpoint covers up to.
    pub fn seal_checkpoint(&self) -> Version {
        match self {
            CertifierHandle::Single(c) => c.seal_checkpoint(),
            CertifierHandle::Sharded(c) => c.seal_checkpoint(),
            CertifierHandle::Remote { colocated, .. } => colocated.seal_checkpoint(),
        }
    }

    /// Drops certified-log entries at or below `watermark` from the
    /// in-memory and durable logs, clamped to the newest sealed checkpoint.
    /// Returns the number of in-memory entries discarded.
    ///
    /// # Errors
    ///
    /// Propagates durable-log rewrite failures.
    pub fn truncate_below(&self, watermark: Version) -> Result<usize> {
        match self {
            CertifierHandle::Single(c) => c.truncate_below(watermark),
            CertifierHandle::Sharded(c) => c.truncate_below(watermark),
            CertifierHandle::Remote { colocated, .. } => colocated.truncate_below(watermark),
        }
    }

    /// The truncation floor: versions at or below it can no longer be served
    /// from the certified logs (highest per-shard floor when sharded).
    #[must_use]
    pub fn truncation_floor(&self) -> Version {
        match self {
            CertifierHandle::Single(c) => c.truncation_floor(),
            CertifierHandle::Sharded(c) => c.truncation_floor(),
            CertifierHandle::Remote { service, .. } => service.truncation_floor(),
        }
    }

    /// The version the newest sealed checkpoint covers up to (minimum across
    /// shards when sharded; [`Version::ZERO`] before the first seal).
    #[must_use]
    pub fn checkpoint_version(&self) -> Version {
        match self {
            CertifierHandle::Single(c) => c.checkpoint_version(),
            CertifierHandle::Sharded(c) => c.checkpoint_version(),
            CertifierHandle::Remote { colocated, .. } => colocated.checkpoint_version(),
        }
    }

    /// Total number of entries held in the in-memory certified logs
    /// (bounded-memory assertions).
    #[must_use]
    pub fn log_len(&self) -> usize {
        match self {
            CertifierHandle::Single(c) => c.log_len(),
            CertifierHandle::Sharded(c) => c.log_len(),
            CertifierHandle::Remote { colocated, .. } => colocated.log_len(),
        }
    }

    /// The sharded certifier behind this handle, if it is sharded (per-shard
    /// fault injection and inspection).
    #[must_use]
    pub fn as_sharded(&self) -> Option<&Arc<ShardedCertifier>> {
        match self {
            CertifierHandle::Sharded(c) => Some(c),
            CertifierHandle::Single(_) => None,
            CertifierHandle::Remote { colocated, .. } => colocated.as_sharded(),
        }
    }

    /// The unsharded certifier behind this handle, if it is unsharded.
    #[must_use]
    pub fn as_single(&self) -> Option<&Arc<Certifier>> {
        match self {
            CertifierHandle::Single(c) => Some(c),
            CertifierHandle::Sharded(_) => None,
            CertifierHandle::Remote { colocated, .. } => colocated.as_single(),
        }
    }
}

#[cfg(test)]
mod tests {
    use tashkent_certifier::{CertifierConfig, ShardedCertifierConfig};
    use tashkent_common::{ReplicaId, TableId, Value, WriteItem, WriteSet};

    use super::*;

    fn ws(keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| WriteItem::update(TableId(0), k, vec![("x".into(), Value::Int(k))]))
                .collect(),
        )
    }

    fn commit(handle: &CertifierHandle, keys: &[i64]) -> Version {
        let version = handle.system_version();
        let response = handle
            .certify(&CertificationRequest {
                replica: ReplicaId(0),
                start_version: version,
                writeset: ws(keys),
                replica_version: version,
            })
            .unwrap();
        assert!(response.decision.is_commit());
        response.commit_version.unwrap()
    }

    #[test]
    fn sharded_fan_in_matches_the_single_stream_shape() {
        let single: CertifierHandle =
            Arc::new(Certifier::new(CertifierConfig::default())).into();
        let sharded: CertifierHandle = Arc::new(ShardedCertifier::new(
            ShardedCertifierConfig::with_shards(4),
        ))
        .into();
        for handle in [&single, &sharded] {
            for k in 0..10 {
                commit(handle, &[k, k + 100]);
            }
            let remotes = handle.writesets_after(Version(3));
            let versions: Vec<u64> =
                remotes.iter().map(|r| r.commit_version.value()).collect();
            assert_eq!(versions, vec![4, 5, 6, 7, 8, 9, 10]);
            assert_eq!(handle.system_version(), Version(10));
            assert!(handle.is_available());
            assert_eq!(handle.stats().commits, 10);
        }
        assert!(single.as_single().is_some() && single.as_sharded().is_none());
        assert!(sharded.as_sharded().is_some() && sharded.as_single().is_none());
    }

    /// A [`CertifierService`] that forwards to an in-process certifier while
    /// counting the calls that crossed "the wire".
    struct CountingService {
        inner: Arc<Certifier>,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl CertifierService for CountingService {
        fn certify(&self, request: &CertificationRequest) -> Result<CertificationResponse> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.certify(request)
        }
        fn writesets_after(&self, since: Version) -> Vec<RemoteWriteSet> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.writesets_after(since)
        }
        fn system_version(&self) -> Version {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.system_version()
        }
        fn is_available(&self) -> bool {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.is_available()
        }
        fn truncation_floor(&self) -> Version {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.truncation_floor()
        }
    }

    #[test]
    fn remote_routes_data_plane_to_the_service_and_control_plane_around_it() {
        let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
        let service = Arc::new(CountingService {
            inner: certifier.clone(),
            calls: std::sync::atomic::AtomicUsize::new(0),
        });
        let handle = CertifierHandle::Remote {
            service: service.clone(),
            colocated: Box::new(CertifierHandle::Single(certifier)),
        };

        // Data plane: each of the five wire operations crosses the service.
        commit(&handle, &[1]);
        assert_eq!(handle.writesets_after(Version::ZERO).len(), 1);
        assert!(handle.is_available());
        assert_eq!(handle.truncation_floor(), Version::ZERO);
        let data_calls = service.calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(data_calls >= 5, "expected >=5 wire calls, saw {data_calls}");

        // Control plane: none of these may touch the wire.
        assert_eq!(handle.stats().commits, 1);
        assert_eq!(handle.shard_count(), 1);
        assert_eq!(handle.log_len(), 1);
        assert_eq!(handle.checkpoint_version(), Version::ZERO);
        assert!(handle.as_single().is_some() && handle.as_sharded().is_none());
        handle.crash_node(CertifierNodeId(1));
        handle.recover_node(CertifierNodeId(1)).unwrap();
        assert_eq!(
            service.calls.load(std::sync::atomic::Ordering::Relaxed),
            data_calls,
            "control-plane operations must bypass the wire"
        );
        assert!(format!("{handle:?}").starts_with("Remote"));
    }

    #[test]
    fn node_faults_flow_through_the_handle() {
        let handle: CertifierHandle = Arc::new(ShardedCertifier::new(
            ShardedCertifierConfig::with_shards(2),
        ))
        .into();
        commit(&handle, &[1]);
        handle.crash_node(CertifierNodeId(0));
        handle.crash_node(CertifierNodeId(1));
        assert!(!handle.is_available());
        handle.recover_node(CertifierNodeId(0)).unwrap();
        assert!(handle.is_available());
        commit(&handle, &[2]);
    }
}
