//! Replica recovery procedures (Sections 7.1, 7.2 and 8.1).
//!
//! * **Base / Tashkent-API** replicas recover like a standalone database: the
//!   engine redoes its durable WAL, then the proxy fetches from the certifier
//!   every writeset the replica is still missing and applies them in global
//!   order ([`recover_base_or_api_replica`] + [`catch_up`]).
//! * **Tashkent-MW** replicas run with synchronous WAL writes disabled, so
//!   after a crash the WAL is useless (and data pages could be corrupt on a
//!   real engine).  The middleware instead restarts the replica from the most
//!   recent *intact* dump — falling back to the previous dump if the database
//!   crashed while writing the last one — and then applies the writesets
//!   committed since the dump's version ([`recover_mw_replica`]).

use std::sync::Arc;

use tashkent_common::{Error, Result, Version};
use tashkent_storage::disk::LogDevice;
use tashkent_storage::wal::WalRecord;
use tashkent_storage::{Database, DatabaseDump, EngineConfig};

use crate::fanout::CertifierHandle;

/// Applies every writeset the certifier has that the database is missing,
/// in global order, committing each batch at its highest version.
///
/// Returns the number of writesets applied.  This is the "Applying writesets"
/// step shared by all three systems (Section 9.6 measures it at roughly 900
/// writesets per second).
///
/// # Errors
///
/// Fails if the certifier majority is unavailable or the database rejects an
/// application.
pub fn catch_up(db: &Database, certifier: &CertifierHandle) -> Result<usize> {
    // The certified logs only reach down to the truncation floor.  A replica
    // below it would be handed a stream with a silent gap and diverge — fail
    // loudly instead: the caller must bootstrap from a checkpoint whose
    // version is at or above the floor (incremental state transfer).
    let floor = certifier.truncation_floor();
    if db.version() < floor {
        return Err(Error::Corruption(format!(
            "replica at version {} is below the certifier truncation floor {floor}; \
             recover from a checkpoint at or above the floor",
            db.version()
        )));
    }
    let missing = certifier.writesets_after(db.version());
    if missing.is_empty() {
        return Ok(0);
    }
    let count = missing.len();
    // Batch the writesets: group them into one replica transaction per chunk
    // to amortise commit overhead, exactly as the recovering proxy does.
    const BATCH: usize = 64;
    for chunk in missing.chunks(BATCH) {
        let merged = tashkent_common::WriteSet::merged(chunk.iter().map(|r| &*r.writeset));
        let target = chunk.last().expect("chunk is non-empty").commit_version;
        db.apply_writeset(&merged, target)?;
    }
    Ok(count)
}

/// Recovers a Base or Tashkent-API replica from its durable WAL and brings it
/// up to date from the certifier.
///
/// `baseline` is the image of state that never went through the WAL (the
/// bulk-loaded initial database, standing in for a real engine's data
/// pages); WAL redo replays on top of it.  Pass `None` for a replica whose
/// entire state went through transactions.
///
/// The WAL is only trusted up to its **dense frontier** — the highest
/// version `f` such that every version in `(baseline, f]` has its own
/// durable record.  Beyond the frontier a version gap is ambiguous: it is
/// either a grouped install (one record covering a whole batch, harmless)
/// or a record lost to the crash (group commit fsyncs records out of
/// version order, so a lost record can sit *below* durable ones).  The
/// certifier log still holds every certified writeset, so everything past
/// the frontier is re-fetched from there in global order instead of being
/// guessed from the log.
///
/// Returns the recovered database and the number of writesets re-applied
/// during catch-up.
///
/// # Errors
///
/// Fails on WAL corruption or certifier unavailability.
pub fn recover_base_or_api_replica(
    config: EngineConfig,
    device: Arc<dyn LogDevice>,
    schema: &[(&str, Vec<&str>)],
    baseline: Option<&DatabaseDump>,
    certifier: &CertifierHandle,
) -> Result<(Database, usize)> {
    let base = baseline.map_or(Version::ZERO, DatabaseDump::version);
    let mut versions: Vec<Version> = WalRecord::decode_all(&device.durable_contents())?
        .iter()
        .filter_map(|record| match record {
            WalRecord::Commit { version, .. } => Some(*version),
            WalRecord::Checkpoint { .. } => None,
        })
        .collect();
    versions.sort_unstable();
    versions.dedup();
    let mut frontier = base;
    for version in versions {
        if version <= frontier {
            continue;
        }
        if version == frontier.next() {
            frontier = version;
        } else {
            break;
        }
    }
    let db =
        Database::recover_with_baseline(config, device, schema, baseline, Some(frontier))?;
    let applied = catch_up(&db, certifier)?;
    Ok((db, applied))
}

/// Recovers a Tashkent-MW replica from its dumps and brings it up to date
/// from the certifier.
///
/// `dump_files` are the stored dump images, most recent last.  Corrupt or
/// truncated dumps (the database may have crashed while writing the last
/// one) are skipped, falling back to the previous dump.
///
/// Returns the recovered database and the number of writesets re-applied.
///
/// # Errors
///
/// Returns [`Error::Corruption`] if no intact dump exists, or certifier /
/// engine errors from catch-up.
pub fn recover_mw_replica(
    config: EngineConfig,
    dump_files: &[Vec<u8>],
    certifier: &CertifierHandle,
) -> Result<(Database, usize)> {
    let floor = certifier.truncation_floor();
    let mut last_error = Error::Corruption("no dump files available".into());
    for raw in dump_files.iter().rev() {
        match DatabaseDump::from_bytes(raw) {
            Ok(dump) => {
                // A dump below the truncation floor cannot be caught up (the
                // log suffix it needs is gone) — fall back to an older slot,
                // which may hold a *newer* sealed checkpoint image.
                if dump.version() < floor {
                    last_error = Error::Corruption(format!(
                        "dump at version {} is below the certifier truncation floor {floor}",
                        dump.version()
                    ));
                    continue;
                }
                let db = Database::restore_from_dump(config, &dump);
                let applied = catch_up(&db, certifier)?;
                return Ok((db, applied));
            }
            Err(e) => last_error = e,
        }
    }
    Err(last_error)
}

#[cfg(test)]
mod tests {
    use tashkent_certifier::{
        CertificationRequest, Certifier, CertifierConfig, ShardedCertifier,
        ShardedCertifierConfig,
    };
    use tashkent_common::{ReplicaId, SyncMode, TableId, Value, Version, WriteItem, WriteSet};

    use super::*;

    fn ws(key: i64, value: i64) -> WriteSet {
        WriteSet::from_items(vec![WriteItem::update(
            TableId(0),
            key,
            vec![("x".into(), Value::Int(value))],
        )])
    }

    fn fill(certifier: &CertifierHandle, count: i64) {
        for k in 0..count {
            let response = certifier
                .certify(&CertificationRequest {
                    replica: ReplicaId(9),
                    start_version: certifier.system_version(),
                    writeset: ws(k, k * 100),
                    replica_version: certifier.system_version(),
                })
                .unwrap();
            assert!(response.decision.is_commit());
        }
    }

    fn certifier_with_entries(count: i64) -> CertifierHandle {
        let certifier: CertifierHandle =
            Arc::new(Certifier::new(CertifierConfig::default())).into();
        fill(&certifier, count);
        certifier
    }

    #[test]
    fn catch_up_applies_all_missing_writesets() {
        let certifier = certifier_with_entries(10);
        let db = Database::new(EngineConfig::default());
        db.create_table("t", &["x"]);
        let applied = catch_up(&db, &certifier).unwrap();
        assert_eq!(applied, 10);
        assert_eq!(db.version(), Version(10));
        // Catch-up is idempotent.
        assert_eq!(catch_up(&db, &certifier).unwrap(), 0);
        let t = db.table_id("t").unwrap();
        assert_eq!(
            db.read_latest(t, 4).unwrap().get("x"),
            Some(&Value::Int(400))
        );
    }

    #[test]
    fn base_replica_recovers_from_wal_then_catches_up() {
        let certifier = certifier_with_entries(3);
        // A replica that had applied the first two writesets durably.
        let db = Database::new(EngineConfig::default());
        let t = db.create_table("t", &["x"]);
        db.apply_writeset(&ws(0, 0), Version(1)).unwrap();
        db.apply_writeset(&ws(1, 100), Version(2)).unwrap();
        db.crash();
        let (recovered, applied) = recover_base_or_api_replica(
            EngineConfig::default(),
            db.log_device(),
            &[("t", vec!["x"])],
            None,
            &certifier,
        )
        .unwrap();
        // WAL redo restored versions 1-2; catch-up supplied version 3.
        assert_eq!(applied, 1);
        assert_eq!(recovered.version(), Version(3));
        let _ = t;
    }

    #[test]
    fn mw_replica_recovers_from_latest_intact_dump() {
        let certifier = certifier_with_entries(6);
        // Build the replica state as of version 4 and dump it.
        let db = Database::new(EngineConfig::with_sync_mode(SyncMode::Off));
        db.create_table("t", &["x"]);
        let remotes = certifier.writesets_after(Version::ZERO);
        for remote in remotes.iter().take(4) {
            db.apply_writeset(&remote.writeset, remote.commit_version)
                .unwrap();
        }
        let good_dump = db.dump().to_bytes();
        // The most recent dump is torn (crash while dumping).
        let mut torn_dump = db.dump().to_bytes();
        torn_dump.truncate(torn_dump.len() / 2);
        let (recovered, applied) = recover_mw_replica(
            EngineConfig::with_sync_mode(SyncMode::Off),
            &[good_dump, torn_dump],
            &certifier,
        )
        .unwrap();
        assert_eq!(recovered.version(), Version(6));
        assert_eq!(applied, 2);
    }

    #[test]
    fn catch_up_consumes_the_sharded_certifiers_merged_stream() {
        let certifier: CertifierHandle = Arc::new(ShardedCertifier::new(
            ShardedCertifierConfig::with_shards(4),
        ))
        .into();
        fill(&certifier, 10);
        let db = Database::new(EngineConfig::default());
        db.create_table("t", &["x"]);
        assert_eq!(catch_up(&db, &certifier).unwrap(), 10);
        assert_eq!(db.version(), Version(10));
        assert_eq!(catch_up(&db, &certifier).unwrap(), 0);
    }

    #[test]
    fn catch_up_refuses_to_cross_the_truncation_floor() {
        let certifier = certifier_with_entries(8);
        // Seal a checkpoint and trim the certified log up to version 5.
        certifier.seal_checkpoint();
        certifier.truncate_below(Version(5)).unwrap();
        assert_eq!(certifier.truncation_floor(), Version(5));
        // A replica already past the floor catches up normally.
        let db = Database::new(EngineConfig::default());
        db.create_table("t", &["x"]);
        let remotes = certifier_with_entries(8).writesets_after(Version::ZERO);
        for remote in remotes.iter().take(5) {
            db.apply_writeset(&remote.writeset, remote.commit_version).unwrap();
        }
        assert_eq!(catch_up(&db, &certifier).unwrap(), 3);
        assert_eq!(db.version(), Version(8));
        // A replica below the floor is refused loudly, not fed a gap.
        let stale = Database::new(EngineConfig::default());
        stale.create_table("t", &["x"]);
        assert!(matches!(
            catch_up(&stale, &certifier),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn mw_recovery_skips_dumps_below_the_truncation_floor() {
        let certifier = certifier_with_entries(8);
        let db = Database::new(EngineConfig::with_sync_mode(SyncMode::Off));
        db.create_table("t", &["x"]);
        let remotes = certifier.writesets_after(Version::ZERO);
        for remote in remotes.iter().take(2) {
            db.apply_writeset(&remote.writeset, remote.commit_version)
                .unwrap();
        }
        let stale = db.dump().to_bytes();
        for remote in remotes.iter().skip(2).take(3) {
            db.apply_writeset(&remote.writeset, remote.commit_version)
                .unwrap();
        }
        let fresh = db.dump().to_bytes();
        certifier.seal_checkpoint();
        certifier.truncate_below(Version(5)).unwrap();
        // The newest slot holds a dump *below* the floor; recovery must fall
        // back to the older slot's fresher image rather than fail on the
        // missing log suffix.
        let (recovered, applied) = recover_mw_replica(
            EngineConfig::with_sync_mode(SyncMode::Off),
            &[fresh, stale],
            &certifier,
        )
        .unwrap();
        assert_eq!(recovered.version(), Version(8));
        assert_eq!(applied, 3);
    }

    #[test]
    fn mw_recovery_fails_without_any_intact_dump() {
        let certifier = certifier_with_entries(1);
        let result = recover_mw_replica(
            EngineConfig::default(),
            &[vec![1, 2, 3], Vec::new()],
            &certifier,
        );
        assert!(matches!(result, Err(Error::Corruption(_))));
    }
}
