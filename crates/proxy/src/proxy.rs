//! The proxy itself: transaction interception and the three commit pipelines.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tashkent_certifier::{CertificationDecision, CertificationRequest, RemoteWriteSet};
use tashkent_common::metrics::{CounterId, GaugeId, Stage};
use tashkent_common::{
    Component, Error, Event, EventKind, MetricsRegistry, ReplicaId, Result, RowKey, SystemKind,
    TableId, TraceTimer, Value, Version, WriteSet,
};
use tashkent_storage::{Database, Row, TxHandle};

use crate::fanout::CertifierHandle;
use crate::seen::SeenWriteSets;

/// Configuration of one proxy instance.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Which replication design the cluster runs.
    pub system: SystemKind,
    /// The replica this proxy fronts.
    pub replica: ReplicaId,
    /// Enable local certification (Section 6.2).
    pub local_certification: bool,
    /// Enable eager pre-certification / deadlock avoidance (Section 8.2).
    pub eager_precertification: bool,
    /// If the proxy hears nothing from the certifier for this long, it
    /// proactively fetches remote writesets (bounded staleness, Section 6.2).
    pub staleness_bound: Duration,
    /// Metrics registry the proxy reports into: transaction counters, the
    /// begin / execute / certify stage histograms, remote-apply figures and
    /// per-transaction commit-path traces.  Defaults to a disabled registry.
    pub metrics: Arc<MetricsRegistry>,
}

impl ProxyConfig {
    /// A reasonable default configuration for the given system and replica.
    #[must_use]
    pub fn new(system: SystemKind, replica: ReplicaId) -> Self {
        ProxyConfig {
            system,
            replica,
            local_certification: true,
            eager_precertification: true,
            staleness_bound: Duration::from_secs(2),
            metrics: Arc::new(MetricsRegistry::disabled()),
        }
    }
}

/// Outcome of a committed proxy transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The global version created by the commit (update transactions only).
    pub commit_version: Option<Version>,
    /// `true` if the transaction was read-only and committed locally without
    /// certification.
    pub read_only: bool,
}

/// Counters exposed by [`Proxy::stats`].
#[derive(Debug, Clone, Default)]
pub struct ProxyStats {
    /// Committed update transactions.
    pub update_commits: u64,
    /// Committed read-only transactions.
    pub read_only_commits: u64,
    /// Transactions aborted by local certification (before reaching the
    /// certifier).
    pub local_certification_aborts: u64,
    /// Transactions aborted by the certifier.
    pub certifier_aborts: u64,
    /// Transactions aborted by the local engine (write conflicts, deadlocks,
    /// wounds).
    pub engine_aborts: u64,
    /// Remote writesets applied to the replica.
    pub remote_writesets_applied: u64,
    /// Transactions the replica executed to apply remote writesets (grouped
    /// applications count once).
    pub remote_apply_transactions: u64,
    /// Times the Tashkent-API pipeline had to serialise a remote writeset
    /// behind an artificial conflict.
    pub artificial_conflict_barriers: u64,
    /// Bounded-staleness refreshes performed.
    pub refreshes: u64,
    /// Soft-recovery resynchronisations performed.
    pub resyncs: u64,
    /// Local transactions wounded by eager pre-certification.
    pub wounded_transactions: u64,
}

struct ProxyState {
    /// Every version at or below this has been scheduled for application or
    /// local commit at this replica; it is what the proxy reports to the
    /// certifier as `replica_version`.
    scheduled_through: Version,
    /// Dense order indices handed to the ordered-commit API.
    order_counter: u64,
    /// A serial grouped install is mid-flight: it passed the
    /// no-outstanding-order-indices check and is now applying its batch.
    /// The concurrent pipeline's scheduling step waits this flag out
    /// instead of handing out a new order index, so no commit can announce
    /// a version above the batch while the batch is still being installed —
    /// closing the snapshot window where a transaction could begin with an
    /// announced version whose content it cannot yet see (and a
    /// certification label that hides the batch's conflicts: lost updates).
    grouped_install_active: bool,
    /// Local copy of seen writesets for local certification.
    seen: SeenWriteSets,
    /// Last successful contact with the certifier.
    last_contact: Instant,
    stats: ProxyStats,
}

struct ProxyShared {
    config: ProxyConfig,
    db: Database,
    certifier: CertifierHandle,
    state: Mutex<ProxyState>,
    /// Serialises the apply-remote-writesets / commit phase ([C4]/[C5]) for
    /// the serial pipelines (Base and Tashkent-MW) and the staleness refresh.
    apply_lock: Mutex<()>,
}

/// The transparent proxy attached to one database replica.
///
/// Cloning is cheap; all clones share the same proxy state.
#[derive(Clone)]
pub struct Proxy {
    shared: Arc<ProxyShared>,
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("replica", &self.shared.config.replica)
            .field("system", &self.shared.config.system)
            .field("replica_version", &self.replica_version())
            .finish()
    }
}

impl Proxy {
    /// Creates a proxy fronting `db` and talking to `certifier` (an
    /// `Arc<Certifier>`, an `Arc<ShardedCertifier>` or a ready-made
    /// [`CertifierHandle`] — the pipelines are identical above the handle).
    #[must_use]
    pub fn new(
        config: ProxyConfig,
        db: Database,
        certifier: impl Into<CertifierHandle>,
    ) -> Self {
        let scheduled_through = db.version();
        Proxy {
            shared: Arc::new(ProxyShared {
                config,
                db,
                certifier: certifier.into(),
                state: Mutex::new(ProxyState {
                    scheduled_through,
                    order_counter: 0,
                    grouped_install_active: false,
                    seen: SeenWriteSets::new(),
                    last_contact: Instant::now(),
                    stats: ProxyStats::default(),
                }),
                apply_lock: Mutex::new(()),
            }),
        }
    }

    /// The replica this proxy fronts.
    #[must_use]
    pub fn replica(&self) -> ReplicaId {
        self.shared.config.replica
    }

    /// The system variant this proxy runs.
    #[must_use]
    pub fn system(&self) -> SystemKind {
        self.shared.config.system
    }

    /// The database behind this proxy.
    #[must_use]
    pub fn database(&self) -> &Database {
        &self.shared.db
    }

    /// The replica's version as tracked by the proxy (`replica_version`).
    #[must_use]
    pub fn replica_version(&self) -> Version {
        self.shared.state.lock().scheduled_through
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> ProxyStats {
        self.shared.state.lock().stats.clone()
    }

    /// Begins a new client transaction (the proxy intercepting `BEGIN`).
    #[must_use]
    pub fn begin(&self) -> ProxyTransaction {
        // Label the transaction with the engine's actual snapshot version.
        // Labelling with the proxy's `scheduled_through` instead looks
        // equivalent but is not: in the concurrent pipeline scheduling runs
        // ahead of announcement, so a transaction could be labelled past
        // writesets its snapshot cannot see — and certification (which
        // checks conflicts only *after* the label) would let it overwrite
        // them: lost updates, caught by the fault harness's TPC-B
        // conservation oracle under plain concurrent load.  A label that is
        // conservative (older than the snapshot) is safe under GSI; a label
        // newer than the snapshot never is.
        let metrics = &self.shared.config.metrics;
        metrics.incr(CounterId::TxBegun);
        let begin_started = metrics.is_enabled().then(Instant::now);
        let tx = self.shared.db.begin();
        let label = tx.start_version();
        metrics.emit(
            Event::new(Component::Proxy, EventKind::TxBegin)
                .tx(tx.id().0)
                .node(self.shared.config.replica.value() as usize),
        );
        let timer = begin_started.map(|started| {
            metrics.record_stage(Stage::Begin, started.elapsed());
            let mut timer = TraceTimer::new_at(tx.id().0, metrics.uptime_micros());
            timer.mark(Stage::Begin);
            timer
        });
        ProxyTransaction {
            proxy: self.clone(),
            tx,
            label_version: label,
            timer,
        }
    }

    /// Applies any remote writesets the replica has not seen yet (bounded
    /// staleness, Section 6.2).  Returns the number of writesets applied.
    ///
    /// # Errors
    ///
    /// Fails if the certifier majority is unavailable or the database
    /// crashed.
    pub fn refresh(&self) -> Result<usize> {
        // Racy fast path: while ordered commits are outstanding the serial
        // install below would decline anyway, so skip the O(backlog) fetch
        // and clone.  The authoritative check runs under the state lock in
        // `apply_remotes_serial`; this one can only skip work, never apply.
        if self.shared.db.announce_counter() < self.shared.state.lock().order_counter {
            return Ok(0);
        }
        let since = self.replica_version();
        let remotes = self.shared.certifier.writesets_after(since);
        if remotes.is_empty() {
            self.shared.state.lock().last_contact = Instant::now();
            return Ok(0);
        }
        let _guard = self.shared.apply_lock.lock();
        match self.apply_remotes_serial(&remotes, false) {
            Ok(Some(count)) => {
                let mut state = self.shared.state.lock();
                state.stats.refreshes += 1;
                state.last_contact = Instant::now();
                Ok(count)
            }
            // Declined: ordered commits are in flight and the fetched
            // writesets were dropped.  Leave `last_contact` untouched so the
            // staleness clock keeps ticking and the next `maybe_refresh`
            // retries promptly instead of waiting out a full staleness bound
            // while believing the replica is fresh.
            Ok(None) => Ok(0),
            Err(e) => {
                // The failed install already advanced the scheduling state
                // past writesets that never reached the engine; resync before
                // surfacing the error, or the certifier (which only resends
                // versions above the reported `replica_version`) would never
                // deliver them again.
                self.resync_locked()?;
                Err(e)
            }
        }
    }

    /// Calls [`Proxy::refresh`] if the staleness bound has elapsed since the
    /// last certifier contact.  Returns the number of writesets applied, or
    /// zero if no refresh was due.
    ///
    /// # Errors
    ///
    /// As for [`Proxy::refresh`].
    pub fn maybe_refresh(&self) -> Result<usize> {
        let due = {
            let state = self.shared.state.lock();
            state.last_contact.elapsed() >= self.shared.config.staleness_bound
        };
        if due {
            self.refresh()
        } else {
            Ok(0)
        }
    }

    /// Soft recovery (Section 8.1): aborts nothing that is still running, but
    /// fast-forwards the ordered-commit bookkeeping and re-applies, serially,
    /// every writeset the replica is missing.  Used after an error in the
    /// concurrent Tashkent-API pipeline.
    ///
    /// # Errors
    ///
    /// Fails if the certifier is unavailable or the database crashed.
    pub fn resync(&self) -> Result<usize> {
        let _guard = self.shared.apply_lock.lock();
        self.resync_locked()
    }

    /// [`Proxy::resync`] body, for callers that already hold the apply lock
    /// (re-locking it would self-deadlock; `parking_lot::Mutex` is not
    /// reentrant).
    fn resync_locked(&self) -> Result<usize> {
        self.shared.config.metrics.emit(
            Event::new(Component::Replica, EventKind::Resync)
                .node(self.shared.config.replica.value() as usize),
        );
        {
            let mut state = self.shared.state.lock();
            state.stats.resyncs += 1;
            // Declare all handed-out order indices consumed so that future
            // ordered commits do not wait on indices burned by failures.
            self.shared.db.force_announce_counter(state.order_counter);
            // Scheduling restarts from what the database actually holds.
            state.scheduled_through = self.shared.db.version();
        }
        let since = self.shared.db.version();
        let remotes = self.shared.certifier.writesets_after(since);
        // Force-fill: a pipeline that grabs a fresh order index between the
        // reset above and this install must not turn recovery into a no-op,
        // so the install burns such indices instead of declining; their
        // owners abort and recover through this same resync path.
        Ok(self.apply_remotes_serial(&remotes, true)?.unwrap_or(0))
    }

    /// Test hook: hands out one order index without ever announcing it —
    /// the state a crashed or wounded ordered commit leaves behind.  Serial
    /// grouped installs must *decline* while such an index is outstanding
    /// (`refresh` returns without side effects) and `resync` must burn it
    /// and force the install through.  Hidden because nothing but the
    /// recovery-edge tests should ever create this state on purpose.
    #[doc(hidden)]
    pub fn debug_burn_order_index(&self) -> u64 {
        let mut state = self.shared.state.lock();
        state.order_counter += 1;
        state.order_counter
    }

    // ----- internals -----

    /// Wound active local transactions whose partial writesets conflict with
    /// an incoming remote writeset (eager pre-certification, Section 8.2).
    fn wound_conflicting_locals(&self, remote: &WriteSet, committing: Option<&TxHandle>) {
        if !self.shared.config.eager_precertification {
            return;
        }
        let committing_id = committing.map(TxHandle::id);
        let mut wounded = 0;
        for (tx_id, partial) in self.shared.db.active_update_writesets() {
            if Some(tx_id) == committing_id {
                continue;
            }
            if partial.conflicts_with(remote) {
                // Abort the conflicting local transaction outright: it holds
                // write locks the certified remote writeset needs, and it is
                // doomed to fail certification anyway because the remote
                // writeset committed after its snapshot.
                self.shared.db.abort_transaction(tx_id);
                wounded += 1;
            }
        }
        if wounded > 0 {
            self.shared.state.lock().stats.wounded_transactions += wounded;
        }
    }

    /// Serially applies a list of remote writesets (grouped into a single
    /// replica transaction), updating the scheduling state.  Used by Base,
    /// Tashkent-MW, refresh and resync.
    ///
    /// Returns `Ok(None)` — with no side effects — when the install was
    /// declined because ordered commits are outstanding (never happens with
    /// `force_fill`), otherwise `Ok(Some(n))` with the number of writesets
    /// applied.
    fn apply_remotes_serial(
        &self,
        remotes: &[RemoteWriteSet],
        force_fill: bool,
    ) -> Result<Option<usize>> {
        // Filter to versions not yet scheduled and record them.
        let (to_apply, target_version) = {
            let mut state = self.shared.state.lock();
            // With the ordered-commit API, a serial grouped install is only
            // safe while no handed-out order index is outstanding: an
            // in-flight ordered commit holds a version below anything this
            // batch would install, and letting it announce afterwards would
            // put row versions out of order.  Decline and let the caller
            // retry once the pipelines have drained — except on the resync
            // path (`force_fill`), which must make progress: there the
            // outstanding indices are burned, and their owners abort and
            // recover through that same resync.  (The counters are checked
            // under the same state lock that schedules pipelines, so no new
            // index can be handed out concurrently; for Base and Tashkent-MW
            // both counters stay zero and this never declines.)
            if self.shared.db.announce_counter() < state.order_counter {
                if force_fill {
                    self.shared.db.force_announce_counter(state.order_counter);
                } else {
                    return Ok(None);
                }
            }
            let base = state.scheduled_through;
            let to_apply: Vec<&RemoteWriteSet> = remotes
                .iter()
                .filter(|r| r.commit_version > base)
                .collect();
            let target = to_apply
                .last()
                .map_or(base, |r| r.commit_version);
            for remote in &to_apply {
                state.seen.record(remote.commit_version, &remote.writeset);
            }
            state.scheduled_through = target;
            // Gate the concurrent pipeline while the batch is applied: the
            // counter check above only holds at this instant, and a commit
            // scheduled after the state lock drops could announce a version
            // above `target` mid-install — a transaction beginning then
            // would read a snapshot *labelled* past the batch but missing
            // its content, and certify with the batch's conflicts hidden
            // (lost updates; this was an open ROADMAP item the fault
            // harness reproduced under plain TPC-B load).  The gate blocks
            // only the hand-out of new order indices; unlike the reverted
            // order-index reservation it never makes the install wait *in*
            // the announce chain, so the lock-vs-announce livelock cannot
            // form — conflicting local transactions that already hold row
            // locks are wounded by the install, exactly as on the serial
            // path.
            if !to_apply.is_empty() {
                state.grouped_install_active = true;
            }
            (
                to_apply.iter().map(|r| (*r).clone()).collect::<Vec<_>>(),
                target,
            )
        };
        if to_apply.is_empty() {
            return Ok(Some(0));
        }
        let metrics = &self.shared.config.metrics;
        metrics.gauge_set(GaugeId::RemoteApplyBacklog, to_apply.len() as i64);
        let merged = WriteSet::merged(to_apply.iter().map(|r| &*r.writeset));
        self.wound_conflicting_locals(&merged, None);
        let install_started = metrics.is_enabled().then(Instant::now);
        let applied = self.shared.db.apply_writeset(&merged, target_version);
        if let (Some(started), Ok(_)) = (install_started, &applied) {
            metrics.record_stage(Stage::Install, started.elapsed());
        }
        let mut state = self.shared.state.lock();
        state.grouped_install_active = false;
        applied?;
        metrics.add(CounterId::RemoteInstalls, to_apply.len() as u64);
        metrics.emit(
            Event::new(Component::Replica, EventKind::InstallRemote)
                .version(target_version.0)
                .node(self.shared.config.replica.value() as usize),
        );
        state.stats.remote_writesets_applied += to_apply.len() as u64;
        state.stats.remote_apply_transactions += 1;
        Ok(Some(to_apply.len()))
    }

    /// The serial commit pipeline used by Base and Tashkent-MW
    /// (steps [C4] and [C5], serialised).
    fn commit_serial(
        &self,
        tx: &TxHandle,
        decision_commit: bool,
        commit_version: Option<Version>,
        remotes: &[RemoteWriteSet],
        writeset: &WriteSet,
    ) -> Result<CommitOutcome> {
        let _guard = self.shared.apply_lock.lock();
        // An aborted local transaction is rolled back before the remote
        // writesets are applied: it may hold write locks on rows the remote
        // writesets are about to modify.
        if !decision_commit {
            tx.abort();
        }
        // [C4] apply the grouped remote writesets in their own transaction.
        match self.apply_remotes_serial(remotes, false) {
            Ok(Some(_)) => {}
            // Serial-pipeline systems never hand out order indices (only
            // `commit_concurrent` and ordered grouped installs increment
            // `order_counter`), so a decline cannot happen here.  Failing
            // loudly beats silently skipping the batch: [C5] below advances
            // `scheduled_through`, after which the certifier would never
            // resend these writesets.
            Ok(None) => unreachable!("serial grouped install declined on a serial-pipeline system"),
            Err(_) => {
                // The failed install advanced the scheduling state past
                // writesets that never reached the engine; resync re-applies
                // them — and, if this transaction was certified, its own
                // logged writeset too, in which case the already-applied
                // check below routes around the local commit.
                self.resync_locked()?;
            }
        }
        // [C5] finalise the local commit.
        if !decision_commit {
            let mut state = self.shared.state.lock();
            state.stats.certifier_aborts += 1;
            return Err(Error::CertificationFailed {
                start_version: tx.start_version(),
                detail: "certifier aborted the transaction".into(),
            });
        }
        let version = commit_version.expect("commit decision carries a version");
        let already_applied = {
            let mut state = self.shared.state.lock();
            if version <= state.scheduled_through {
                // Another client of this replica already scheduled this
                // version through the remote-writeset path.
                true
            } else {
                state.seen.record(version, writeset);
                state.scheduled_through = version;
                false
            }
        };
        if already_applied || version <= self.shared.db.version() {
            // The effects of this transaction already reached the replica via
            // the remote-writeset path (possible when another client of the
            // same replica scheduled it first); committing again would apply
            // them twice.
            tx.abort();
        } else if let Err(e) = tx.commit_at(version) {
            // The local transaction may have been aborted under us by eager
            // pre-certification (a certified remote writeset needed one of
            // its locks).  Its certified effects are recovered by a resync;
            // the client sees a retryable conflict.  `commit_serial` already
            // holds the apply lock, so use the lock-free body — calling
            // `resync()` here would re-lock `apply_lock` and self-deadlock.
            self.resync_locked()?;
            let mut state = self.shared.state.lock();
            state.stats.engine_aborts += 1;
            drop(state);
            return Err(match e {
                Error::InvalidTransactionState { tx, .. } => Error::WriteConflict {
                    tx,
                    detail: "transaction aborted by a conflicting remote writeset".into(),
                },
                other => other,
            });
        }
        self.shared.state.lock().stats.update_commits += 1;
        Ok(CommitOutcome {
            commit_version: Some(version),
            read_only: false,
        })
    }

    /// Common epilogue of the Tashkent-API pipeline: records the final
    /// outcome of an update transaction whose remote writesets have been
    /// installed (directly or through a recovery resync).
    fn finish_update_commit(
        &self,
        tx: &TxHandle,
        decision_commit: bool,
        commit_version: Option<Version>,
    ) -> Result<CommitOutcome> {
        if !decision_commit {
            self.shared.state.lock().stats.certifier_aborts += 1;
            return Err(Error::CertificationFailed {
                start_version: tx.start_version(),
                detail: "certifier aborted the transaction".into(),
            });
        }
        self.shared.state.lock().stats.update_commits += 1;
        Ok(CommitOutcome {
            commit_version,
            read_only: false,
        })
    }

    /// The concurrent commit pipeline of Tashkent-API: remote writesets and
    /// the local commit are submitted together; the database groups their
    /// commit records and announces them in global order.
    fn commit_concurrent(
        &self,
        tx: &TxHandle,
        decision_commit: bool,
        commit_version: Option<Version>,
        remotes: &[RemoteWriteSet],
        writeset: &WriteSet,
    ) -> Result<CommitOutcome> {
        // An aborted local transaction is rolled back up front: it may hold
        // write locks on rows the remote writesets are about to modify.
        if !decision_commit {
            tx.abort();
        }
        // A replica that has fallen far behind must not stream its whole
        // backlog through the thread-per-writeset concurrent pipeline: every
        // artificial-conflict barrier costs a join, any stalled predecessor
        // cascades down the announce order, and a failure restarts the whole
        // (still-growing) batch.  Catch up with the serial grouped path first
        // and keep the concurrent pipeline for the small steady-state tail.
        // This is deliberately NOT `resync()`: nothing failed, so the order
        // counters must not be force-advanced (that would abort every
        // in-flight ordered commit of other clients) and the scheduling
        // state must only move forward.  `apply_remotes_serial` declines
        // (with no side effects) while ordered commits are outstanding — a
        // grouped install that jumped over their versions would either
        // misorder row chains or strand their writesets.
        const CONCURRENT_WINDOW: usize = 64;
        let mut remotes = remotes;
        let mut defer_local_commit = false;
        if remotes.len() > CONCURRENT_WINDOW {
            let catch_up = {
                let _guard = self.shared.apply_lock.lock();
                self.apply_remotes_serial(remotes, false)
            };
            match catch_up {
                Ok(Some(_)) => {}
                Ok(None) => {
                    // Declined: ordered commits are in flight.  Schedule only
                    // a bounded prefix through the pipeline this round —
                    // streaming the whole backlog serialises on artificial
                    // conflict barriers, and under load the backlog grows
                    // faster than the barrier-bound pipeline drains it.  The
                    // local commit is deferred to the remote path: its
                    // writeset is already in the certifier log, so a later
                    // fetch delivers it *after* the tail it must not jump
                    // over.  (Scheduling it now would advance
                    // `scheduled_through` past the unscheduled tail, which
                    // the certifier — resending only versions above the
                    // reported `replica_version` — would then never deliver.)
                    remotes = &remotes[..CONCURRENT_WINDOW];
                    defer_local_commit = decision_commit;
                }
                Err(_) => {
                    // The failed install advanced the scheduling state past
                    // writesets that never reached the engine; recover
                    // exactly like the pipeline-failure path below.  The
                    // local transaction aborts, but if it was certified its
                    // writeset is already in the certifier log, so the
                    // resync re-applies its effects through the remote path
                    // — report it committed.
                    tx.abort();
                    self.resync()?;
                    return self.finish_update_commit(tx, decision_commit, commit_version);
                }
            }
        }
        // Schedule: assign dense order indices in global version order to
        // every not-yet-scheduled remote writeset plus (if certified) the
        // local commit.
        struct ScheduledRemote {
            remote: RemoteWriteSet,
            order_index: u64,
            needs_barrier: bool,
        }
        let (scheduled, own_slot, base_version) = loop {
            let mut state = self.shared.state.lock();
            // A serial grouped install is mid-flight: wait it out rather
            // than hand out an order index whose announce could expose a
            // snapshot above the batch before the batch is readable (see
            // `apply_remotes_serial`).  Holding no proxy locks here, and the
            // install wounds any conflicting row-lock holder, so the wait is
            // bounded by one grouped application.
            if state.grouped_install_active {
                drop(state);
                thread::sleep(Duration::from_micros(10));
                continue;
            }
            let base = state.scheduled_through;
            let mut scheduled = Vec::new();
            for remote in remotes {
                if remote.commit_version <= base {
                    continue;
                }
                state.order_counter += 1;
                // An artificial conflict exists when the remote writeset is
                // NOT conflict-free back to the replica's scheduled version:
                // it must wait for the conflicting version to commit first.
                let needs_barrier = remote.conflict_free_to > base;
                state.seen.record(remote.commit_version, &remote.writeset);
                state.scheduled_through = remote.commit_version;
                scheduled.push(ScheduledRemote {
                    remote: remote.clone(),
                    order_index: state.order_counter,
                    needs_barrier,
                });
            }
            let own_slot = if decision_commit && !defer_local_commit {
                let version = commit_version.expect("commit decision carries a version");
                if version <= state.scheduled_through {
                    // Already covered by the remote path (another client of
                    // this replica scheduled it).
                    None
                } else {
                    state.order_counter += 1;
                    state.seen.record(version, writeset);
                    state.scheduled_through = version;
                    Some((state.order_counter, version))
                }
            } else {
                None
            };
            break (scheduled, own_slot, base);
        };
        let _ = base_version;

        // Submit remote writesets concurrently, inserting a barrier before
        // any writeset with an artificial conflict.
        fn join_one(
            handle: thread::JoinHandle<Result<Version>>,
            failures: &mut Vec<Error>,
            apply_transactions: &mut u64,
        ) {
            match handle.join() {
                Ok(Ok(_)) => *apply_transactions += 1,
                Ok(Err(e)) => failures.push(e),
                Err(_) => failures.push(Error::Protocol("apply thread panicked".into())),
            }
        }
        fn drain_joins(
            handles: &mut Vec<thread::JoinHandle<Result<Version>>>,
            failures: &mut Vec<Error>,
            apply_transactions: &mut u64,
        ) {
            for handle in handles.drain(..) {
                join_one(handle, failures, apply_transactions);
            }
        }
        let mut handles: Vec<thread::JoinHandle<Result<Version>>> = Vec::new();
        let mut failures: Vec<Error> = Vec::new();
        let mut applied = 0u64;
        let mut apply_transactions = 0u64;
        let mut barriers = 0u64;
        for item in scheduled {
            if item.needs_barrier && !handles.is_empty() {
                barriers += 1;
                drain_joins(&mut handles, &mut failures, &mut apply_transactions);
            } else if handles.len() >= CONCURRENT_WINDOW {
                // Bound the live apply threads even when the serial catch-up
                // declined and the whole backlog streams through this
                // pipeline: without a cap a rejoining replica could spawn
                // one OS thread per backlog entry.  Join only the oldest —
                // under ordered announces it finishes first — so the window
                // stays full instead of draining to empty every 64 items.
                join_one(handles.remove(0), &mut failures, &mut apply_transactions);
            }
            self.wound_conflicting_locals(&item.remote.writeset, Some(tx));
            let db = self.shared.db.clone();
            let remote = item.remote;
            let order_index = item.order_index;
            let metrics = Arc::clone(&self.shared.config.metrics);
            let node = self.shared.config.replica.value() as usize;
            applied += 1;
            handles.push(thread::spawn(move || {
                let install_started = metrics.is_enabled().then(Instant::now);
                let result =
                    db.apply_writeset_ordered(&remote.writeset, remote.commit_version, order_index);
                if let (Some(started), Ok(_)) = (install_started, &result) {
                    metrics.record_stage(Stage::Install, started.elapsed());
                    metrics.incr(CounterId::RemoteInstalls);
                    metrics.emit(
                        Event::new(Component::Replica, EventKind::InstallRemote)
                            .version(remote.commit_version.0)
                            .node(node),
                    );
                }
                result
            }));
        }

        // Submit the local commit (or abort) concurrently with the remotes.
        let outcome = if !decision_commit {
            None
        } else if let Some((order_index, version)) = own_slot {
            match tx.commit_ordered(order_index, version) {
                Ok(v) => Some(v),
                Err(e) => {
                    failures.push(e);
                    None
                }
            }
        } else {
            // Effects already applied through the remote path, or (in a
            // bounded catch-up round) deferred to a later remote fetch.
            tx.abort();
            commit_version
        };

        drain_joins(&mut handles, &mut failures, &mut apply_transactions);
        {
            let mut state = self.shared.state.lock();
            state.stats.remote_writesets_applied += applied;
            state.stats.remote_apply_transactions += apply_transactions;
            state.stats.artificial_conflict_barriers += barriers;
        }

        if !failures.is_empty() {
            // Soft recovery: bring the replica back in sync serially.  The
            // local commit's effects are then applied via the resync if they
            // were certified, so the epilogue still reports success.
            self.resync()?;
            return self.finish_update_commit(tx, decision_commit, commit_version);
        }

        self.finish_update_commit(tx, decision_commit, outcome.or(commit_version))
    }

    fn commit_transaction(
        &self,
        ptx: &ProxyTransaction,
        timer: &mut Option<TraceTimer>,
    ) -> Result<CommitOutcome> {
        let metrics = &self.shared.config.metrics;
        // The execute stage spans BEGIN to the client's COMMIT call.
        if let Some(t) = timer.as_mut() {
            metrics.record_stage(Stage::Execute, t.mark(Stage::Execute));
        }
        // [C2] extract the writeset.
        let writeset = ptx.tx.writeset();
        if writeset.is_empty() {
            // Read-only transactions commit immediately.
            ptx.tx.commit()?;
            self.shared.state.lock().stats.read_only_commits += 1;
            return Ok(CommitOutcome {
                commit_version: None,
                read_only: true,
            });
        }

        // Local certification (Section 6.2): check against the writesets this
        // proxy has already seen and, if clean, advance the effective start
        // version to reduce work at the certifier.
        let mut effective_start = ptx.label_version.max(ptx.tx.start_version());
        let replica_version = {
            let mut state = self.shared.state.lock();
            if self.shared.config.local_certification {
                if let Some(conflict) = state.seen.conflict_after(&writeset, effective_start) {
                    state.stats.local_certification_aborts += 1;
                    drop(state);
                    ptx.tx.abort();
                    return Err(Error::CertificationFailed {
                        start_version: effective_start,
                        detail: format!("local certification found a conflict at {conflict}"),
                    });
                }
                effective_start = effective_start.max(state.seen.latest_version());
            }
            state.scheduled_through
        };

        // Certification request to the certifier.
        let request = CertificationRequest {
            replica: self.shared.config.replica,
            start_version: effective_start,
            writeset: writeset.clone(),
            replica_version,
        };
        let response = self.shared.certifier.certify(&request)?;
        self.shared.state.lock().last_contact = Instant::now();
        if let Some(t) = timer.as_mut() {
            // The certify round-trip; a commit response also implies the
            // writeset is durable at the certifier, so the durable mark
            // lands at the same observable instant.
            metrics.record_stage(Stage::Certify, t.mark(Stage::Certify));
            t.mark(Stage::Durable);
        }
        metrics.gauge_set(
            GaugeId::RemoteApplyBacklog,
            response.remote_writesets.len() as i64,
        );
        let decision_commit = matches!(response.decision, CertificationDecision::Commit);

        // [C4] / [C5]: apply remote writesets and finalise the local commit.
        let result = if self.shared.config.system.ordered_commit_api() {
            self.commit_concurrent(
                &ptx.tx,
                decision_commit,
                response.commit_version,
                &response.remote_writesets,
                &writeset,
            )
        } else {
            self.commit_serial(
                &ptx.tx,
                decision_commit,
                response.commit_version,
                &response.remote_writesets,
                &writeset,
            )
        };
        if let Some(t) = timer.as_mut() {
            // The whole apply-remotes / announce / local-commit phase sits
            // between the durable and announce marks; the install mark is
            // the instant the commit finished.  (The announce and install
            // stage *histograms* are fed with finer-grained timings by the
            // engine and the apply paths respectively.)
            t.mark(Stage::Announce);
            t.mark(Stage::Install);
        }
        result
    }

    fn record_engine_abort(&self) {
        self.shared.state.lock().stats.engine_aborts += 1;
    }
}

/// A client transaction running through the proxy (the JDBC-like interface of
/// Section 6.2).
pub struct ProxyTransaction {
    proxy: Proxy,
    tx: TxHandle,
    /// The replica version the proxy labelled this transaction with at BEGIN.
    label_version: Version,
    /// Commit-path trace timer; present only while metrics are enabled.
    timer: Option<TraceTimer>,
}

impl std::fmt::Debug for ProxyTransaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyTransaction")
            .field("tx", &self.tx.id())
            .field("label_version", &self.label_version)
            .finish()
    }
}

impl ProxyTransaction {
    /// The snapshot version the proxy labelled this transaction with.
    #[must_use]
    pub fn start_version(&self) -> Version {
        self.label_version
    }

    /// Reads a row.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (crashed database, finished transaction).
    pub fn read(&self, table: TableId, key: impl Into<RowKey>) -> Result<Option<Row>> {
        self.tx.read(table, key)
    }

    /// Scans a table.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn scan(&self, table: TableId) -> Result<Vec<(RowKey, Row)>> {
        self.tx.scan(table)
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Propagates engine conflicts / deadlocks; the caller should abort and
    /// retry the transaction on such errors.
    pub fn insert(
        &self,
        table: TableId,
        key: impl Into<RowKey>,
        row: Vec<(String, Value)>,
    ) -> Result<()> {
        self.tx.insert(table, key, row).inspect_err(|_| {
            self.proxy.record_engine_abort();
        })
    }

    /// Updates columns of a row.
    ///
    /// # Errors
    ///
    /// Propagates engine conflicts / deadlocks.
    pub fn update(
        &self,
        table: TableId,
        key: impl Into<RowKey>,
        columns: Vec<(String, Value)>,
    ) -> Result<()> {
        self.tx.update(table, key, columns).inspect_err(|_| {
            self.proxy.record_engine_abort();
        })
    }

    /// Deletes a row.
    ///
    /// # Errors
    ///
    /// Propagates engine conflicts / deadlocks.
    pub fn delete(&self, table: TableId, key: impl Into<RowKey>) -> Result<()> {
        self.tx.delete(table, key).inspect_err(|_| {
            self.proxy.record_engine_abort();
        })
    }

    /// The transaction's writeset captured so far.
    #[must_use]
    pub fn writeset(&self) -> WriteSet {
        self.tx.writeset()
    }

    /// Commits the transaction through the replication protocol (the proxy
    /// intercepting `COMMIT`).
    ///
    /// # Errors
    ///
    /// * [`Error::CertificationFailed`] — a write-write conflict was detected
    ///   locally or at the certifier; the transaction was aborted and can be
    ///   retried.
    /// * [`Error::Unavailable`] — the certifier majority or the database is
    ///   down.
    /// * Engine errors from the commit itself.
    pub fn commit(mut self) -> Result<CommitOutcome> {
        let mut timer = self.timer.take();
        let proxy = self.proxy.clone();
        let result = proxy.commit_transaction(&self, &mut timer);
        let metrics = &proxy.shared.config.metrics;
        let node = proxy.shared.config.replica.value() as usize;
        match &result {
            Ok(outcome) => {
                metrics.incr(CounterId::TxCommitted);
                metrics.emit(
                    Event::new(Component::Proxy, EventKind::TxCommit)
                        .tx(self.tx.id().0)
                        .version(outcome.commit_version.map_or(0, |v| v.0))
                        .node(node),
                );
            }
            Err(_) => {
                metrics.incr(CounterId::TxAborted);
                metrics.emit(
                    Event::new(Component::Proxy, EventKind::TxAbort)
                        .tx(self.tx.id().0)
                        .node(node),
                );
            }
        }
        if let Some(timer) = timer {
            metrics.record_trace(timer.finish());
        }
        result
    }

    /// Aborts the transaction.
    pub fn abort(self) {
        let metrics = &self.proxy.shared.config.metrics;
        metrics.incr(CounterId::TxAborted);
        metrics.emit(
            Event::new(Component::Proxy, EventKind::TxAbort)
                .tx(self.tx.id().0)
                .node(self.proxy.shared.config.replica.value() as usize),
        );
        self.tx.abort();
        self.proxy.record_engine_abort();
    }
}
