//! The transparent replication proxy.
//!
//! A proxy sits in front of each database replica and intercepts database
//! requests: it appears as the database to clients and as a client to the
//! database (Section 4.1).  The proxy tracks the replica's version, keeps a
//! small amount of state per active transaction, invokes certification at
//! commit time, applies the remote writesets returned by the certifier and
//! finally commits or aborts the local transaction — following one of three
//! pipelines:
//!
//! * **Base** — remote writesets and the local commit are submitted serially;
//!   the database performs a synchronous commit-record write for each, so two
//!   fsyncs sit in the critical path of every local update transaction.
//! * **Tashkent-MW** — the same serial pipeline, but the replica runs with
//!   synchronous writes disabled (durability lives in the certifier log), so
//!   the serial commits are fast in-memory operations.
//! * **Tashkent-API** — remote writesets and the local commit are submitted
//!   *concurrently* using the extended `COMMIT <seq>` API; the database
//!   groups their commit records into a single fsync while announcing them in
//!   global order.  Remote writesets that would create an "artificial"
//!   conflict (Section 5.2.1) are serialised behind the conflicting version.
//!
//! The proxy also implements the optimisations of Sections 6.2 and 8.2:
//! local certification, eager pre-certification (deadlock avoidance by
//! wounding conflicting local transactions), bounded staleness refresh, and
//! the soft-recovery / replica-recovery procedures of Sections 7 and 8.
//!
//! All pipelines talk to the certifier through the [`fanout::CertifierHandle`],
//! which hides whether certification is served by the single certifier of
//! the paper or by the sharded certifier (per-shard streams merged back into
//! one global version order on this side of the wire).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod proxy;
pub mod recovery;
pub mod seen;

pub use fanout::{CertifierHandle, CertifierService};
pub use proxy::{CommitOutcome, Proxy, ProxyConfig, ProxyStats, ProxyTransaction};
pub use recovery::{catch_up, recover_base_or_api_replica, recover_mw_replica};
pub use seen::SeenWriteSets;
