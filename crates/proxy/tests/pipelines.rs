//! Integration tests of the three proxy commit pipelines against a shared
//! certifier: two replicas exchange updates, conflicts are detected, and the
//! replicas converge to the same state in the same global order.

use std::sync::Arc;

use tashkent_certifier::{Certifier, CertifierConfig};
use tashkent_common::{Error, ReplicaId, SystemKind, Value, Version};
use tashkent_proxy::{Proxy, ProxyConfig};
use tashkent_storage::{Database, EngineConfig};

fn make_replica(system: SystemKind, id: u32, certifier: &Arc<Certifier>) -> Proxy {
    let config = EngineConfig::with_sync_mode(match system {
        SystemKind::TashkentMw => tashkent_common::SyncMode::Off,
        _ => tashkent_common::SyncMode::Durable,
    });
    let db = Database::new(config);
    db.create_table("accounts", &["balance"]);
    Proxy::new(
        ProxyConfig::new(system, ReplicaId(id)),
        db,
        Arc::clone(certifier),
    )
}

fn deposit(proxy: &Proxy, key: i64, amount: i64) -> Result<Option<Version>, Error> {
    let table = proxy.database().table_id("accounts").unwrap();
    let tx = proxy.begin();
    let balance = tx
        .read(table, key)?
        .and_then(|row| row.get("balance").and_then(Value::as_int))
        .unwrap_or(0);
    tx.insert(
        table,
        key,
        vec![("balance".into(), Value::Int(balance + amount))],
    )?;
    tx.commit().map(|outcome| outcome.commit_version)
}

fn balance(proxy: &Proxy, key: i64) -> i64 {
    let table = proxy.database().table_id("accounts").unwrap();
    proxy
        .database()
        .read_latest(table, key)
        .and_then(|row| row.get("balance").and_then(Value::as_int))
        .unwrap_or(0)
}

fn run_two_replica_exchange(system: SystemKind) {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(system, 0, &certifier);
    let b = make_replica(system, 1, &certifier);

    // Replica A commits to key 1, replica B to key 2 — no conflicts.
    deposit(&a, 1, 100).unwrap();
    deposit(&b, 2, 200).unwrap();
    // Each replica learns of the other's update when it next commits.
    deposit(&a, 1, 1).unwrap();
    deposit(&b, 2, 2).unwrap();
    // Bring both fully up to date.
    a.refresh().unwrap();
    b.refresh().unwrap();

    assert_eq!(certifier.system_version(), Version(4));
    assert_eq!(a.replica_version(), Version(4));
    assert_eq!(b.replica_version(), Version(4));
    for proxy in [&a, &b] {
        assert_eq!(balance(proxy, 1), 101);
        assert_eq!(balance(proxy, 2), 202);
        assert_eq!(proxy.database().version(), Version(4));
    }
}

#[test]
fn base_replicas_exchange_updates() {
    run_two_replica_exchange(SystemKind::Base);
}

#[test]
fn tashkent_mw_replicas_exchange_updates() {
    run_two_replica_exchange(SystemKind::TashkentMw);
}

#[test]
fn tashkent_api_replicas_exchange_updates() {
    run_two_replica_exchange(SystemKind::TashkentApi);
}

#[test]
fn conflicting_updates_on_different_replicas_abort_one() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentMw, 0, &certifier);
    let b = make_replica(SystemKind::TashkentMw, 1, &certifier);
    let ta = a.database().table_id("accounts").unwrap();
    let tb = b.database().table_id("accounts").unwrap();

    // Both replicas start transactions that write the same key concurrently.
    let txa = a.begin();
    txa.insert(ta, 7, vec![("balance".into(), Value::Int(1))])
        .unwrap();
    let txb = b.begin();
    txb.insert(tb, 7, vec![("balance".into(), Value::Int(2))])
        .unwrap();
    // A commits first and wins; B's certification must fail.
    txa.commit().unwrap();
    let result = txb.commit();
    assert!(matches!(result, Err(Error::CertificationFailed { .. })));
    // After refreshing, B holds A's value.
    b.refresh().unwrap();
    assert_eq!(balance(&b, 7), 1);
    let stats = certifier.stats();
    assert_eq!(stats.commits, 1);
    assert_eq!(stats.conflict_aborts, 1);
}

#[test]
fn local_certification_aborts_without_contacting_certifier() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentMw, 0, &certifier);
    let b = make_replica(SystemKind::TashkentMw, 1, &certifier);
    let ta = a.database().table_id("accounts").unwrap();

    // A starts a transaction writing key 3 while B commits key 3 first; A
    // then learns about it through a refresh, so local certification can
    // reject A's commit without a certifier round trip.
    let txa = a.begin();
    txa.insert(ta, 3, vec![("balance".into(), Value::Int(1))])
        .unwrap();
    deposit(&b, 3, 50).unwrap();
    a.refresh().unwrap();
    let requests_before = certifier.stats().requests;
    let result = txa.commit();
    assert!(matches!(result, Err(Error::CertificationFailed { .. })));
    assert_eq!(certifier.stats().requests, requests_before);
    assert_eq!(a.stats().local_certification_aborts, 1);
}

#[test]
fn read_only_transactions_commit_without_certification() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::Base, 0, &certifier);
    let table = a.database().table_id("accounts").unwrap();
    deposit(&a, 1, 10).unwrap();
    let requests = certifier.stats().requests;
    let tx = a.begin();
    let row = tx.read(table, 1).unwrap().unwrap();
    assert_eq!(row.get("balance"), Some(&Value::Int(10)));
    let outcome = tx.commit().unwrap();
    assert!(outcome.read_only);
    assert_eq!(certifier.stats().requests, requests);
    assert_eq!(a.stats().read_only_commits, 1);
}

#[test]
fn tashkent_mw_replicas_never_fsync_but_certifier_does() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentMw, 0, &certifier);
    for key in 0..20 {
        deposit(&a, key, 5).unwrap();
    }
    assert_eq!(a.database().stats().wal.fsyncs, 0);
    assert!(certifier.stats().log.leader_fsyncs > 0);
}

#[test]
fn base_replicas_fsync_for_every_commit_and_remote_group() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::Base, 0, &certifier);
    let b = make_replica(SystemKind::Base, 1, &certifier);
    // Interleave commits so each replica also has remote writesets to apply.
    for key in 0..5 {
        deposit(&a, key, 1).unwrap();
        deposit(&b, 100 + key, 1).unwrap();
    }
    let fsyncs_a = a.database().stats().wal.fsyncs;
    // Replica A performed 5 local commits plus remote-group applications:
    // every one of them required its own fsync (serial commits).
    assert!(fsyncs_a >= 9, "expected >= 9 fsyncs, measured {fsyncs_a}");
}

#[test]
fn concurrent_clients_on_one_replica_agree_with_the_certifier() {
    for system in [SystemKind::Base, SystemKind::TashkentMw, SystemKind::TashkentApi] {
        let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
        let proxy = make_replica(system, 0, &certifier);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let proxy = proxy.clone();
                std::thread::spawn(move || {
                    let mut committed = 0;
                    for i in 0..10 {
                        // Distinct keys per thread: no conflicts expected.
                        if deposit(&proxy, t * 1000 + i, 1).is_ok() {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        let committed: i64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(committed, 40, "system {system}");
        proxy.refresh().unwrap();
        assert_eq!(
            proxy.database().version(),
            certifier.system_version(),
            "system {system}"
        );
        assert_eq!(certifier.system_version(), Version(40), "system {system}");
    }
}

#[test]
fn tashkent_api_serialises_artificial_conflicts() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let api = make_replica(SystemKind::TashkentApi, 0, &certifier);
    let remote = make_replica(SystemKind::TashkentApi, 1, &certifier);

    // The remote replica commits two transactions that write the same key in
    // sequence (no global conflict because the second starts after the
    // first), plus one unrelated transaction.
    deposit(&remote, 55, 1).unwrap(); // v1
    deposit(&remote, 77, 1).unwrap(); // v2
    deposit(&remote, 55, 1).unwrap(); // v3 — artificially conflicts with v1 at other replicas.

    // When the API replica commits its own transaction it receives all three
    // as remote writesets; v3 must be serialised behind v1.
    deposit(&api, 99, 1).unwrap();
    assert_eq!(api.database().version(), certifier.system_version());
    assert_eq!(balance(&api, 55), 2);
    assert_eq!(balance(&api, 77), 1);
    assert!(api.stats().artificial_conflict_barriers >= 1);
}

#[test]
fn eager_precertification_wounds_conflicting_local_transactions() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentMw, 0, &certifier);
    let b = make_replica(SystemKind::TashkentMw, 1, &certifier);
    let ta = a.database().table_id("accounts").unwrap();

    // A local transaction on A holds the write lock on key 9 but has not yet
    // tried to commit.
    let txa = a.begin();
    txa.insert(ta, 9, vec![("balance".into(), Value::Int(1))])
        .unwrap();
    // B commits a transaction on the same key; when A refreshes, the remote
    // writeset must not deadlock against the local holder: the local
    // transaction gets wounded instead.
    deposit(&b, 9, 42).unwrap();
    a.refresh().unwrap();
    assert_eq!(balance(&a, 9), 42);
    assert!(a.stats().wounded_transactions >= 1);
    // The wounded transaction cannot commit.
    let result = txa.commit();
    assert!(result.is_err());
}

#[test]
fn certifier_outage_surfaces_as_unavailable() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::Base, 0, &certifier);
    deposit(&a, 1, 1).unwrap();
    certifier.crash_node(tashkent_certifier::CertifierNodeId(0));
    certifier.crash_node(tashkent_certifier::CertifierNodeId(1));
    let result = deposit(&a, 2, 1);
    assert!(matches!(result, Err(Error::Unavailable(_))));
    // Read-only transactions still work: they never contact the certifier.
    let table = a.database().table_id("accounts").unwrap();
    let tx = a.begin();
    assert!(tx.read(table, 1).unwrap().is_some());
    tx.commit().unwrap();
}

/// A declined serial grouped install is a typed `Ok(None)` with **no side
/// effects**: `refresh` on a replica with an outstanding order index must
/// leave every piece of proxy and engine state untouched (PR 1's fix,
/// previously pinned only by stress runs).
#[test]
fn declined_grouped_install_has_no_side_effects() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentApi, 0, &certifier);
    let b = make_replica(SystemKind::TashkentApi, 1, &certifier);

    // Replica A commits a backlog replica B has not seen.
    for key in 1..=5 {
        deposit(&a, key, 10 * key).unwrap();
    }
    // Simulate an in-flight ordered commit on B that will never announce
    // (the state a crash or wound leaves behind).
    b.debug_burn_order_index();

    let version_before = b.replica_version();
    let db_version_before = b.database().version();
    let stats_before = b.stats();
    // The install must decline: ordered commits are (apparently)
    // outstanding, and a grouped install jumping over them would misorder
    // row chains.
    assert_eq!(b.refresh().unwrap(), 0);
    assert_eq!(b.replica_version(), version_before, "no scheduling advance");
    assert_eq!(b.database().version(), db_version_before, "no engine writes");
    let stats_after = b.stats();
    assert_eq!(stats_after.refreshes, stats_before.refreshes, "not counted as a refresh");
    assert_eq!(stats_after.remote_writesets_applied, stats_before.remote_writesets_applied);
}

/// `resync` force-fills outstanding order indices inside the install's
/// critical section: recovery makes progress even when an index was burned
/// by a failed pipeline, and the replica is fully usable afterwards.
#[test]
fn resync_force_fills_burned_order_indices() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentApi, 0, &certifier);
    let b = make_replica(SystemKind::TashkentApi, 1, &certifier);

    for key in 1..=5 {
        deposit(&a, key, 10 * key).unwrap();
    }
    b.debug_burn_order_index();
    assert_eq!(b.refresh().unwrap(), 0, "declined while the index is outstanding");

    // Soft recovery burns the stale index and applies the whole backlog.
    let applied = b.resync().unwrap();
    assert_eq!(applied, 5);
    assert_eq!(b.replica_version(), Version(5));
    assert_eq!(b.database().version(), Version(5));
    for key in 1..=5 {
        assert_eq!(balance(&b, key), 10 * key, "key {key}");
    }
    assert_eq!(b.stats().resyncs, 1);

    // The ordered-commit bookkeeping is consistent again: both replicas
    // keep committing and converging.
    deposit(&b, 6, 60).unwrap();
    deposit(&a, 7, 70).unwrap();
    b.refresh().unwrap();
    a.refresh().unwrap();
    assert_eq!(a.replica_version(), Version(7));
    assert_eq!(b.replica_version(), Version(7));
    assert_eq!(balance(&a, 6), 60);
    assert_eq!(balance(&b, 7), 70);
}

/// While an index is outstanding the decline path must also hold for the
/// staleness-driven `maybe_refresh`, and `last_contact` must keep ticking
/// so the next refresh retries promptly instead of believing the replica
/// is fresh.
#[test]
fn declined_refresh_keeps_the_staleness_clock_running() {
    let certifier = Arc::new(Certifier::new(CertifierConfig::default()));
    let a = make_replica(SystemKind::TashkentApi, 0, &certifier);
    let b = make_replica(SystemKind::TashkentApi, 1, &certifier);

    deposit(&a, 1, 100).unwrap();
    b.debug_burn_order_index();
    assert_eq!(b.refresh().unwrap(), 0);
    // A second refresh still declines (the decline did not update
    // last_contact, so the replica still knows it is stale), and resync
    // still recovers.
    assert_eq!(b.refresh().unwrap(), 0);
    assert_eq!(b.resync().unwrap(), 1);
    assert_eq!(balance(&b, 1), 100);
}
