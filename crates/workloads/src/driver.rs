//! A closed-loop client driver for running a workload against a real
//! in-process cluster for a fixed wall-clock duration.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tashkent::Cluster;
use tashkent_common::{ClientId, LatencyHistogram};

use crate::generators::Workload;

/// Configuration of one driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Closed-loop clients per replica.
    pub clients_per_replica: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Random seed (each client derives its own stream from it).
    pub seed: u64,
    /// Keep clients alive across component outages: on a non-retryable
    /// error (crashed replica, lost certifier majority) the client backs
    /// off briefly and retries instead of stopping for good.  Fault-
    /// injection harnesses set this so load resumes when the component
    /// recovers; performance runs leave it off so an unexpected fault is
    /// loud.
    pub resilient: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            clients_per_replica: 2,
            duration: Duration::from_millis(300),
            seed: 0x7A5B_2001,
            resilient: false,
        }
    }
}

/// Result of a driver run.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// Committed transactions (updates + read-only).
    pub committed: u64,
    /// Committed read-only transactions.
    pub read_only: u64,
    /// Aborted transactions (retryable conflicts).
    pub aborted: u64,
    /// Transactions that failed on an unavailable component while
    /// [`DriverConfig::resilient`] was set (the client backed off and
    /// retried).
    pub outage_errors: u64,
    /// Total wall-clock duration, from the first client starting to the
    /// last client joined: the measurement window *plus* the shutdown tail.
    pub elapsed: Duration,
    /// The shutdown tail alone: how long after the stop signal the last
    /// client took to finish its in-flight transaction and exit.  Recorded
    /// separately from the measurement window because Tashkent-API drains
    /// in-flight ordered commits slowly (see ROADMAP, "shutdown tail").
    pub drain: Duration,
    /// Response-time distribution of committed transactions.
    pub latency: LatencyHistogram,
}

impl DriverReport {
    /// Committed transactions per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }

    /// The shared column header matching [`DriverReport::table_row`].
    ///
    /// Every table of driver results in the workspace — `tpcb_comparison`,
    /// `figures -- tpcw-cluster`, `figures -- metrics` — prints this header
    /// (plus workload-specific columns appended after it), so the drain
    /// tail is visible everywhere and rows line up across reports.
    #[must_use]
    pub fn table_header(label_title: &str) -> String {
        format!(
            "{label_title:<28}{:>12}{:>10}{:>12}{:>10}{:>10}",
            "committed", "aborted", "tput/s", "p50 ms", "drain ms"
        )
    }

    /// One table row under [`DriverReport::table_header`].  Callers append
    /// workload-specific columns to the returned string.
    #[must_use]
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<28}{:>12}{:>10}{:>12.0}{:>10.2}{:>10}",
            self.committed,
            self.aborted,
            self.throughput(),
            self.latency.median().as_secs_f64() * 1e3,
            self.drain.as_millis(),
        )
    }
}

/// Runs `workload` against `cluster` with closed-loop clients on every
/// replica and aggregates the results.
///
/// Retryable aborts (write-write conflicts, certification failures) are
/// counted and the client immediately moves on to its next transaction;
/// non-retryable errors (component crashes) stop that client.
#[must_use]
pub fn run_driver(cluster: &Arc<Cluster>, workload: &Arc<dyn Workload>, config: &DriverConfig) -> DriverReport {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let start = Instant::now();
    for replica in 0..cluster.replica_count() {
        for client in 0..config.clients_per_replica {
            let cluster = Arc::clone(cluster);
            let workload = Arc::clone(workload);
            let stop = Arc::clone(&stop);
            let client_id = ClientId((replica * config.clients_per_replica + client) as u64);
            let seed = config
                .seed
                .wrapping_add(client_id.0)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let resilient = config.resilient;
            handles.push(thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut report = DriverReport::default();
                let think_time = workload.think_time();
                while !stop.load(Ordering::Relaxed) {
                    let begun = Instant::now();
                    match workload.run_one(&cluster, replica, client_id, &mut rng) {
                        Ok(is_update) => {
                            report.committed += 1;
                            if !is_update {
                                report.read_only += 1;
                            }
                            report.latency.record(begun.elapsed());
                        }
                        Err(e) if e.is_retryable_abort() => {
                            report.aborted += 1;
                            // Randomized backoff before the retry.  Without
                            // it, clients aborted on the same hot rows
                            // re-certify in lockstep and keep colliding — a
                            // retry convoy: the flight recorder shows a
                            // persistent per-sample abort trickle and a
                            // 2–3x certify tail for the whole run (the
                            // TPC-B slow mode in ROADMAP).  Tens of
                            // microseconds of jitter de-phases the
                            // convoy at negligible latency cost.
                            thread::sleep(Duration::from_micros(
                                10 + rng.gen_range(0..90u64),
                            ));
                        }
                        Err(e) if resilient && e.is_unavailable() => {
                            // A component is down (fault injection): back
                            // off and retry until it recovers or the run
                            // ends.  Only outage errors are absorbed —
                            // anything else (corruption, protocol bugs) is
                            // a real failure and still stops the client.
                            report.outage_errors += 1;
                            thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                    // Closed-loop think time (TPC-W browsing): the response
                    // time above excludes it, as the paper's driver does.
                    if !think_time.is_zero() {
                        thread::sleep(think_time);
                    }
                }
                report
            }));
        }
    }
    thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let stopped = Instant::now();
    let mut total = DriverReport::default();
    for handle in handles {
        if let Ok(report) = handle.join() {
            total.committed += report.committed;
            total.read_only += report.read_only;
            total.aborted += report.aborted;
            total.outage_errors += report.outage_errors;
            total.latency.merge(&report.latency);
        }
    }
    total.elapsed = start.elapsed();
    total.drain = stopped.elapsed();
    total
}

#[cfg(test)]
mod tests {
    use tashkent::{ClusterConfig, SystemKind};

    use super::*;
    use crate::generators::{AllUpdates, TpcWBrowsing};

    #[test]
    fn driver_runs_clients_on_every_replica() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap());
        let workload: Arc<dyn Workload> = Arc::new(AllUpdates::default());
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 2,
                duration: Duration::from_millis(200),
                seed: 7,
                ..DriverConfig::default()
            },
        );
        assert!(report.committed > 0);
        assert!(report.throughput() > 0.0);
        assert_eq!(
            cluster.system_version().value(),
            report.committed - report.read_only
        );
        assert!(report.latency.count() == report.committed);
    }

    #[test]
    fn report_rows_line_up_with_the_shared_header() {
        let report = DriverReport {
            committed: 1234,
            aborted: 56,
            elapsed: Duration::from_secs(1),
            drain: Duration::from_millis(3),
            ..DriverReport::default()
        };
        let header = DriverReport::table_header("system");
        let row = report.table_row("base x 2");
        assert_eq!(header.len(), row.len(), "{header}\n{row}");
        assert!(header.contains("drain ms"));
        assert!(row.contains("1234"));
        assert!(row.ends_with("         3"), "{row:?}");
    }

    #[test]
    fn driver_honours_think_times_between_interactions() {
        let cluster = Arc::new(Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap());
        let workload: Arc<dyn Workload> =
            Arc::new(TpcWBrowsing::new(Duration::from_millis(20)).with_catalogue(50, 10));
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 1,
                duration: Duration::from_millis(200),
                seed: 8,
                ..DriverConfig::default()
            },
        );
        assert!(report.committed > 0);
        // With a 20 ms think time, each of the two clients fits roughly
        // duration/think interactions in the window (compared to thousands
        // unthrottled) — the pacing, not the engine, bounds throughput.  The
        // ceiling is twice the ideal 2 × (200/20) so scheduler oversleep of
        // the driver's stop timer cannot flake the test; even doubled it is
        // two orders of magnitude below the unthrottled rate.
        let ceiling = 2 * (2 * (200 / 20));
        assert!(
            report.committed + report.aborted <= ceiling,
            "{} transactions exceed the think-time ceiling {ceiling}",
            report.committed + report.aborted,
        );
    }
}
