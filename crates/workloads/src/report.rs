//! Rendering helpers for metrics snapshots.
//!
//! The per-stage commit-path breakdown is printed by `figures -- metrics`
//! and by the `tpcb_comparison` example; sharing one renderer keeps the two
//! reports comparable row for row.

use tashkent_common::metrics::{CounterId, GaugeId, Stage};
use tashkent_common::MetricsSnapshot;

/// Renders the per-stage latency breakdown of `snapshot` as a fixed-width
/// table: one row per commit-path stage (begin / execute / certify /
/// durable / announce / install) with sample count and p50 / p95 / max in
/// microseconds, followed by the lock-wait distribution and the queue-depth
/// gauge high-water marks.
#[must_use]
pub fn render_stage_breakdown(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12}{:>10}{:>12}{:>12}{:>12}\n",
        "stage", "count", "p50 us", "p95 us", "max us"
    ));
    for stage in Stage::ALL {
        let h = snapshot.stage(stage);
        out.push_str(&format!(
            "{:<12}{:>10}{:>12}{:>12}{:>12}\n",
            stage.label(),
            h.count(),
            h.median().as_micros(),
            h.percentile(95.0).as_micros(),
            h.max().as_micros(),
        ));
    }
    let lock_wait = &snapshot.lock_wait;
    out.push_str(&format!(
        "lock waits: {} blocked acquisitions, p95 {} us, max {} us\n",
        snapshot.counter(CounterId::LockWaits),
        lock_wait.percentile(95.0).as_micros(),
        lock_wait.max().as_micros(),
    ));
    let mut gauges = String::new();
    for gauge in GaugeId::ALL {
        let (_, high_water) = snapshot.gauge(gauge);
        if !gauges.is_empty() {
            gauges.push_str(", ");
        }
        gauges.push_str(&format!("{}={high_water}", gauge.label()));
    }
    out.push_str(&format!("queue high-water marks: {gauges}\n"));
    out
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use tashkent_common::MetricsRegistry;

    use super::*;

    #[test]
    fn breakdown_lists_every_stage_and_gauge() {
        let registry = MetricsRegistry::enabled();
        registry.record_stage(Stage::Certify, Duration::from_micros(120));
        registry.gauge_set(GaugeId::WalGroupBatch, 7);
        let text = render_stage_breakdown(&registry.snapshot());
        for stage in Stage::ALL {
            assert!(text.contains(stage.label()), "{text}");
        }
        assert!(text.contains("wal_group_batch=7"), "{text}");
        assert!(text.contains("lock waits"), "{text}");
    }
}
