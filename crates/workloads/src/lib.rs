//! Workload generators and closed-loop drivers for the Tashkent
//! reproduction: AllUpdates, TPC-B and a compact TPC-W shopping mix.
//!
//! These workloads drive the *real* in-process cluster (`tashkent::Cluster`)
//! and are used by the examples, by the cross-crate integration tests and by
//! the functional benchmarks.  (The paper-scale performance sweeps use the
//! calibrated discrete-event model in `tashkent-sim` instead, because the
//! absolute numbers depend on an 8 ms-fsync disk that a unit-test host does
//! not have.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod generators;
pub mod report;

pub use driver::{DriverConfig, DriverReport, run_driver};
pub use generators::{AllUpdates, TpcB, TpcW, TpcWBrowsing, TpcWShopping, Workload};
pub use report::render_stage_breakdown;
