//! The three benchmarks of the paper's evaluation, expressed against the
//! cluster's transaction API.
//!
//! * [`AllUpdates`] — back-to-back single-row updates on disjoint keys
//!   (54-byte writesets, no conflicts): the worst case for a replicated
//!   system.
//! * [`TpcB`] — the TPC-B schema (branches, tellers, accounts, history) and
//!   its read-modify-write transaction, which has both reads and writes plus
//!   real write-write conflicts on branches and tellers.
//! * [`TpcW`] — a compact TPC-W bookstore running the shopping mix: 80 %
//!   read-only interactions (browse / search / best-sellers) and 20 % updates
//!   (shopping-cart and buy-confirm), with 275-byte average writesets.
//! * [`TpcWBrowsing`] — the same bookstore running the *browsing* mix: 95 %
//!   read-only interactions and per-interaction think times, the
//!   read-dominated scenario of the paper's TPC-W experiments.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::Rng;
use tashkent::{Cluster, Error, Result, TableId, Value};
use tashkent_common::ClientId;

/// A benchmark that can set up its schema and run client transactions
/// against a cluster.
pub trait Workload: Send + Sync {
    /// The benchmark's name.
    fn name(&self) -> &str;

    /// Creates tables and loads initial rows on every replica.
    fn setup(&self, cluster: &Cluster);

    /// Runs one client transaction against the given replica.  Returns
    /// `Ok(true)` if the transaction was an update, `Ok(false)` for a
    /// read-only transaction, and an error if it was aborted.
    fn run_one(&self, cluster: &Cluster, replica: usize, client: ClientId, rng: &mut StdRng)
        -> Result<bool>;

    /// Think time a closed-loop client waits between consecutive
    /// interactions (TPC-W models users reading a page before clicking).
    /// The driver sleeps this after every transaction; zero — the default —
    /// keeps clients saturating, which is what the throughput benchmarks
    /// want.
    fn think_time(&self) -> Duration {
        Duration::ZERO
    }
}

/// The AllUpdates micro-benchmark (Section 9.1).
#[derive(Debug, Clone)]
pub struct AllUpdates {
    /// Number of rows per client (clients write disjoint key ranges so that
    /// transactions never conflict).
    pub rows_per_client: i64,
}

impl Default for AllUpdates {
    fn default() -> Self {
        AllUpdates {
            rows_per_client: 128,
        }
    }
}

impl AllUpdates {
    fn table(&self, cluster: &Cluster) -> TableId {
        cluster.replica(0).database().table_id("updates").expect("setup ran")
    }
}

impl Workload for AllUpdates {
    fn name(&self) -> &str {
        "AllUpdates"
    }

    fn setup(&self, cluster: &Cluster) {
        cluster.create_table("updates", &["counter", "payload"]);
    }

    fn run_one(
        &self,
        cluster: &Cluster,
        replica: usize,
        client: ClientId,
        rng: &mut StdRng,
    ) -> Result<bool> {
        let table = self.table(cluster);
        let key = client.0 as i64 * self.rows_per_client + rng.gen_range(0..self.rows_per_client);
        let session = cluster.session(replica);
        let tx = session.begin();
        let counter = tx
            .read(table, key)?
            .and_then(|r| r.get("counter").and_then(Value::as_int))
            .unwrap_or(0);
        // A 54-byte-ish writeset: counter plus a small payload.
        tx.insert(
            table,
            key,
            vec![
                ("counter".into(), Value::Int(counter + 1)),
                ("payload".into(), Value::Bytes(vec![0xAB; 32])),
            ],
        )?;
        tx.commit()?;
        Ok(true)
    }
}

/// The TPC-B benchmark (Section 9.3).
#[derive(Debug, Clone)]
pub struct TpcB {
    /// Number of branches (scale factor).
    pub branches: i64,
    /// Tellers per branch.
    pub tellers_per_branch: i64,
    /// Accounts per branch.
    pub accounts_per_branch: i64,
}

impl Default for TpcB {
    fn default() -> Self {
        TpcB {
            branches: 4,
            tellers_per_branch: 10,
            accounts_per_branch: 1000,
        }
    }
}

impl TpcB {
    fn tables(&self, cluster: &Cluster) -> (TableId, TableId, TableId, TableId) {
        let db = cluster.replica(0).database();
        (
            db.table_id("branches").expect("setup ran"),
            db.table_id("tellers").expect("setup ran"),
            db.table_id("accounts").expect("setup ran"),
            db.table_id("history").expect("setup ran"),
        )
    }
}

impl Workload for TpcB {
    fn name(&self) -> &str {
        "TPC-B"
    }

    fn setup(&self, cluster: &Cluster) {
        let branches = cluster.create_table("branches", &["balance"]);
        let tellers = cluster.create_table("tellers", &["branch", "balance"]);
        let accounts = cluster.create_table("accounts", &["branch", "balance"]);
        cluster.create_table("history", &["account", "delta"]);
        // Load initial rows through bulk load on every replica so that the
        // load does not count as replicated traffic.
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let mut branch_rows = Vec::new();
            let mut teller_rows = Vec::new();
            let mut account_rows = Vec::new();
            for b in 0..self.branches {
                branch_rows.push((
                    tashkent::RowKey::Int(b),
                    tashkent::Row::from_columns(vec![("balance".into(), Value::Int(0))]),
                ));
                for t in 0..self.tellers_per_branch {
                    teller_rows.push((
                        tashkent::RowKey::Int(b * self.tellers_per_branch + t),
                        tashkent::Row::from_columns(vec![
                            ("branch".into(), Value::Int(b)),
                            ("balance".into(), Value::Int(0)),
                        ]),
                    ));
                }
                for a in 0..self.accounts_per_branch {
                    account_rows.push((
                        tashkent::RowKey::Int(b * self.accounts_per_branch + a),
                        tashkent::Row::from_columns(vec![
                            ("branch".into(), Value::Int(b)),
                            ("balance".into(), Value::Int(0)),
                        ]),
                    ));
                }
            }
            db.bulk_load(branches, branch_rows, tashkent::Version::ZERO);
            db.bulk_load(tellers, teller_rows, tashkent::Version::ZERO);
            db.bulk_load(accounts, account_rows, tashkent::Version::ZERO);
        }
        // The bulk load bypasses the WAL; seal it as the recovery baseline
        // so crashed replicas come back with their initial rows.
        cluster.seal_baseline();
    }

    fn run_one(
        &self,
        cluster: &Cluster,
        replica: usize,
        client: ClientId,
        rng: &mut StdRng,
    ) -> Result<bool> {
        let (branches, tellers, accounts, history) = self.tables(cluster);
        let branch = rng.gen_range(0..self.branches);
        let teller = branch * self.tellers_per_branch + rng.gen_range(0..self.tellers_per_branch);
        let account =
            branch * self.accounts_per_branch + rng.gen_range(0..self.accounts_per_branch);
        let delta = rng.gen_range(-100_000i64..100_000);

        let session = cluster.session(replica);
        let tx = session.begin();
        let read_balance = |table, key| -> Result<i64> {
            Ok(tx
                .read(table, key)?
                .and_then(|r| r.get("balance").and_then(Value::as_int))
                .unwrap_or(0))
        };
        let account_balance = read_balance(accounts, account)?;
        tx.update(
            accounts,
            account,
            vec![("balance".into(), Value::Int(account_balance + delta))],
        )?;
        let teller_balance = read_balance(tellers, teller)?;
        tx.update(
            tellers,
            teller,
            vec![("balance".into(), Value::Int(teller_balance + delta))],
        )?;
        let branch_balance = read_balance(branches, branch)?;
        tx.update(
            branches,
            branch,
            vec![("balance".into(), Value::Int(branch_balance + delta))],
        )?;
        tx.insert(
            history,
            (client.0 as i64, rng.gen_range(0..i64::MAX / 2)),
            vec![
                ("account".into(), Value::Int(account)),
                ("delta".into(), Value::Int(delta)),
            ],
        )?;
        tx.commit()?;
        Ok(true)
    }
}

/// A compact TPC-W bookstore with the shopping mix (Section 9.4).
#[derive(Debug, Clone)]
pub struct TpcW {
    /// Number of items in the catalogue.
    pub items: i64,
    /// Number of registered customers.
    pub customers: i64,
    /// Fraction of update interactions (0.2 for the shopping mix).
    pub update_fraction: f64,
}

impl Default for TpcW {
    fn default() -> Self {
        TpcW {
            items: 1000,
            customers: 288,
            update_fraction: 0.2,
        }
    }
}

impl TpcW {
    fn tables(&self, cluster: &Cluster) -> (TableId, TableId, TableId, TableId) {
        let db = cluster.replica(0).database();
        (
            db.table_id("items").expect("setup ran"),
            db.table_id("customers").expect("setup ran"),
            db.table_id("orders").expect("setup ran"),
            db.table_id("cart_lines").expect("setup ran"),
        )
    }
}

impl Workload for TpcW {
    fn name(&self) -> &str {
        "TPC-W"
    }

    fn setup(&self, cluster: &Cluster) {
        let items = cluster.create_table("items", &["title", "price", "stock"]);
        let customers = cluster.create_table("customers", &["name", "orders"]);
        cluster.create_table("orders", &["customer", "item", "qty", "total"]);
        cluster.create_table("cart_lines", &["item", "qty"]);
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let item_rows = (0..self.items)
                .map(|i| {
                    (
                        tashkent::RowKey::Int(i),
                        tashkent::Row::from_columns(vec![
                            ("title".into(), Value::Text(format!("book-{i}"))),
                            ("price".into(), Value::Float(5.0 + (i % 40) as f64)),
                            ("stock".into(), Value::Int(1000)),
                        ]),
                    )
                })
                .collect();
            let customer_rows = (0..self.customers)
                .map(|c| {
                    (
                        tashkent::RowKey::Int(c),
                        tashkent::Row::from_columns(vec![
                            ("name".into(), Value::Text(format!("customer-{c}"))),
                            ("orders".into(), Value::Int(0)),
                        ]),
                    )
                })
                .collect();
            db.bulk_load(items, item_rows, tashkent::Version::ZERO);
            db.bulk_load(customers, customer_rows, tashkent::Version::ZERO);
        }
        // As for TPC-B: the bulk-loaded catalogue must survive recovery.
        cluster.seal_baseline();
    }

    fn run_one(
        &self,
        cluster: &Cluster,
        replica: usize,
        client: ClientId,
        rng: &mut StdRng,
    ) -> Result<bool> {
        let (items, customers, orders, cart_lines) = self.tables(cluster);
        let session = cluster.session(replica);
        let is_update = rng.gen::<f64>() < self.update_fraction;
        let tx = session.begin();
        if !is_update {
            // Browsing interaction: read a handful of items and a customer.
            for _ in 0..8 {
                let item = rng.gen_range(0..self.items);
                let _ = tx.read(items, item)?;
            }
            let _ = tx.read(customers, rng.gen_range(0..self.customers))?;
            tx.commit()?;
            return Ok(false);
        }
        // Buy-confirm interaction: add a cart line, decrement stock, record
        // the order and bump the customer's order count.
        let customer = rng.gen_range(0..self.customers);
        let item = rng.gen_range(0..self.items);
        let qty = rng.gen_range(1..4);
        let item_row = tx.read(items, item)?.ok_or(Error::RowNotFound {
            table: "items".into(),
            key: item.to_string(),
        })?;
        let stock = item_row.get("stock").and_then(Value::as_int).unwrap_or(0);
        let price = item_row.get("price").and_then(Value::as_float).unwrap_or(0.0);
        tx.insert(
            cart_lines,
            (client.0 as i64, rng.gen_range(0..i64::MAX / 2)),
            vec![("item".into(), Value::Int(item)), ("qty".into(), Value::Int(qty))],
        )?;
        tx.update(items, item, vec![("stock".into(), Value::Int(stock - qty))])?;
        tx.insert(
            orders,
            (customer, rng.gen_range(0..i64::MAX / 2)),
            vec![
                ("customer".into(), Value::Int(customer)),
                ("item".into(), Value::Int(item)),
                ("qty".into(), Value::Int(qty)),
                ("total".into(), Value::Float(price * qty as f64)),
            ],
        )?;
        let order_count = tx
            .read(customers, customer)?
            .and_then(|r| r.get("orders").and_then(Value::as_int))
            .unwrap_or(0);
        tx.update(
            customers,
            customer,
            vec![("orders".into(), Value::Int(order_count + 1))],
        )?;
        tx.commit()?;
        Ok(true)
    }
}

/// The TPC-W *browsing* mix: the same bookstore as [`TpcW`], but 95 %
/// read-only interactions and a per-interaction think time.
///
/// This is the read-dominated scenario of the paper's TPC-W experiments
/// (browsing mix, Section 9.4): almost all interactions browse the
/// catalogue, updates are rare, and closed-loop clients pause between
/// clicks — so a replica serves many attached clients with modest load, and
/// almost nothing funnels through the certifier.
#[derive(Debug, Clone)]
pub struct TpcWBrowsing {
    inner: TpcW,
    think_time: Duration,
}

impl Default for TpcWBrowsing {
    fn default() -> Self {
        TpcWBrowsing::new(Duration::from_millis(2))
    }
}

impl TpcWBrowsing {
    /// A browsing-mix bookstore with the default catalogue and the given
    /// think time (the TPC-W specification's think times average seconds;
    /// tests and benches pass milliseconds to keep wall-clock short).
    #[must_use]
    pub fn new(think_time: Duration) -> Self {
        TpcWBrowsing {
            inner: TpcW {
                // 95 % browsing / 5 % buy-confirm: the TPC-W browsing mix.
                update_fraction: 0.05,
                ..TpcW::default()
            },
            think_time,
        }
    }

    /// Overrides the catalogue size (items and customers scale together in
    /// the compact bookstore).
    #[must_use]
    pub fn with_catalogue(mut self, items: i64, customers: i64) -> Self {
        self.inner.items = items;
        self.inner.customers = customers;
        self
    }
}

impl Workload for TpcWBrowsing {
    fn name(&self) -> &str {
        "TPC-W-browsing"
    }

    fn setup(&self, cluster: &Cluster) {
        self.inner.setup(cluster);
    }

    fn run_one(
        &self,
        cluster: &Cluster,
        replica: usize,
        client: ClientId,
        rng: &mut StdRng,
    ) -> Result<bool> {
        self.inner.run_one(cluster, replica, client, rng)
    }

    fn think_time(&self) -> Duration {
        self.think_time
    }
}

/// The TPC-W *shopping* mix with per-interaction think times: the same
/// bookstore and 80/20 read/update split as [`TpcW`], paced like a real
/// closed-loop TPC-W emulated browser.
///
/// A stub in the sense that it adds nothing to [`TpcW`] but the pacing —
/// the interaction mix itself is already the shopping mix.  It exists so
/// the `figures` harness can drive both paper mixes through one interface
/// (`TpcWBrowsing` / `TpcWShopping`).
#[derive(Debug, Clone)]
pub struct TpcWShopping {
    inner: TpcW,
    think_time: Duration,
}

impl Default for TpcWShopping {
    fn default() -> Self {
        TpcWShopping::new(Duration::from_millis(2))
    }
}

impl TpcWShopping {
    /// A shopping-mix bookstore with the default catalogue and the given
    /// think time.
    #[must_use]
    pub fn new(think_time: Duration) -> Self {
        TpcWShopping {
            inner: TpcW::default(),
            think_time,
        }
    }

    /// Overrides the catalogue size.
    #[must_use]
    pub fn with_catalogue(mut self, items: i64, customers: i64) -> Self {
        self.inner.items = items;
        self.inner.customers = customers;
        self
    }
}

impl Workload for TpcWShopping {
    fn name(&self) -> &str {
        "TPC-W-shopping"
    }

    fn setup(&self, cluster: &Cluster) {
        self.inner.setup(cluster);
    }

    fn run_one(
        &self,
        cluster: &Cluster,
        replica: usize,
        client: ClientId,
        rng: &mut StdRng,
    ) -> Result<bool> {
        self.inner.run_one(cluster, replica, client, rng)
    }

    fn think_time(&self) -> Duration {
        self.think_time
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use tashkent::{ClusterConfig, SystemKind};

    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap()
    }

    #[test]
    fn allupdates_transactions_commit_and_replicate() {
        let cluster = cluster();
        let workload = AllUpdates::default();
        workload.setup(&cluster);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20 {
            let replica = i % cluster.replica_count();
            workload
                .run_one(&cluster, replica, ClientId(i as u64), &mut rng)
                .unwrap();
        }
        assert_eq!(cluster.system_version(), tashkent::Version(20));
    }

    #[test]
    fn tpcb_preserves_balance_invariant() {
        let cluster = cluster();
        let workload = TpcB {
            branches: 2,
            tellers_per_branch: 3,
            accounts_per_branch: 50,
        };
        workload.setup(&cluster);
        let mut rng = StdRng::seed_from_u64(2);
        let mut committed = 0;
        for i in 0..30 {
            if workload
                .run_one(&cluster, i % 2, ClientId(i as u64), &mut rng)
                .is_ok()
            {
                committed += 1;
            }
        }
        assert!(committed > 0);
        cluster.sync_all().unwrap();
        // Invariant: sum of branch balances == sum of teller balances ==
        // sum of account deltas, on every replica.
        for r in 0..cluster.replica_count() {
            let db = cluster.replica(r).database();
            let sum = |name: &str| -> i64 {
                let table = db.table_id(name).unwrap();
                let tx = db.begin();
                let total = tx
                    .scan(table)
                    .unwrap()
                    .iter()
                    .filter_map(|(_, row)| row.get("balance").and_then(Value::as_int))
                    .sum();
                tx.abort();
                total
            };
            assert_eq!(sum("branches"), sum("tellers"), "replica {r}");
            assert_eq!(sum("branches"), sum("accounts"), "replica {r}");
        }
    }

    #[test]
    fn tpcw_browsing_is_read_dominated_with_think_time() {
        let cluster = cluster();
        let workload = TpcWBrowsing::new(Duration::from_millis(1)).with_catalogue(50, 10);
        assert_eq!(workload.think_time(), Duration::from_millis(1));
        workload.setup(&cluster);
        let mut rng = StdRng::seed_from_u64(9);
        let mut updates = 0u64;
        let mut reads = 0u64;
        for i in 0..60 {
            match workload.run_one(&cluster, i % 2, ClientId(i as u64), &mut rng) {
                Ok(true) => updates += 1,
                Ok(false) => reads += 1,
                Err(e) => assert!(e.is_retryable_abort(), "unexpected error {e}"),
            }
        }
        // 95 % browsing: reads dominate heavily.
        assert!(reads >= updates * 5, "reads {reads} updates {updates}");
    }

    #[test]
    fn tpcw_mixes_reads_and_updates() {
        let cluster = cluster();
        let workload = TpcW {
            items: 100,
            customers: 20,
            update_fraction: 0.3,
        };
        workload.setup(&cluster);
        let mut rng = StdRng::seed_from_u64(3);
        let mut updates = 0;
        let mut reads = 0;
        for i in 0..40 {
            match workload.run_one(&cluster, i % 2, ClientId(i as u64), &mut rng) {
                Ok(true) => updates += 1,
                Ok(false) => reads += 1,
                Err(e) => assert!(e.is_retryable_abort(), "unexpected error {e}"),
            }
        }
        assert!(reads > updates, "reads {reads} updates {updates}");
        assert!(updates > 0);
        assert_eq!(
            cluster.system_version().value(),
            u64::try_from(updates).unwrap()
        );
    }
}
