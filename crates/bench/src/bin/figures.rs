//! Regenerates the figures and tables of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tashkent-bench --release --bin figures -- all
//! cargo run -p tashkent-bench --release --bin figures -- fig4 fig14 grouping
//! cargo run -p tashkent-bench --release --bin figures -- --quick all
//! cargo run -p tashkent-bench --release --bin figures -- tpcw-cluster
//! cargo run -p tashkent-bench --release --bin figures -- metrics
//! cargo run -p tashkent-bench --release --bin figures -- tpcb-net
//! cargo run -p tashkent-bench --release --bin figures -- timeline > trace.json
//! ```
//!
//! The `fig*` / table ids replay the calibrated simulator; `tpcw-cluster`
//! runs the TPC-W browsing and shopping mixes on real in-process clusters,
//! `metrics` runs TPC-B on real clusters and prints the commit-path stage
//! breakdown for every system at 1 and 4 certifier shards, `tpcb-net` runs
//! TPC-B over every transport (in-process, loopback, TCP) and prices the
//! network hop (`all` includes all three), and `timeline` runs a TPC-B burst and emits the merged
//! observability timeline as Chrome-trace JSON for Perfetto /
//! `chrome://tracing` (not part of `all`: its output is a JSON document,
//! not a report).

use tashkent_bench::{run_figure, run_metrics, run_timeline, run_tpcb_net, run_tpcw_cluster};
use tashkent_sim::FigureId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tokens: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let all = tokens.is_empty() || tokens.iter().any(|t| t.as_str() == "all");
    let tpcw_cluster =
        all || tokens.iter().any(|t| t.as_str() == "tpcw-cluster" || t.as_str() == "tpcw-real");
    let metrics = all || tokens.iter().any(|t| t.as_str() == "metrics");
    let tpcb_net = all || tokens.iter().any(|t| t.as_str() == "tpcb-net");
    let timeline = tokens.iter().any(|t| t.as_str() == "timeline");
    let figures: Vec<FigureId> = if all {
        FigureId::ALL.to_vec()
    } else {
        tokens
            .iter()
            .filter(|t| {
                t.as_str() != "tpcw-cluster"
                    && t.as_str() != "tpcw-real"
                    && t.as_str() != "metrics"
                    && t.as_str() != "tpcb-net"
                    && t.as_str() != "timeline"
            })
            .filter_map(|t| {
                let id = FigureId::parse(t);
                if id.is_none() {
                    eprintln!(
                        "unknown figure id '{t}' (expected fig4..fig14, standalone, grouping, tpcw-cluster, metrics, tpcb-net, timeline)"
                    );
                }
                id
            })
            .collect()
    };

    for id in figures {
        println!("{}", run_figure(id, quick));
    }
    if tpcw_cluster {
        println!("{}", run_tpcw_cluster(quick));
    }
    if metrics {
        println!("{}", run_metrics(quick));
    }
    if tpcb_net {
        println!("{}", run_tpcb_net(quick));
    }
    if timeline {
        println!("{}", run_timeline(quick));
    }
}
