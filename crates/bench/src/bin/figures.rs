//! Regenerates the figures and tables of the paper's evaluation section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tashkent-bench --release --bin figures -- all
//! cargo run -p tashkent-bench --release --bin figures -- fig4 fig14 grouping
//! cargo run -p tashkent-bench --release --bin figures -- --quick all
//! ```

use tashkent_bench::run_figure;
use tashkent_sim::FigureId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tokens: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let figures: Vec<FigureId> = if tokens.is_empty() || tokens.iter().any(|t| t.as_str() == "all")
    {
        FigureId::ALL.to_vec()
    } else {
        tokens
            .iter()
            .filter_map(|t| {
                let id = FigureId::parse(t);
                if id.is_none() {
                    eprintln!("unknown figure id '{t}' (expected fig4..fig14, standalone, grouping)");
                }
                id
            })
            .collect()
    };

    for id in figures {
        println!("{}", run_figure(id, quick));
    }
}
