//! Benchmark harness for the Tashkent reproduction.
//!
//! This crate has two halves:
//!
//! * the **`figures` binary** (`cargo run -p tashkent-bench --release --bin
//!   figures -- all`), which regenerates every figure and table of the
//!   paper's evaluation from the calibrated discrete-event model in
//!   [`tashkent_sim`], printing the same rows/series the paper plots; and
//! * **criterion micro-benchmarks** (`cargo bench -p tashkent-bench`) for the
//!   real implementation: writeset intersection, certification throughput,
//!   storage-engine commit paths under the three WAL sync modes, group commit
//!   and remote-writeset application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, CounterId, SystemKind, TransportKind};
use tashkent_sim::{Experiment, FigureId};
use tashkent_workloads::{
    render_stage_breakdown, run_driver, DriverConfig, DriverReport, TpcB, TpcWBrowsing,
    TpcWShopping, Workload,
};

/// Runs one figure/table experiment and returns its rendered text.
#[must_use]
pub fn run_figure(id: FigureId, quick: bool) -> String {
    let experiment = if quick {
        Experiment::quick(id)
    } else {
        Experiment::new(id)
    };
    experiment.run().render()
}

/// Runs the TPC-W browsing and shopping mixes on **real clusters** across
/// replica counts and systems, and renders throughput / read-share /
/// response-time rows (the cluster-backed counterpart of the simulator's
/// Figures 12–13; the browsing mix with think times has no simulator
/// profile, so the real driver is the source of truth for it).
///
/// `quick` shortens the per-point window and replica sweep for tests/CI.
#[must_use]
pub fn run_tpcw_cluster(quick: bool) -> String {
    let (replica_counts, window): (&[usize], Duration) = if quick {
        (&[1, 2], Duration::from_millis(200))
    } else {
        (&[1, 2, 3, 4], Duration::from_millis(600))
    };
    let think = Duration::from_millis(2);
    type WorkloadFactory = Box<dyn Fn() -> Arc<dyn Workload>>;
    let mixes: Vec<(&str, WorkloadFactory)> = vec![
        (
            "browsing",
            Box::new(move || Arc::new(TpcWBrowsing::new(think).with_catalogue(200, 40))),
        ),
        (
            "shopping",
            Box::new(move || Arc::new(TpcWShopping::new(think).with_catalogue(200, 40))),
        ),
    ];
    let mut out = String::new();
    out.push_str("# tpcw-cluster — TPC-W mixes on the real cluster\n");
    for (mix_name, make_workload) in &mixes {
        out.push_str(&format!("## {mix_name} mix\n"));
        // The shared driver-report columns plus the mix-specific read share.
        out.push_str(&format!(
            "{}{:>12}\n",
            DriverReport::table_header("system x replicas"),
            "read share"
        ));
        for system in SystemKind::ALL {
            for &replicas in replica_counts {
                let mut config = ClusterConfig::small(system);
                config.replicas = replicas;
                config.clients_per_replica = 3;
                let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
                let workload = make_workload();
                workload.setup(&cluster);
                let report = run_driver(
                    &cluster,
                    &workload,
                    &DriverConfig {
                        clients_per_replica: 3,
                        duration: window,
                        seed: 0x7A5B_3001 + replicas as u64,
                        ..DriverConfig::default()
                    },
                );
                let read_share = if report.committed == 0 {
                    0.0
                } else {
                    report.read_only as f64 / report.committed as f64
                };
                out.push_str(&format!(
                    "{}{read_share:>12.2}\n",
                    report.table_row(&format!("{} x {replicas}", system.label())),
                ));
            }
        }
    }
    out
}

/// Runs TPC-B against **real clusters** for every system at 1 and 4
/// certifier shards and renders the commit-path observability report: the
/// shared driver-report row for each configuration followed by the
/// per-stage (begin / execute / certify / durable / announce / install)
/// latency breakdown from [`Cluster::metrics_snapshot`].
///
/// This is the `figures -- metrics` entry point — the quickest way to see
/// where commit latency goes in each replication design without attaching
/// a flight recorder by hand.
///
/// `quick` shortens the per-point window for tests/CI.
#[must_use]
pub fn run_metrics(quick: bool) -> String {
    let window = if quick {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(500)
    };
    let mut out = String::new();
    out.push_str("# metrics — commit-path stage breakdown (TPC-B, real cluster)\n");
    for system in [
        SystemKind::Base,
        SystemKind::TashkentMw,
        SystemKind::TashkentApi,
    ] {
        for shards in [1usize, 4] {
            let mut config = ClusterConfig::small(system);
            config.replicas = 2;
            config.clients_per_replica = 3;
            config.certifier_shards = shards;
            let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
            let workload: Arc<dyn Workload> = Arc::new(TpcB {
                branches: 4,
                tellers_per_branch: 10,
                accounts_per_branch: 200,
            });
            workload.setup(&cluster);
            let report = run_driver(
                &cluster,
                &workload,
                &DriverConfig {
                    clients_per_replica: 3,
                    duration: window,
                    seed: 0x7A5B_6001 + shards as u64,
                    ..DriverConfig::default()
                },
            );
            let label = format!("{} / {shards} shard(s)", system.label());
            out.push_str(&format!("## {label}\n"));
            out.push_str(&format!("{}\n", DriverReport::table_header("system / shards")));
            out.push_str(&format!("{}\n", report.table_row(&label)));
            out.push_str(&render_stage_breakdown(&cluster.metrics_snapshot()));
        }
    }
    // The network price tag on the same load: one in-process and one
    // loopback TPC-B row side by side (the full transport sweep lives in
    // `figures -- tpcb-net`).
    out.push_str("## transports — loopback vs in-process (tashAPI, 1 shard)
");
    out.push_str(&format!("{}
", DriverReport::table_header("transport")));
    for (label, transport) in [
        ("in-process", TransportKind::InProcess),
        ("loopback", TransportKind::Loopback),
    ] {
        let mut config = ClusterConfig::small(SystemKind::TashkentApi);
        config.replicas = 2;
        config.clients_per_replica = 3;
        config.transport = transport;
        let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 4,
            tellers_per_branch: 10,
            accounts_per_branch: 200,
        });
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 3,
                duration: window,
                seed: 0x7A5B_6101,
                ..DriverConfig::default()
            },
        );
        out.push_str(&format!("{}
", report.table_row(label)));
    }
    out
}

/// Runs TPC-B on **real clusters** over every transport — in-process
/// fan-out, the deterministic loopback network, and real TCP sockets — and
/// renders one driver-report row per transport plus the wire-level
/// counters (messages, bytes each way).  The loopback and TCP rows price
/// the network hop against the in-process baseline on identical load.
///
/// This is the `figures -- tpcb-net` entry point.
///
/// `quick` shortens the per-point window for tests/CI.
#[must_use]
pub fn run_tpcb_net(quick: bool) -> String {
    let window = if quick {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(500)
    };
    let mut out = String::new();
    out.push_str("# tpcb-net — TPC-B across transports (tashAPI, real cluster)
");
    out.push_str(&format!(
        "{}{:>12}{:>14}{:>14}
",
        DriverReport::table_header("transport"),
        "net msgs",
        "sent bytes",
        "recv bytes"
    ));
    for (label, transport) in [
        ("in-process", TransportKind::InProcess),
        ("loopback", TransportKind::Loopback),
        ("tcp", TransportKind::Tcp),
    ] {
        let mut config = ClusterConfig::small(SystemKind::TashkentApi);
        config.replicas = 2;
        config.clients_per_replica = 3;
        config.transport = transport;
        let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
        let workload: Arc<dyn Workload> = Arc::new(TpcB {
            branches: 4,
            tellers_per_branch: 10,
            accounts_per_branch: 200,
        });
        workload.setup(&cluster);
        let report = run_driver(
            &cluster,
            &workload,
            &DriverConfig {
                clients_per_replica: 3,
                duration: window,
                seed: 0x7A5B_8001,
                ..DriverConfig::default()
            },
        );
        let snapshot = cluster.metrics_snapshot();
        out.push_str(&format!(
            "{}{:>12}{:>14}{:>14}
",
            report.table_row(label),
            snapshot.counter(CounterId::NetMessages),
            snapshot.counter(CounterId::NetBytesSent),
            snapshot.counter(CounterId::NetBytesReceived),
        ));
    }
    out
}

/// Runs one TPC-B burst on a real Tashkent-API cluster and exports the
/// merged observability timeline as **Chrome trace / Perfetto JSON**: one
/// complete span per commit-path stage per traced transaction (from the
/// commit-path trace ring) plus one instant per journal event, all on the
/// registry's single clock.
///
/// This is the `figures -- timeline` entry point.  Save the output to a
/// file and open it in `ui.perfetto.dev` (or `chrome://tracing`) to scrub
/// through the cluster's last moments transaction by transaction.
///
/// `quick` shortens the load window for tests/CI.
#[must_use]
pub fn run_timeline(quick: bool) -> String {
    let window = if quick {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(500)
    };
    let mut config = ClusterConfig::small(SystemKind::TashkentApi);
    config.replicas = 2;
    config.clients_per_replica = 3;
    let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
    let workload: Arc<dyn Workload> = Arc::new(TpcB {
        branches: 4,
        tellers_per_branch: 10,
        accounts_per_branch: 200,
    });
    workload.setup(&cluster);
    let _ = run_driver(
        &cluster,
        &workload,
        &DriverConfig {
            clients_per_replica: 3,
            duration: window,
            seed: 0x7A5B_7001,
            ..DriverConfig::default()
        },
    );
    tashkent::chrome_trace_json(&cluster.events(), &cluster.recent_traces())
}

/// Runs every figure/table experiment, returning `(label, rendered)` pairs.
#[must_use]
pub fn run_all_figures(quick: bool) -> Vec<(&'static str, String)> {
    FigureId::ALL
        .iter()
        .map(|id| (id.label(), run_figure(*id, quick)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_figure_renders_rows() {
        let text = run_figure(FigureId::Fig4, true);
        assert!(text.contains("fig4"));
        assert!(text.contains("tashMW"));
        assert!(text.contains("base"));
    }

    #[test]
    fn tpcw_cluster_renders_both_mixes_for_every_system() {
        let text = run_tpcw_cluster(true);
        assert!(text.contains("browsing mix"));
        assert!(text.contains("shopping mix"));
        assert!(text.contains("drain ms"), "{text}");
        for system in ["base", "tashMW", "tashAPI"] {
            assert!(text.contains(&format!("{system} x 1")), "{system}:\n{text}");
        }
    }

    #[test]
    fn metrics_figure_breaks_down_every_stage_for_every_system_and_shard_count() {
        let text = run_metrics(true);
        for system in ["base", "tashMW", "tashAPI"] {
            for shards in [1, 4] {
                assert!(
                    text.contains(&format!("## {system} / {shards} shard(s)")),
                    "{system}/{shards}:\n{text}"
                );
            }
        }
        for stage in ["begin", "execute", "certify", "durable", "announce", "install"] {
            assert!(text.contains(stage), "{stage}:\n{text}");
        }
        assert!(text.contains("queue high-water marks"), "{text}");
    }

    #[test]
    fn tpcb_net_renders_one_row_per_transport_with_wire_counters() {
        let text = run_tpcb_net(true);
        for label in ["in-process", "loopback", "tcp"] {
            assert!(text.contains(label), "{label}:\n{text}");
        }
        assert!(text.contains("net msgs"), "{text}");
        // The in-process row must show zero traffic and the networked rows
        // non-zero; with fixed column widths the cheapest robust check is
        // that the rendered counters are not all zero.
        let wire_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("loopback") || l.starts_with("tcp"))
            .collect();
        assert_eq!(wire_lines.len(), 2, "{text}");
        for line in wire_lines {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let msgs: u64 = cols[cols.len() - 3].parse().unwrap();
            assert!(msgs > 0, "no wire traffic in: {line}");
        }
    }

    #[test]
    fn metrics_figure_compares_loopback_against_in_process() {
        let text = run_metrics(true);
        assert!(
            text.contains("## transports — loopback vs in-process"),
            "{text}"
        );
        assert!(text.contains("in-process"), "{text}");
    }

    #[test]
    fn timeline_exports_chrome_trace_json_with_spans_and_instants() {
        let json = run_timeline(true);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"traceEvents\""));
        // TPC-B commits under load: the trace ring yields per-stage spans
        // and the journal yields instants.
        assert!(json.contains("\"ph\":\"X\""), "no spans in timeline");
        assert!(json.contains("\"ph\":\"i\""), "no instants in timeline");
        assert!(json.contains("\"cat\":\"commit-path\""));
    }
}
