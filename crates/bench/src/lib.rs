//! Benchmark harness for the Tashkent reproduction.
//!
//! This crate has two halves:
//!
//! * the **`figures` binary** (`cargo run -p tashkent-bench --release --bin
//!   figures -- all`), which regenerates every figure and table of the
//!   paper's evaluation from the calibrated discrete-event model in
//!   [`tashkent_sim`], printing the same rows/series the paper plots; and
//! * **criterion micro-benchmarks** (`cargo bench -p tashkent-bench`) for the
//!   real implementation: writeset intersection, certification throughput,
//!   storage-engine commit paths under the three WAL sync modes, group commit
//!   and remote-writeset application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tashkent_sim::{Experiment, FigureId};

/// Runs one figure/table experiment and returns its rendered text.
#[must_use]
pub fn run_figure(id: FigureId, quick: bool) -> String {
    let experiment = if quick {
        Experiment::quick(id)
    } else {
        Experiment::new(id)
    };
    experiment.run().render()
}

/// Runs every figure/table experiment, returning `(label, rendered)` pairs.
#[must_use]
pub fn run_all_figures(quick: bool) -> Vec<(&'static str, String)> {
    FigureId::ALL
        .iter()
        .map(|id| (id.label(), run_figure(*id, quick)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_figure_renders_rows() {
        let text = run_figure(FigureId::Fig4, true);
        assert!(text.contains("fig4"));
        assert!(text.contains("tashMW"));
        assert!(text.contains("base"));
    }
}
