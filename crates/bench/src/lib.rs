//! Benchmark harness for the Tashkent reproduction.
//!
//! This crate has two halves:
//!
//! * the **`figures` binary** (`cargo run -p tashkent-bench --release --bin
//!   figures -- all`), which regenerates every figure and table of the
//!   paper's evaluation from the calibrated discrete-event model in
//!   [`tashkent_sim`], printing the same rows/series the paper plots; and
//! * **criterion micro-benchmarks** (`cargo bench -p tashkent-bench`) for the
//!   real implementation: writeset intersection, certification throughput,
//!   storage-engine commit paths under the three WAL sync modes, group commit
//!   and remote-writeset application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use tashkent::{Cluster, ClusterConfig, SystemKind};
use tashkent_sim::{Experiment, FigureId};
use tashkent_workloads::{
    run_driver, DriverConfig, TpcWBrowsing, TpcWShopping, Workload,
};

/// Runs one figure/table experiment and returns its rendered text.
#[must_use]
pub fn run_figure(id: FigureId, quick: bool) -> String {
    let experiment = if quick {
        Experiment::quick(id)
    } else {
        Experiment::new(id)
    };
    experiment.run().render()
}

/// Runs the TPC-W browsing and shopping mixes on **real clusters** across
/// replica counts and systems, and renders throughput / read-share /
/// response-time rows (the cluster-backed counterpart of the simulator's
/// Figures 12–13; the browsing mix with think times has no simulator
/// profile, so the real driver is the source of truth for it).
///
/// `quick` shortens the per-point window and replica sweep for tests/CI.
#[must_use]
pub fn run_tpcw_cluster(quick: bool) -> String {
    let (replica_counts, window): (&[usize], Duration) = if quick {
        (&[1, 2], Duration::from_millis(200))
    } else {
        (&[1, 2, 3, 4], Duration::from_millis(600))
    };
    let think = Duration::from_millis(2);
    type WorkloadFactory = Box<dyn Fn() -> Arc<dyn Workload>>;
    let mixes: Vec<(&str, WorkloadFactory)> = vec![
        (
            "browsing",
            Box::new(move || Arc::new(TpcWBrowsing::new(think).with_catalogue(200, 40))),
        ),
        (
            "shopping",
            Box::new(move || Arc::new(TpcWShopping::new(think).with_catalogue(200, 40))),
        ),
    ];
    let mut out = String::new();
    out.push_str("# tpcw-cluster — TPC-W mixes on the real cluster\n");
    for (mix_name, make_workload) in &mixes {
        out.push_str(&format!("## {mix_name} mix\n"));
        out.push_str(&format!(
            "{:<28}{:>12}{:>12}{:>12}{:>12}\n",
            "system x replicas", "tput/s", "read share", "p50 ms", "drain ms"
        ));
        for system in SystemKind::ALL {
            for &replicas in replica_counts {
                let mut config = ClusterConfig::small(system);
                config.replicas = replicas;
                config.clients_per_replica = 3;
                let cluster = Arc::new(Cluster::new(config).expect("valid configuration"));
                let workload = make_workload();
                workload.setup(&cluster);
                let report = run_driver(
                    &cluster,
                    &workload,
                    &DriverConfig {
                        clients_per_replica: 3,
                        duration: window,
                        seed: 0x7A5B_3001 + replicas as u64,
                        ..DriverConfig::default()
                    },
                );
                let read_share = if report.committed == 0 {
                    0.0
                } else {
                    report.read_only as f64 / report.committed as f64
                };
                out.push_str(&format!(
                    "{:<28}{:>12.0}{:>12.2}{:>12.2}{:>12}\n",
                    format!("{} x {replicas}", system.label()),
                    report.throughput(),
                    read_share,
                    report.latency.median().as_secs_f64() * 1e3,
                    report.drain.as_millis(),
                ));
            }
        }
    }
    out
}

/// Runs every figure/table experiment, returning `(label, rendered)` pairs.
#[must_use]
pub fn run_all_figures(quick: bool) -> Vec<(&'static str, String)> {
    FigureId::ALL
        .iter()
        .map(|id| (id.label(), run_figure(*id, quick)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_figure_renders_rows() {
        let text = run_figure(FigureId::Fig4, true);
        assert!(text.contains("fig4"));
        assert!(text.contains("tashMW"));
        assert!(text.contains("base"));
    }

    #[test]
    fn tpcw_cluster_renders_both_mixes_for_every_system() {
        let text = run_tpcw_cluster(true);
        assert!(text.contains("browsing mix"));
        assert!(text.contains("shopping mix"));
        for system in ["base", "tashMW", "tashAPI"] {
            assert!(text.contains(&format!("{system} x 1")), "{system}:\n{text}");
        }
    }
}
