//! Micro-benchmark: storage-engine commit paths under the three WAL sync
//! modes — the ablation behind the whole paper: synchronous commits cost an
//! fsync each unless they can be grouped or skipped.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tashkent_common::{SyncMode, Value};
use tashkent_storage::disk::DiskConfig;
use tashkent_storage::{Database, EngineConfig};

fn engine(sync_mode: SyncMode, fsync_us: u64) -> Database {
    let db = Database::new(EngineConfig {
        sync_mode,
        disk: DiskConfig {
            fsync_latency: Duration::from_micros(fsync_us),
            sleep: fsync_us > 0,
            ..DiskConfig::default()
        },
        ordered_commit_timeout: Duration::from_secs(5),
        ..EngineConfig::default()
    });
    db.create_table("t", &["x"]);
    db
}

fn bench_commit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_commit");
    group.bench_function("durable_commit", |b| {
        let db = engine(SyncMode::Durable, 0);
        let t = db.table_id("t").unwrap();
        let mut key = 0i64;
        b.iter(|| {
            key += 1;
            let tx = db.begin();
            tx.insert(t, key, vec![("x".into(), Value::Int(key))]).unwrap();
            tx.commit().unwrap()
        });
    });
    group.bench_function("no_sync_commit", |b| {
        let db = engine(SyncMode::Off, 0);
        let t = db.table_id("t").unwrap();
        let mut key = 0i64;
        b.iter(|| {
            key += 1;
            let tx = db.begin();
            tx.insert(t, key, vec![("x".into(), Value::Int(key))]).unwrap();
            tx.commit().unwrap()
        });
    });
    group.bench_function("ordered_commit", |b| {
        let db = engine(SyncMode::Durable, 0);
        let t = db.table_id("t").unwrap();
        let mut key = 0i64;
        b.iter(|| {
            key += 1;
            let tx = db.begin();
            tx.insert(t, key, vec![("x".into(), Value::Int(key))]).unwrap();
            tx.commit_ordered(key as u64, tashkent_common::Version(key as u64))
                .unwrap()
        });
    });
    group.bench_function("read_only_commit", |b| {
        let db = engine(SyncMode::Durable, 0);
        let t = db.table_id("t").unwrap();
        let setup = db.begin();
        setup.insert(t, 1, vec![("x".into(), Value::Int(1))]).unwrap();
        setup.commit().unwrap();
        b.iter(|| {
            let tx = db.begin();
            tx.read(t, 1).unwrap();
            tx.commit().unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_commit_paths);
criterion_main!(benches);
