//! Micro-benchmark: the TKNP wire codec — what one network hop costs in
//! pure CPU before the socket is even touched.  Encoding and decoding a
//! certification round trip (request out, decision with piggy-backed remote
//! writesets back) must stay far below the certification work itself, or
//! the networked cluster would pay more for serialisation than for the
//! conflict test the paper centres on.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tashkent_certifier::{
    CertificationDecision, CertificationRequest, CertificationResponse, RemoteWriteSet,
};
use tashkent_common::{ReplicaId, TableId, Value, Version, WriteItem, WriteSet};
use tashkent_net::{decode_message, encode_frame, encode_message, Envelope, FrameReader, Message};

fn writeset(rows: usize) -> WriteSet {
    WriteSet::from_items(
        (0..rows as i64)
            .map(|key| {
                WriteItem::update(
                    TableId((key % 4) as u32),
                    key,
                    vec![("balance".into(), Value::Int(key * 10))],
                )
            })
            .collect(),
    )
}

fn certify_request(rows: usize) -> Envelope {
    Envelope {
        request_id: 7,
        message: Message::CertifyRequest(CertificationRequest {
            replica: ReplicaId(1),
            start_version: Version(100),
            writeset: writeset(rows),
            replica_version: Version(98),
        }),
    }
}

fn certify_decision(batch: usize) -> Envelope {
    Envelope {
        request_id: 7,
        message: Message::CertifyDecision(CertificationResponse {
            decision: CertificationDecision::Commit,
            commit_version: Some(Version(101)),
            remote_writesets: (0..batch as u64)
                .map(|i| RemoteWriteSet {
                    commit_version: Version(90 + i),
                    writeset: Arc::new(writeset(4)),
                    conflict_free_to: Version(89 + i),
                })
                .collect(),
            system_version: Version(101),
        }),
    }
}

fn encode(envelope: &Envelope) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    encode_message(&mut buf, envelope);
    buf.freeze().to_vec()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_codec");

    group.bench_function("encode_certify_request_4_rows", |b| {
        let envelope = certify_request(4);
        b.iter(|| encode(&envelope));
    });
    group.bench_function("decode_certify_request_4_rows", |b| {
        let raw = encode(&certify_request(4));
        b.iter(|| {
            let mut bytes = Bytes::copy_from_slice(&raw);
            decode_message(&mut bytes).unwrap()
        });
    });
    group.bench_function("encode_decision_with_16_remote_writesets", |b| {
        let envelope = certify_decision(16);
        b.iter(|| encode(&envelope));
    });
    group.bench_function("decode_decision_with_16_remote_writesets", |b| {
        let raw = encode(&certify_decision(16));
        b.iter(|| {
            let mut bytes = Bytes::copy_from_slice(&raw);
            decode_message(&mut bytes).unwrap()
        });
    });
    group.bench_function("frame_checksum_round_trip_1kib", |b| {
        let payload = vec![0xA5u8; 1024];
        b.iter(|| {
            let wire = encode_frame(&payload);
            let mut reader = FrameReader::new();
            reader.push(&wire);
            reader.next_frame().unwrap().unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
