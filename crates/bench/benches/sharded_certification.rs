//! Micro-benchmark: sharded certification throughput.
//!
//! Hammers the [`ShardedCertifier`] from several worker threads with
//! pre-generated writeset traces and compares shard counts 1 / 2 / 4.  The
//! single-shard configuration is decision-identical to the unsharded
//! certifier (see `tests/sharded_equivalence.rs`), so `shards=1` doubles as
//! the unsharded baseline; the acceptance bar for the sharding PR is that at
//! least one sharded configuration certifies no slower than it.
//!
//! Requests carry a lagged start version, so every certification performs a
//! real intersection scan over the recent log suffix — the work sharding
//! parallelises.  Three traces:
//!
//! * **AllUpdates** — single-item writesets on disjoint keys: fully
//!   partitionable, the scenario sharding is built for (every certify locks
//!   one shard and scans only that shard's 1/N-size suffix).
//! * **TPC-B** — 4-item writesets (account, teller, branch, history) with
//!   hot branch/teller keys: most writesets span several shards, so they
//!   pay the ordered two-phase certify — the stress case.
//! * **TPC-W browsing** — the rare buy-confirm writesets of the browsing
//!   mix: 4 items across 4 tables with a large key space, mostly
//!   conflict-free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tashkent_certifier::{
    CertificationRequest, ShardedCertifier, ShardedCertifierConfig,
};
use tashkent_common::{
    Component, Event, EventKind, MetricsRegistry, ReplicaId, TableId, Value, WriteItem, WriteSet,
};

const WORKERS: usize = 4;
const BATCH: u64 = 256;
/// How far behind the system version each transaction's snapshot lags: the
/// certifier intersects the writeset against this many recent log entries.
/// Sized like a loaded cluster's in-flight window — deep enough that the
/// scan is real work, shallow enough that (as in the paper's runs) commits
/// dominate aborts.
const START_LAG: u64 = 8;
/// Deep-scan lag for the fully partitionable trace, where disjoint keys
/// keep the abort rate at zero no matter how far back the scan reaches.
const DEEP_LAG: u64 = 48;

/// Deterministic xorshift so trace generation needs no RNG dependency here.
struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> i64 {
        (self.next() % bound) as i64
    }
}

fn item(table: u32, key: i64) -> WriteItem {
    WriteItem::update(TableId(table), key, vec![("balance".into(), Value::Int(key))])
}

/// AllUpdates-shaped writesets: one item each, disjoint keys per position so
/// concurrent requests land on independent shards.
fn allupdates_trace(len: usize) -> Vec<WriteSet> {
    (0..len)
        .map(|i| WriteSet::from_items(vec![item(0, i as i64)]))
        .collect()
}

/// TPC-B-shaped writesets: account + teller + branch + history row.  The
/// branch set is sized so the write-write abort rate stays in the paper's
/// few-percent range at [`START_LAG`] (4 hot branches over an 8-deep scan
/// would conflict on essentially every request and measure nothing but the
/// abort fast-path).
fn tpcb_trace(len: usize) -> Vec<WriteSet> {
    let mut rng = Xorshift(0xB0B1);
    (0..len)
        .map(|i| {
            let branch = rng.below(64);
            WriteSet::from_items(vec![
                item(2, branch * 1000 + rng.below(1000)),
                item(1, branch * 10 + rng.below(10)),
                item(0, branch),
                item(3, i as i64),
            ])
        })
        .collect()
}

/// TPC-W-browsing buy-confirm writesets: cart line, stock, order, customer.
fn tpcw_browsing_trace(len: usize) -> Vec<WriteSet> {
    let mut rng = Xorshift(0xB0B2);
    (0..len)
        .map(|i| {
            WriteSet::from_items(vec![
                item(0, i as i64),
                item(1, rng.below(1000)),
                item(2, i as i64),
                item(3, rng.below(288)),
            ])
        })
        .collect()
}

/// Certifies `BATCH` writesets from `trace` across `WORKERS` threads,
/// returning the number that reached a decision.
fn certify_batch(
    certifier: &Arc<ShardedCertifier>,
    trace: &Arc<Vec<WriteSet>>,
    cursor: &AtomicUsize,
    lag: u64,
) -> u64 {
    let per_worker = BATCH as usize / WORKERS;
    let decided = AtomicUsize::new(0);
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let certifier = Arc::clone(certifier);
            let trace = Arc::clone(trace);
            let cursor = &cursor;
            let decided = &decided;
            scope.spawn(move || {
                for _ in 0..per_worker {
                    let index = cursor.fetch_add(1, Ordering::Relaxed) % trace.len();
                    let version = certifier.system_version();
                    let start = tashkent_common::Version(version.value().saturating_sub(lag));
                    let request = CertificationRequest {
                        replica: ReplicaId(worker as u32),
                        start_version: start,
                        writeset: trace[index].clone(),
                        replica_version: version,
                    };
                    if certifier.certify(&request).is_ok() {
                        decided.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    decided.load(Ordering::Relaxed) as u64
}

/// Metrics overhead check: the same TPC-B trace through the same sharded
/// certifier, once with the default no-op registry and once with an enabled
/// one feeding counters, gauges and the durable-stage histogram.  The
/// observability PR's acceptance bar is that the enabled run certifies
/// within 5% of the disabled one.
fn bench_metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    // Larger sample than the sharding sweep: the effect being bounded (≤5%)
    // is smaller than the run-to-run noise of a 4-thread batch, so the
    // comparison needs the extra samples to converge.
    group.sample_size(30);
    group.throughput(Throughput::Elements(BATCH));
    let trace = Arc::new(tpcb_trace(4096));
    for (mode, registry) in [
        ("disabled", MetricsRegistry::disabled()),
        ("enabled", MetricsRegistry::enabled()),
    ] {
        let mut config = ShardedCertifierConfig::with_shards(2);
        config.base.metrics = Arc::new(registry);
        let certifier = Arc::new(ShardedCertifier::new(config));
        let cursor = AtomicUsize::new(0);
        group.bench_with_input(BenchmarkId::new("tpcb", mode), &mode, |b, _| {
            b.iter(|| certify_batch(&certifier, &trace, &cursor, START_LAG));
        });
    }
    group.finish();
}

/// Event-journal overhead check, mirroring `metrics_overhead` for the
/// causal event journal: the same TPC-B trace through the same sharded
/// certifier, once with metrics on but `emit` a no-op
/// ([`MetricsRegistry::enabled_without_journal`]) and once fully enabled,
/// so the measured delta is exactly the journal's cost (clock read +
/// seqlock ring write per decision event) on the certification hot path.
/// The acceptance bar matches PR 6's budget: ≤ 5%, under run-to-run noise.
/// The `emit` sub-benchmark pins the absolute per-call costs: a disabled
/// emit must stay a single predictable branch (single-digit ns), an
/// enabled one a clock read plus ring write (~100 ns).
fn bench_events_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("events_overhead");
    group.sample_size(30);
    group.throughput(Throughput::Elements(BATCH));
    let trace = Arc::new(tpcb_trace(4096));
    for (mode, registry) in [
        ("no-journal", MetricsRegistry::enabled_without_journal()),
        ("journal", MetricsRegistry::enabled()),
    ] {
        let mut config = ShardedCertifierConfig::with_shards(2);
        config.base.metrics = Arc::new(registry);
        let certifier = Arc::new(ShardedCertifier::new(config));
        let cursor = AtomicUsize::new(0);
        group.bench_with_input(BenchmarkId::new("tpcb", mode), &mode, |b, _| {
            b.iter(|| certify_batch(&certifier, &trace, &cursor, START_LAG));
        });
    }
    for (mode, registry) in [
        ("disabled", MetricsRegistry::disabled()),
        ("enabled", MetricsRegistry::enabled()),
    ] {
        let registry = Arc::new(registry);
        group.bench_with_input(BenchmarkId::new("emit", mode), &mode, |b, _| {
            b.iter(|| {
                for i in 0..BATCH {
                    registry.emit(
                        Event::new(Component::Certifier, EventKind::CertifyCommit)
                            .tx(i)
                            .version(i)
                            .shard(0),
                    );
                    registry.emit(
                        Event::new(Component::Certifier, EventKind::DurableAppend)
                            .version(i)
                            .shard(0),
                    );
                }
                registry.events_dropped()
            });
        });
    }
    group.finish();
}

/// The shard sweep, run twice: `batch=on` (epoch-drained, pre-screened
/// certification — the default) against `batch=off` (the serial
/// one-writeset-at-a-time scan, i.e. the pre-batching baseline).  The
/// batching PR's scoreboard compares the two per trace × shard count; its
/// acceptance bar is a measurable win for `batch=on` at 4 shards on the
/// allupdates trace.
fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_certification");
    // The 4-thread batch runs on whatever cores the container grants (often
    // one): per-sample times swing with scheduler timeslicing, so the sweep
    // needs a large sample and the median (robust center) for comparisons.
    group.sample_size(50);
    group.throughput(Throughput::Elements(BATCH));
    for (trace_name, trace, lag) in [
        ("allupdates", allupdates_trace(4096), DEEP_LAG),
        ("tpcb", tpcb_trace(4096), START_LAG),
        ("tpcw_browsing", tpcw_browsing_trace(4096), START_LAG),
    ] {
        let trace = Arc::new(trace);
        for shards in [1usize, 2, 4] {
            for batch in [true, false] {
                let mut config = ShardedCertifierConfig::with_shards(shards);
                config.base.batch = batch;
                let certifier = Arc::new(ShardedCertifier::new(config));
                let cursor = AtomicUsize::new(0);
                let mode = if batch { "batch=on" } else { "batch=off" };
                group.bench_with_input(
                    BenchmarkId::new(trace_name, format!("shards={shards}/{mode}")),
                    &shards,
                    |b, _| {
                        b.iter(|| certify_batch(&certifier, &trace, &cursor, lag));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded,
    bench_metrics_overhead,
    bench_events_overhead
);
criterion_main!(benches);
