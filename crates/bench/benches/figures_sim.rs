//! Benchmark wrapper around the figure-reproduction experiments: one
//! criterion target per paper figure, so `cargo bench` exercises every
//! experiment end to end (with shortened virtual durations).

use criterion::{criterion_group, criterion_main, Criterion};
use tashkent_sim::{Experiment, FigureId};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in FigureId::ALL {
        group.bench_function(id.label(), |b| {
            b.iter(|| Experiment::quick(id).run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
