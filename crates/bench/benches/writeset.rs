//! Micro-benchmark: writeset intersection (the core certification operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tashkent_common::{TableId, Value, WriteItem, WriteSet};

fn writeset(table: u32, base: i64, items: usize) -> WriteSet {
    WriteSet::from_items(
        (0..items)
            .map(|i| {
                WriteItem::update(
                    TableId(table),
                    base + i as i64,
                    vec![("x".into(), Value::Int(i as i64))],
                )
            })
            .collect(),
    )
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("writeset_intersection");
    for &size in &[1usize, 4, 16, 64] {
        let a = writeset(0, 0, size);
        let disjoint = writeset(0, 10_000, size);
        let overlapping = writeset(0, size as i64 - 1, size);
        group.bench_with_input(BenchmarkId::new("disjoint", size), &size, |b, _| {
            b.iter(|| a.conflicts_with(&disjoint));
        });
        group.bench_with_input(BenchmarkId::new("overlapping", size), &size, |b, _| {
            b.iter(|| a.conflicts_with(&overlapping));
        });
        let footprint = a.footprint();
        group.bench_with_input(BenchmarkId::new("cached_footprint", size), &size, |b, _| {
            b.iter(|| disjoint.conflicts_with_footprint(&footprint));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersection);
criterion_main!(benches);
