//! Micro-benchmark / ablation: group commit on the WAL writer.
//!
//! Shows how many records one synchronous flush can absorb when commits are
//! submitted concurrently versus serially — the mechanism that separates
//! Base from the two Tashkent systems.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tashkent_common::{TableId, Value, Version, WriteItem, WriteSet};
use tashkent_storage::disk::{DiskConfig, LogDevice, SimulatedDisk};
use tashkent_storage::wal::{WalRecord, WalWriter};

fn record(version: u64) -> WalRecord {
    WalRecord::Commit {
        version: Version(version),
        writeset: WriteSet::from_items(vec![WriteItem::update(
            TableId(0),
            version as i64,
            vec![("x".into(), Value::Int(version as i64))],
        )]),
    }
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_commit");
    group.sample_size(10);
    for &writers in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("concurrent_writers", writers),
            &writers,
            |b, &writers| {
                b.iter(|| {
                    let disk = Arc::new(SimulatedDisk::new(DiskConfig {
                        fsync_latency: Duration::from_micros(200),
                        sleep: true,
                        ..DiskConfig::default()
                    }));
                    let wal = Arc::new(WalWriter::new(disk.clone()));
                    let handles: Vec<_> = (0..writers)
                        .map(|w| {
                            let wal = Arc::clone(&wal);
                            thread::spawn(move || {
                                for i in 0..20u64 {
                                    wal.append_durable(&record(w as u64 * 100 + i));
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                    disk.stats().group_commit.mean_group_size()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
