//! Micro-benchmark: certifier throughput — the paper's claim that
//! certification is an order of magnitude cheaper than executing the
//! transaction, and that the certifier log batches writesets efficiently.

use criterion::{criterion_group, criterion_main, Criterion};
use tashkent_certifier::{CertificationRequest, Certifier, CertifierConfig};
use tashkent_common::{ReplicaId, TableId, Value, Version, WriteItem, WriteSet};

fn request(key: i64, start: Version, replica_version: Version) -> CertificationRequest {
    CertificationRequest {
        replica: ReplicaId(0),
        start_version: start,
        writeset: WriteSet::from_items(vec![WriteItem::update(
            TableId(0),
            key,
            vec![("x".into(), Value::Int(key))],
        )]),
        replica_version,
    }
}

fn bench_certify(c: &mut Criterion) {
    let mut group = c.benchmark_group("certification");
    group.bench_function("certify_non_conflicting", |b| {
        let certifier = Certifier::new(CertifierConfig::default());
        let mut key = 0i64;
        b.iter(|| {
            key += 1;
            let version = certifier.system_version();
            certifier.certify(&request(key, version, version)).unwrap()
        });
    });
    group.bench_function("certify_against_deep_log", |b| {
        let certifier = Certifier::new(CertifierConfig::default());
        for key in 0..2_000 {
            let version = certifier.system_version();
            certifier.certify(&request(key, version, version)).unwrap();
        }
        let mut key = 10_000i64;
        b.iter(|| {
            key += 1;
            let version = certifier.system_version();
            certifier.certify(&request(key, version, version)).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_certify);
criterion_main!(benches);
