//! Micro-benchmark: remote-writeset application rate at a replica — the
//! figure behind the paper's recovery claim of roughly 900 writesets/second
//! when batched (Section 9.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tashkent_common::{TableId, Value, Version, WriteItem, WriteSet};
use tashkent_storage::{Database, EngineConfig};

fn remote_writeset(key: i64) -> WriteSet {
    WriteSet::from_items(vec![WriteItem::update(
        TableId(0),
        key,
        vec![
            ("balance".into(), Value::Int(key)),
            ("payload".into(), Value::Bytes(vec![0x5A; 200])),
        ],
    )])
}

fn bench_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_writesets");
    for &batch in &[1usize, 16, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            let db = Database::new(EngineConfig::default());
            db.create_table("t", &["balance", "payload"]);
            let mut version = 0u64;
            b.iter(|| {
                // One replica transaction applying `batch` remote writesets,
                // exactly as the recovering proxy batches them.
                let merged = WriteSet::merged(
                    (0..batch)
                        .map(|i| remote_writeset((version as i64) * 64 + i as i64))
                        .collect::<Vec<_>>()
                        .iter(),
                );
                version += 1;
                db.apply_writeset(&merged, Version(version)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
