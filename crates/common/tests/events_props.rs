//! Property-based tests for the causal event journal.
//!
//! Three contracts are pinned here:
//!
//! * **Ring ordering and overflow** — an [`EventRing`] snapshot is always a
//!   contiguous *suffix* of what was recorded (oldest entries dropped
//!   first, never the middle), in record order, and never holds a torn
//!   event.
//! * **Causal-merge monotonicity** — [`merge_timelines`] produces a
//!   timeline whose timestamps never decrease regardless of how events are
//!   scattered across component streams, and it loses nothing.
//! * **Chrome-trace well-formedness** — [`chrome_trace_json`] emits valid
//!   JSON (checked with a full little parser, not substring pokes) whose
//!   per-transaction spans are monotonic: each stage span begins where the
//!   previous stage ended and durations are never negative.

use proptest::prelude::*;
use tashkent_common::metrics::{TraceTimer, STAGE_COUNT};
use tashkent_common::{
    chrome_trace_json, merge_timelines, text_timeline, CommitPathTrace, Component, Event,
    EventKind, EventRing, MetricsRegistry,
};

fn kind_of(i: u8) -> EventKind {
    EventKind::ALL[i as usize % EventKind::ALL.len()]
}

fn component_of(i: u8) -> Component {
    Component::ALL[i as usize % Component::ALL.len()]
}

fn event(at: u64, meta: u8, tx: u64) -> Event {
    let mut e = Event::new(component_of(meta), kind_of(meta))
        .tx(tx)
        .version(tx.wrapping_mul(131).wrapping_add(11))
        .shard((meta % 4) as usize)
        .node((meta % 3) as usize);
    e.at_micros = at;
    e
}

proptest! {
    /// Oldest-dropped, never torn: after any record sequence, the snapshot
    /// is exactly the last `min(n, capacity)` records, in order.
    #[test]
    fn ring_snapshot_is_the_ordered_suffix_of_what_was_recorded(
        capacity in 1usize..64,
        records in prop::collection::vec((0u64..10_000, 0u8..=255), 0..300),
    ) {
        let ring = EventRing::new(capacity);
        for (i, (at, meta)) in records.iter().enumerate() {
            ring.record(&event(*at, *meta, i as u64));
        }
        let snapshot = ring.snapshot();
        let expect = records.len().min(capacity);
        prop_assert_eq!(snapshot.len(), expect);
        prop_assert_eq!(ring.issued(), records.len() as u64);
        prop_assert_eq!(ring.dropped(), 0);
        let first = records.len() - expect;
        for (offset, got) in snapshot.iter().enumerate() {
            let (at, meta) = records[first + offset];
            let want = event(at, meta, (first + offset) as u64);
            prop_assert_eq!(*got, want, "slot {} diverged", offset);
        }
    }

    /// Merging any scatter of a timeline across component streams yields a
    /// time-monotonic timeline of the same length and content.
    #[test]
    fn merged_timelines_are_monotonic_and_lose_nothing(
        entries in prop::collection::vec((0u64..5_000, 0u8..=255, 0u8..5), 0..200),
    ) {
        let mut streams: Vec<Vec<Event>> = vec![Vec::new(); 5];
        for (i, (at, meta, stream)) in entries.iter().enumerate() {
            streams[*stream as usize].push(event(*at, *meta, i as u64));
        }
        // Per-stream order must be time-sorted, as ring tickets guarantee
        // for a single ring (the registry clock is read inside `emit`).
        for stream in &mut streams {
            stream.sort_by_key(|e| e.at_micros);
        }
        let merged = merge_timelines(streams);
        prop_assert_eq!(merged.len(), entries.len());
        for pair in merged.windows(2) {
            prop_assert!(pair[0].at_micros <= pair[1].at_micros);
        }
        // Nothing is lost or invented: multiset equality via sorted keys.
        let mut got: Vec<u64> = merged.iter().map(|e| e.tx).collect();
        let mut want: Vec<u64> = (0..entries.len() as u64).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // The text timeline renders one line per event, greppable by tx.
        let text = text_timeline(&merged);
        prop_assert_eq!(text.lines().count(), merged.len());
    }

    /// The Chrome-trace export is valid JSON, and every transaction's spans
    /// tile the commit path: stage N+1 starts where stage N ended and no
    /// duration is negative (ts and dur are u64 microseconds).
    #[test]
    fn chrome_trace_is_valid_json_with_monotonic_per_tx_spans(
        marks in prop::collection::vec(
            (1u64..50_000, prop::collection::vec(0u64..2_000, STAGE_COUNT..STAGE_COUNT + 1)),
            0..20,
        ),
        events in prop::collection::vec((0u64..50_000, 0u8..=255), 0..40),
    ) {
        let traces: Vec<CommitPathTrace> = marks
            .iter()
            .enumerate()
            .map(|(i, (started, deltas))| {
                let timer = TraceTimer::new_at(i as u64 + 1, *started);
                let mut trace = timer.finish();
                let mut cumulative = 0u64;
                for (slot, delta) in deltas.iter().enumerate() {
                    cumulative += delta;
                    trace.marks[slot] = cumulative;
                }
                trace
            })
            .collect();
        let events: Vec<Event> = events
            .iter()
            .enumerate()
            .map(|(i, (at, meta))| event(*at, *meta, i as u64))
            .collect();
        let json = chrome_trace_json(&events, &traces);
        let value = json::parse(&json).expect("export must be valid JSON");

        prop_assert!(matches!(&value, json::Value::Object(_)), "root is not an object");
        let Some(json::Value::Array(trace_events)) = value.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        prop_assert_eq!(
            trace_events.len(),
            traces.len() * STAGE_COUNT + events.len()
        );

        // Group the "X" spans by tid and verify they tile without gaps or
        // overlaps in emission (stage) order.
        let mut span_cursor: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for entry in trace_events {
            prop_assert!(
                matches!(entry, json::Value::Object(_)),
                "trace event is not an object"
            );
            let ph = entry.get("ph").and_then(json::Value::as_str).unwrap_or("");
            let ts = entry.get("ts").and_then(json::Value::as_u64);
            prop_assert!(ts.is_some(), "ts must be a non-negative integer");
            match ph {
                "X" => {
                    let tid = entry
                        .get("tid")
                        .and_then(json::Value::as_u64)
                        .expect("span tid");
                    let dur = entry
                        .get("dur")
                        .and_then(json::Value::as_u64)
                        .expect("span dur is a non-negative integer");
                    let ts = ts.unwrap();
                    if let Some(end) = span_cursor.get(&tid) {
                        prop_assert_eq!(
                            ts, *end,
                            "tx {} stage span does not start where the previous ended", tid
                        );
                    }
                    span_cursor.insert(tid, ts + dur);
                }
                "i" => {
                    prop_assert!(entry.get("args").is_some(), "instant without args");
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
    }
}

/// A minimal recursive-descent JSON parser: enough of RFC 8259 to fully
/// validate the Chrome-trace export (objects, arrays, strings with
/// escapes, integers/floats, booleans, null) without pulling in a real
/// JSON dependency (the vendored serde is a derive-only stub).
mod json {
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(HashMap<String, Value>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(map) => map.get(key),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut at = 0usize;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing garbage at byte {at}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], at: &mut usize) {
        while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
            *at += 1;
        }
    }

    fn expect(bytes: &[u8], at: &mut usize, byte: u8) -> Result<(), String> {
        if bytes.get(*at) == Some(&byte) {
            *at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                at,
                bytes.get(*at).map(|b| *b as char)
            ))
        }
    }

    fn parse_value(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b'{') => parse_object(bytes, at),
            Some(b'[') => parse_array(bytes, at),
            Some(b'"') => Ok(Value::String(parse_string(bytes, at)?)),
            Some(b't') => parse_literal(bytes, at, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, at, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, at, "null", Value::Null),
            Some(b'-' | b'0'..=b'9') => parse_number(bytes, at),
            other => Err(format!("unexpected byte {other:?} at {at}")),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        at: &mut usize,
        literal: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*at..].starts_with(literal.as_bytes()) {
            *at += literal.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {at}"))
        }
    }

    fn parse_object(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(bytes, at, b'{')?;
        let mut map = HashMap::new();
        skip_ws(bytes, at);
        if bytes.get(*at) == Some(&b'}') {
            *at += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, at);
            let key = parse_string(bytes, at)?;
            skip_ws(bytes, at);
            expect(bytes, at, b':')?;
            let value = parse_value(bytes, at)?;
            map.insert(key, value);
            skip_ws(bytes, at);
            match bytes.get(*at) {
                Some(b',') => *at += 1,
                Some(b'}') => {
                    *at += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        expect(bytes, at, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, at);
        if bytes.get(*at) == Some(&b']') {
            *at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, at)?);
            skip_ws(bytes, at);
            match bytes.get(*at) {
                Some(b',') => *at += 1,
                Some(b']') => {
                    *at += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
        expect(bytes, at, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*at) {
                Some(b'"') => {
                    *at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *at += 1;
                    match bytes.get(*at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*at + 1..*at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            *at += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *at += 1;
                }
                Some(b) if *b < 0x20 => return Err("raw control byte in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // safe to do byte-wise: find the next char boundary).
                    let start = *at;
                    *at += 1;
                    while *at < bytes.len() && (bytes[*at] & 0xC0) == 0x80 {
                        *at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&bytes[start..*at]).map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Value, String> {
        let start = *at;
        if bytes.get(*at) == Some(&b'-') {
            *at += 1;
        }
        while *at < bytes.len()
            && matches!(bytes[*at], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        {
            *at += 1;
        }
        std::str::from_utf8(&bytes[start..*at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }
}

/// The registry's own merged timeline (outside `proptest!` so it also runs
/// under `PROPTEST_SEED` replays as a plain deterministic check): events
/// emitted through an enabled registry come back causally ordered and the
/// export over them parses.
#[test]
fn registry_journal_exports_parseable_chrome_trace() {
    let registry = MetricsRegistry::enabled();
    for i in 0..50u64 {
        registry.emit(
            Event::new(Component::Proxy, EventKind::TxBegin)
                .tx(i)
                .node(0),
        );
        registry.emit(
            Event::new(Component::Certifier, EventKind::CertifyCommit)
                .tx(i)
                .version(i + 1)
                .shard((i % 4) as usize),
        );
    }
    let events = registry.events();
    assert_eq!(events.len(), 100);
    for pair in events.windows(2) {
        assert!(pair[0].at_micros <= pair[1].at_micros);
    }
    let json = chrome_trace_json(&events, &[]);
    let value = json::parse(&json).expect("valid JSON");
    let Some(json::Value::Array(entries)) = value.get("traceEvents") else {
        panic!("missing traceEvents");
    };
    assert_eq!(entries.len(), 100);
}
