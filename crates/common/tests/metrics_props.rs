//! Property-based tests for the latency histogram and the metrics
//! snapshot codec.
//!
//! [`LatencyHistogram`] documents that log-bucketing keeps percentile
//! error below ~3 % (half a bucket; one full bucket spans
//! `10^(1/32) − 1 ≈ 7.5 %`).  The properties here pin that contract: a
//! reported percentile is never more than one bucket away from the true
//! order statistic, across every decade the histogram covers, and `merge`
//! is order-insensitive so per-thread histograms can be combined in any
//! join order.  The snapshot codec must round-trip every field bit-exactly
//! — the flight recorder persists and re-reads these buffers.

use std::time::Duration;

use proptest::prelude::*;
use tashkent_common::metrics::{CounterId, GaugeId, Stage, STAGE_COUNT};
use tashkent_common::{LatencyHistogram, MetricsRegistry, MetricsSnapshot};

/// One full bucket of relative error (`10^(1/32)`), plus a little slack
/// for the integer rounding of bucket boundaries at the microsecond end.
const BUCKET_RATIO: f64 = 1.09;

fn assert_within_bucket_error(reported: u64, truth: u64) {
    let reported = reported.max(1) as f64;
    let truth = truth.max(1) as f64;
    let ratio = if reported > truth {
        reported / truth
    } else {
        truth / reported
    };
    assert!(
        ratio <= BUCKET_RATIO,
        "reported {reported} vs true {truth}: ratio {ratio:.4} exceeds one bucket"
    );
}

/// True percentile as the histogram defines it: the smallest sample with
/// at least `⌈p/100 · n⌉` samples at or below it.
fn true_percentile(sorted: &[u64], p: f64) -> u64 {
    let target = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[target.min(sorted.len()) - 1]
}

/// Samples spanning six decades, 10 µs .. 100 s.  The single-digit
/// microsecond decade is excluded because integer bucket boundaries there
/// (1, 2, 3 µs …) are coarser than the 7.5 % log-bucket contract.  The
/// mantissa is drawn in thousandths (1.000–9.999) since the vendored
/// proptest stand-in only generates integer ranges.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((1u32..7, 1000u64..10_000), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(decade, mantissa_milli)| mantissa_milli * 10u64.pow(decade) / 1000)
            .collect()
    })
}

proptest! {
    #[test]
    fn percentiles_stay_within_one_bucket_across_decades(
        samples in arb_samples(),
        p_int in 1u32..100,
    ) {
        let p = f64::from(p_int);
        let mut histogram = LatencyHistogram::new();
        for &micros in &samples {
            histogram.record(Duration::from_micros(micros));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = true_percentile(&sorted, p);
        let reported = histogram.percentile(p).as_micros() as u64;
        assert_within_bucket_error(reported, truth);
        // The extremes are exact, not bucketed.
        prop_assert_eq!(histogram.min().as_micros() as u64, sorted[0]);
        prop_assert_eq!(
            histogram.max().as_micros() as u64,
            *sorted.last().unwrap()
        );
        prop_assert_eq!(histogram.count(), samples.len() as u64);
    }

    #[test]
    fn merge_is_order_insensitive(
        left in arb_samples(),
        right in arb_samples(),
        p_int in 1u32..100,
    ) {
        let p = f64::from(p_int);
        let build = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &micros in samples {
                h.record(Duration::from_micros(micros));
            }
            h
        };
        let mut ab = build(&left);
        ab.merge(&build(&right));
        let mut ba = build(&right);
        ba.merge(&build(&left));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum_micros(), ba.sum_micros());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.percentile(p), ba.percentile(p));
        // Merging equals recording everything into one histogram.
        let mut all: Vec<u64> = left;
        all.extend(right);
        let whole = build(&all);
        prop_assert_eq!(whole.bucket_counts(), ab.bucket_counts());
        prop_assert_eq!(whole.mean(), ab.mean());
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly(
        stage_samples in prop::collection::vec(
            prop::collection::vec(1u64..10_000_000, 0..20),
            STAGE_COUNT..STAGE_COUNT + 1,
        ),
        counters in prop::collection::vec(0u64..1_000_000, 11..12),
        gauge_values in prop::collection::vec(-1000i64..1000, 3..4),
        shard_commits in prop::collection::vec(0u64..100, 0..8),
    ) {
        let registry = MetricsRegistry::enabled();
        for (stage, samples) in Stage::ALL.iter().zip(stage_samples.iter()) {
            for &micros in samples {
                registry.record_stage(*stage, Duration::from_micros(micros));
            }
        }
        for (id, &value) in CounterId::ALL.iter().zip(counters.iter()) {
            registry.add(*id, value);
        }
        for (id, &value) in GaugeId::ALL.iter().zip(gauge_values.iter()) {
            registry.gauge_set(*id, value);
        }
        for (shard, &commits) in shard_commits.iter().enumerate() {
            for _ in 0..commits {
                registry.record_shard_commit(shard);
            }
        }
        registry.record_lock_wait(Duration::from_micros(321));

        let snapshot = registry.snapshot();
        let decoded = MetricsSnapshot::from_bytes(&snapshot.to_bytes()).unwrap();

        prop_assert_eq!(decoded.elapsed, snapshot.elapsed);
        prop_assert_eq!(&decoded.counters, &snapshot.counters);
        prop_assert_eq!(&decoded.gauges, &snapshot.gauges);
        prop_assert_eq!(&decoded.shard_commits, &snapshot.shard_commits);
        prop_assert_eq!(decoded.shard_commit_sum(), snapshot.shard_commit_sum());
        for stage in Stage::ALL {
            let (a, b) = (decoded.stage(stage), snapshot.stage(stage));
            prop_assert_eq!(a.count(), b.count());
            prop_assert_eq!(a.sum_micros(), b.sum_micros());
            prop_assert_eq!(a.min(), b.min());
            prop_assert_eq!(a.max(), b.max());
            prop_assert_eq!(a.bucket_counts(), b.bucket_counts());
        }
        prop_assert_eq!(decoded.lock_wait.count(), snapshot.lock_wait.count());
        prop_assert_eq!(
            decoded.lock_wait.bucket_counts(),
            snapshot.lock_wait.bucket_counts()
        );
    }
}
