//! Property-based tests for the key→shard map.
//!
//! The sharded certifier's correctness rests on three properties of
//! [`ShardMap`]: every key maps to exactly one in-range shard (total
//! coverage), the mapping is a pure function of `(table, key, shard_count)`
//! — stable across processes, machines and runs — and the single-shard map
//! degenerates to "everything on shard 0".

use proptest::prelude::*;
use tashkent_common::{RowKey, ShardId, ShardMap, TableId, Value, WriteItem, WriteSet};

fn arb_key() -> impl Strategy<Value = RowKey> {
    (0u8..3, -1000i64..1000, -1000i64..1000).prop_map(|(kind, a, b)| match kind {
        0 => RowKey::Int(a),
        1 => RowKey::Pair(a, b),
        _ => RowKey::Text(format!("key-{a}-{b}")),
    })
}

fn arb_writeset() -> impl Strategy<Value = WriteSet> {
    prop::collection::vec(((0u32..6), arb_key()), 0..10).prop_map(|pairs| {
        WriteSet::from_items(
            pairs
                .into_iter()
                .map(|(t, k)| WriteItem::update(TableId(t), k, vec![("c".into(), Value::Int(0))]))
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn every_key_maps_to_exactly_one_shard_in_range(
        shard_count in 1usize..32,
        table in 0u32..8,
        key in arb_key(),
    ) {
        let map = ShardMap::new(shard_count);
        prop_assert!(map.validate().is_ok());
        let shard = map.shard_of(TableId(table), &key);
        prop_assert!(shard.index() < shard_count);
        // Exactly one: re-asking never yields a different shard.
        for _ in 0..3 {
            prop_assert_eq!(map.shard_of(TableId(table), &key), shard);
        }
    }

    #[test]
    fn mapping_is_deterministic_across_map_instances(
        shard_count in 1usize..32,
        table in 0u32..8,
        key in arb_key(),
    ) {
        // Two independently constructed maps — stand-ins for the maps
        // computed by different processes — agree on every key.
        let a = ShardMap::new(shard_count);
        let b = ShardMap::new(shard_count);
        prop_assert_eq!(
            a.shard_of(TableId(table), &key),
            b.shard_of(TableId(table), &key)
        );
    }

    #[test]
    fn shard_count_one_is_stable_on_shard_zero(table in 0u32..8, key in arb_key()) {
        let map = ShardMap::new(1);
        prop_assert_eq!(map.shard_of(TableId(table), &key), ShardId(0));
    }

    #[test]
    fn shards_of_covers_the_footprint_sorted_and_deduped(
        shard_count in 1usize..16,
        writeset in arb_writeset(),
    ) {
        let map = ShardMap::new(shard_count);
        let shards = map.shards_of(&writeset);
        // Strictly ascending (sorted, no duplicates).
        prop_assert!(shards.windows(2).all(|w| w[0] < w[1]));
        // Covers exactly the footprint's shards: every item's shard is
        // listed, and every listed shard owns at least one item.
        for item in writeset.items() {
            prop_assert!(shards.contains(&map.shard_of(item.table, &item.key)));
        }
        for shard in &shards {
            prop_assert!(writeset
                .items()
                .iter()
                .any(|i| map.shard_of(i.table, &i.key) == *shard));
        }
        prop_assert_eq!(shards.is_empty(), writeset.is_empty());
    }
}

/// Pinned expected assignments: these exact values were computed by this
/// implementation and must never change — replicas, certifier shards and
/// recovery tooling in *different processes* (and future versions) must
/// agree on them, or writesets would be routed to the wrong shard's log.
#[test]
fn assignments_are_pinned_across_processes_and_versions() {
    let map = ShardMap::new(7);
    let cases: Vec<(TableId, RowKey, u32)> = vec![
        (TableId(0), RowKey::Int(0), 1),
        (TableId(0), RowKey::Int(1), 3),
        (TableId(1), RowKey::Int(0), 2),
        (TableId(3), RowKey::Int(-42), 6),
        (TableId(0), RowKey::Pair(1, 2), 3),
        (TableId(2), RowKey::Pair(-1, -2), 2),
        (TableId(0), RowKey::Text("customer-7".into()), 1),
        (TableId(5), RowKey::Text("".into()), 3),
    ];
    for (table, key, expected) in cases {
        assert_eq!(
            map.shard_of(table, &key),
            ShardId(expected),
            "pinned assignment changed for ({table}, {key}) — this breaks \
             cross-process routing"
        );
    }
}
