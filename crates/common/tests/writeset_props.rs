//! Property-based tests for writeset intersection.
//!
//! The certifier's correctness hinges entirely on the conflict test, so we
//! check it against a naive reference model on arbitrary writesets.

use std::collections::HashSet;

use proptest::prelude::*;
use tashkent_common::{RowKey, TableId, Value, WriteItem, WriteSet};

/// Reference implementation: quadratic scan over both item lists.
fn naive_conflict(a: &WriteSet, b: &WriteSet) -> bool {
    for x in a.items() {
        for y in b.items() {
            if x.table == y.table && x.key == y.key {
                return true;
            }
        }
    }
    false
}

fn arb_writeset(max_items: usize) -> impl Strategy<Value = WriteSet> {
    prop::collection::vec((0u32..4, 0i64..50), 0..max_items).prop_map(|pairs| {
        WriteSet::from_items(
            pairs
                .into_iter()
                .map(|(t, k)| {
                    WriteItem::update(TableId(t), k, vec![("c".to_string(), Value::Int(k))])
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn conflict_matches_naive_model(a in arb_writeset(12), b in arb_writeset(12)) {
        prop_assert_eq!(a.conflicts_with(&b), naive_conflict(&a, &b));
    }

    #[test]
    fn conflict_is_symmetric(a in arb_writeset(12), b in arb_writeset(12)) {
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    #[test]
    fn empty_never_conflicts(a in arb_writeset(12)) {
        let empty = WriteSet::new();
        prop_assert!(!a.conflicts_with(&empty));
        prop_assert!(!empty.conflicts_with(&a));
    }

    #[test]
    fn self_conflict_iff_non_empty(a in arb_writeset(12)) {
        prop_assert_eq!(a.conflicts_with(&a), !a.is_empty());
    }

    #[test]
    fn footprint_conflict_agrees_with_direct_test(a in arb_writeset(12), b in arb_writeset(12)) {
        // `conflicts_with_footprint` is the cached fast path the certifier
        // uses; it must agree with the direct test whenever `a` is non-empty.
        let fp: HashSet<_> = a.footprint();
        if !b.is_empty() {
            prop_assert_eq!(b.conflicts_with_footprint(&fp), a.conflicts_with(&b));
        }
    }

    #[test]
    fn merged_conflicts_iff_any_constituent_conflicts(
        a in arb_writeset(8),
        b in arb_writeset(8),
        probe in arb_writeset(8),
    ) {
        let merged = WriteSet::merged([&a, &b]);
        let expected = probe.conflicts_with(&a) || probe.conflicts_with(&b);
        prop_assert_eq!(merged.conflicts_with(&probe), expected);
    }

    #[test]
    fn merged_length_is_sum(a in arb_writeset(8), b in arb_writeset(8)) {
        let merged = WriteSet::merged([&a, &b]);
        prop_assert_eq!(merged.len(), a.len() + b.len());
    }

    #[test]
    fn encoded_len_is_monotone_in_items(a in arb_writeset(8)) {
        // Adding an item never shrinks the encoded size.
        let mut grown = a.clone();
        grown.push(WriteItem::delete(TableId(0), RowKey::Int(999)));
        prop_assert!(grown.encoded_len() > a.encoded_len());
    }
}
