//! The key→shard map of the sharded certification subsystem.
//!
//! Certification scales beyond one writeset-intersection thread by
//! partitioning the row space across *certifier shards*: every `(table, key)`
//! pair is owned by exactly one shard, determined by a hash that every
//! component of the cluster (proxies, certifier shards, recovery tooling)
//! computes identically.  A writeset's *owning shards* are the shards of its
//! footprint; single-shard writesets — the common case when tables are
//! key-partitioned — certify on one shard without touching the others.
//!
//! Determinism matters: the map is consulted on different machines and across
//! process restarts, so [`ShardMap::shard_of`] uses a fixed FNV-1a hash
//! rather than the process-seeded `std` hasher.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::writeset::{RowKey, TableId, WriteSet};

/// Identifier of one certifier shard.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ShardId(pub u32);

impl ShardId {
    /// Returns the shard's index into per-shard vectors.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// Upper bound on the shard count accepted by [`ShardMap::validate`].
///
/// Far above any sensible deployment (each shard is a full Paxos group); the
/// bound exists to catch configuration typos, not to limit scaling.
pub const MAX_SHARDS: usize = 1024;

/// The deterministic key→shard map shared by every cluster component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    shard_count: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, b| {
        (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// The deterministic footprint hash of one `(table, key)` pair.
///
/// [`ShardMap::shard_of`] is this hash modulo the shard count; the
/// certifier's pre-screen index buckets it modulo its bucket count.  Both
/// uses need the same property — identical across processes, machines and
/// runs — so they share one definition.
#[must_use]
pub fn footprint_hash(table: TableId, key: &RowKey) -> u64 {
    let hash = fnv1a(FNV_OFFSET, &table.0.to_le_bytes());
    match key {
        RowKey::Int(i) => fnv1a(fnv1a(hash, &[0x01]), &i.to_le_bytes()),
        RowKey::Pair(a, b) => {
            let h = fnv1a(fnv1a(hash, &[0x02]), &a.to_le_bytes());
            fnv1a(h, &b.to_le_bytes())
        }
        RowKey::Text(s) => fnv1a(fnv1a(hash, &[0x03]), s.as_bytes()),
    }
}

impl ShardMap {
    /// Creates a map over `shard_count` shards.
    ///
    /// A count of zero is recorded as given and rejected by
    /// [`ShardMap::validate`]; callers building a map from a validated
    /// [`crate::ClusterConfig`] never observe it.
    #[must_use]
    pub fn new(shard_count: usize) -> Self {
        ShardMap {
            shard_count: u32::try_from(shard_count).unwrap_or(u32::MAX),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count as usize
    }

    /// `true` for the single-shard (unsharded-equivalent) map.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.shard_count == 1
    }

    /// Validates the map, returning a description of the first problem.
    ///
    /// # Errors
    ///
    /// Returns `Err` for a zero shard count or a count above [`MAX_SHARDS`].
    pub fn validate(&self) -> Result<(), String> {
        if self.shard_count == 0 {
            return Err("a shard map needs at least one shard".to_owned());
        }
        if self.shard_count() > MAX_SHARDS {
            return Err(format!(
                "shard count {} exceeds the maximum of {MAX_SHARDS}",
                self.shard_count
            ));
        }
        Ok(())
    }

    /// The shard owning one `(table, key)` pair.
    ///
    /// The result is a pure function of the arguments and the shard count —
    /// identical across processes, machines and runs.
    #[must_use]
    pub fn shard_of(&self, table: TableId, key: &RowKey) -> ShardId {
        let hash = footprint_hash(table, key);
        ShardId((hash % u64::from(self.shard_count.max(1))) as u32)
    }

    /// The shards owning a writeset, in ascending shard-id order without
    /// duplicates.
    ///
    /// The ascending order is load-bearing: the sharded certifier acquires
    /// shard locks in exactly this order, which is what makes concurrent
    /// multi-shard certifications deadlock-free.  A read-only (empty)
    /// writeset owns no shards.
    #[must_use]
    pub fn shards_of(&self, writeset: &WriteSet) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = writeset
            .items()
            .iter()
            .map(|i| self.shard_of(i.table, &i.key))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

#[cfg(test)]
mod tests {
    use crate::value::Value;
    use crate::writeset::WriteItem;

    use super::*;

    fn ws(pairs: &[(u32, i64)]) -> WriteSet {
        WriteSet::from_items(
            pairs
                .iter()
                .map(|&(t, k)| {
                    WriteItem::update(TableId(t), k, vec![("x".into(), Value::Int(k))])
                })
                .collect(),
        )
    }

    #[test]
    fn validation_rejects_degenerate_counts() {
        assert!(ShardMap::new(0).validate().is_err());
        assert!(ShardMap::new(1).validate().is_ok());
        assert!(ShardMap::new(MAX_SHARDS).validate().is_ok());
        assert!(ShardMap::new(MAX_SHARDS + 1).validate().is_err());
    }

    #[test]
    fn single_shard_maps_everything_to_shard_zero() {
        let map = ShardMap::new(1);
        assert!(map.is_single());
        for key in [RowKey::Int(0), RowKey::Pair(3, 4), RowKey::Text("k".into())] {
            assert_eq!(map.shard_of(TableId(7), &key), ShardId(0));
        }
        assert_eq!(map.shards_of(&ws(&[(0, 1), (1, 2), (2, 3)])), vec![ShardId(0)]);
    }

    #[test]
    fn shard_assignment_is_in_range_and_spread() {
        let map = ShardMap::new(4);
        let mut seen = [false; 4];
        for key in 0..256 {
            let shard = map.shard_of(TableId(0), &RowKey::Int(key));
            assert!(shard.index() < 4);
            seen[shard.index()] = true;
        }
        assert!(seen.iter().all(|s| *s), "256 keys must hit all 4 shards");
    }

    #[test]
    fn shards_of_is_sorted_and_deduplicated() {
        let map = ShardMap::new(8);
        let writeset = ws(&[(0, 1), (0, 2), (0, 1), (3, 9), (1, 40), (2, 17)]);
        let shards = map.shards_of(&writeset);
        assert!(shards.windows(2).all(|w| w[0] < w[1]));
        for item in writeset.items() {
            assert!(shards.contains(&map.shard_of(item.table, &item.key)));
        }
        assert!(map.shards_of(&WriteSet::new()).is_empty());
    }

    #[test]
    fn table_and_key_kind_both_contribute_to_the_hash() {
        let map = ShardMap::new(64);
        // Same key in different tables, and differently-typed keys with the
        // same bytes, should not systematically collide.
        let spread: std::collections::HashSet<ShardId> = (0..32u32)
            .map(|t| map.shard_of(TableId(t), &RowKey::Int(5)))
            .collect();
        assert!(spread.len() > 8, "table id must contribute: {spread:?}");
        assert_ne!(
            map.shard_of(TableId(0), &RowKey::Int(5)),
            map.shard_of(TableId(0), &RowKey::Pair(5, 0)),
        );
    }

    #[test]
    fn shard_id_display_and_index() {
        assert_eq!(ShardId(3).to_string(), "shard-3");
        assert_eq!(ShardId(3).index(), 3);
    }
}
