//! System variants and cluster configuration.
//!
//! The paper evaluates three otherwise-identical replication systems that
//! differ only in where durability lives and whether the database is told the
//! global commit order:
//!
//! | System | Ordering | Durability | Commits at the replica |
//! |--------|----------|------------|------------------------|
//! | `Base` | middleware | database (synchronous WAL) | serial, one fsync each |
//! | `Tashkent-MW` | middleware | middleware (certifier log) | serial but in-memory |
//! | `Tashkent-API` | middleware → database (`COMMIT <seq>`) | database | concurrent, group-committed |
//!
//! [`SystemKind`] selects the variant; [`ClusterConfig`] describes a whole
//! deployment (replica count, certifier group size, IO-channel layout,
//! service times) and is shared by the real engine and the simulator.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Which of the three replication designs a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Ordering in middleware, durability in the database, serial commits.
    Base,
    /// Durability moved to the certifier log; replica commits are in-memory.
    TashkentMw,
    /// Durability stays in the database; the middleware passes the commit
    /// order via the extended `COMMIT <seq>` API.
    TashkentApi,
    /// Tashkent-API with the certifier's own durability fsync disabled
    /// (the `tashAPInoCERT` curve of Figures 4, 6, 8 and 10).  Used only to
    /// isolate the cost of the extra fsync in the certifier; not a deployable
    /// configuration because the middleware can no longer recover.
    TashkentApiNoCertDurability,
}

impl SystemKind {
    /// All deployable systems, in the order the paper plots them.
    pub const ALL: [SystemKind; 3] = [
        SystemKind::Base,
        SystemKind::TashkentMw,
        SystemKind::TashkentApi,
    ];

    /// All systems including the `tashAPInoCERT` analysis configuration.
    pub const ALL_WITH_ANALYSIS: [SystemKind; 4] = [
        SystemKind::Base,
        SystemKind::TashkentMw,
        SystemKind::TashkentApi,
        SystemKind::TashkentApiNoCertDurability,
    ];

    /// `true` if the database replicas keep durability (synchronous commit
    /// records), i.e. Base and both Tashkent-API configurations.
    #[must_use]
    pub fn database_durable(self) -> bool {
        !matches!(self, SystemKind::TashkentMw)
    }

    /// `true` if the certifier synchronously logs certified writesets.
    ///
    /// This is required for middleware recovery in every deployable system;
    /// only the `tashAPInoCERT` analysis configuration turns it off.
    #[must_use]
    pub fn certifier_durable(self) -> bool {
        !matches!(self, SystemKind::TashkentApiNoCertDurability)
    }

    /// `true` if the replica may submit commits concurrently because the
    /// commit order is passed to the database (the Tashkent-API systems).
    #[must_use]
    pub fn ordered_commit_api(self) -> bool {
        matches!(
            self,
            SystemKind::TashkentApi | SystemKind::TashkentApiNoCertDurability
        )
    }

    /// Short label used in benchmark output, matching the paper's curves.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Base => "base",
            SystemKind::TashkentMw => "tashMW",
            SystemKind::TashkentApi => "tashAPI",
            SystemKind::TashkentApiNoCertDurability => "tashAPInoCERT",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// WAL synchronisation mode of a database replica.
///
/// Mirrors the options Section 7.1 describes for off-the-shelf engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncMode {
    /// Every commit record is flushed with a synchronous write (fsync).
    /// This is the standalone-database default and what Base and
    /// Tashkent-API use.
    Durable,
    /// WAL records are still written (preserving physical data integrity)
    /// but commits do not wait for the flush; committed transactions may be
    /// lost on a crash.  "Disable only durability" in Section 7.1, Case 2.
    NoSyncOnCommit,
    /// All synchronous WAL activity is disabled; both durability and physical
    /// data integrity are void on a crash.  "Disable both" in Section 7.1,
    /// Case 1 — the mode Tashkent-MW uses with PostgreSQL, compensated by
    /// middleware-driven dumps.
    Off,
}

impl SyncMode {
    /// `true` if a commit waits for a synchronous disk write.
    #[must_use]
    pub fn commit_is_synchronous(self) -> bool {
        matches!(self, SyncMode::Durable)
    }

    /// `true` if the WAL still protects physical data integrity after a crash.
    #[must_use]
    pub fn preserves_integrity(self) -> bool {
        !matches!(self, SyncMode::Off)
    }
}

/// How the cluster's nodes talk to each other.
///
/// The replication logic is transport-agnostic: the proxies and the
/// certifier exchange the same messages whether they share an address
/// space or a network.  This knob selects the plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// Direct in-process calls (the historical default): proxies invoke the
    /// certifier through shared memory with no serialisation.
    InProcess,
    /// The `tashkent-net` in-memory loopback transport: every message is
    /// framed, encoded and decoded exactly as on a real network, and links
    /// are deterministic and fault-injectable (sever/heal/partition by
    /// seed) — the hook the fault harness uses for partition schedules.
    Loopback,
    /// Real TCP sockets on localhost via non-blocking `std::net`.
    Tcp,
}

impl TransportKind {
    /// All transports, in increasing order of realism.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::InProcess,
        TransportKind::Loopback,
        TransportKind::Tcp,
    ];

    /// `true` if messages cross a real (or simulated) wire and therefore
    /// go through the `tashkent-net` codec.
    #[must_use]
    pub fn is_networked(self) -> bool {
        !matches!(self, TransportKind::InProcess)
    }

    /// Label used in benchmark output and the README transport matrix.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::Loopback => "loopback",
            TransportKind::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Layout of the disk IO channel(s) at each replica.
///
/// The paper's servers have a single disk, so by default the WAL shares the
/// channel with database page reads and dirty-page writebacks
/// ("shared IO").  Putting the database in ramdisk dedicates the channel to
/// logging ("dedicated IO").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoChannelMode {
    /// One disk shared between WAL logging, page reads and page writebacks.
    Shared,
    /// The log has the disk to itself; data pages live in memory (ramdisk).
    Dedicated,
}

impl IoChannelMode {
    /// Label used in figure captions.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IoChannelMode::Shared => "shared IO",
            IoChannelMode::Dedicated => "dedicated IO",
        }
    }
}

/// Durations and rates describing the hardware of the paper's testbed.
///
/// These are the calibration constants of the performance model; the real
/// engine also consumes [`ServiceTimes::fsync`] through its simulated disk
/// device so that functional runs exhibit the same relative costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceTimes {
    /// Time for one synchronous flush to the disk medium.  Section 9.1
    /// measures "about 8 ms" with a 6–12 ms spread.
    pub fsync: Duration,
    /// Spread added to `fsync` depending on where the data lands on disk.
    pub fsync_jitter: Duration,
    /// One-way LAN latency between a proxy and the certifier.
    pub network_one_way: Duration,
    /// CPU time to execute one AllUpdates transaction at a replica.
    pub cpu_allupdates: Duration,
    /// CPU time to execute one TPC-B transaction at a replica.
    pub cpu_tpcb: Duration,
    /// CPU time to execute one TPC-W interaction at a replica (shopping mix
    /// average; TPC-W is CPU bound).
    pub cpu_tpcw: Duration,
    /// CPU time for the certifier to intersection-test one writeset
    /// ("an order of magnitude less work than executing the transaction").
    pub certify_cpu: Duration,
    /// CPU time to apply one remote writeset at a replica (the paper measures
    /// an apply rate of roughly 900 writesets per second when batched).
    pub apply_writeset_cpu: Duration,
    /// Extra non-logging IO pressure on a shared channel per transaction
    /// (page reads / dirty writebacks competing with the WAL).
    pub shared_io_overhead: Duration,
}

impl Default for ServiceTimes {
    fn default() -> Self {
        ServiceTimes {
            fsync: Duration::from_millis(8),
            fsync_jitter: Duration::from_millis(2),
            network_one_way: Duration::from_micros(150),
            cpu_allupdates: Duration::from_micros(600),
            cpu_tpcb: Duration::from_micros(1800),
            cpu_tpcw: Duration::from_millis(25),
            certify_cpu: Duration::from_micros(60),
            apply_writeset_cpu: Duration::from_micros(800),
            shared_io_overhead: Duration::from_micros(900),
        }
    }
}

/// Configuration of a whole replicated deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Which replication design to run.
    pub system: SystemKind,
    /// Number of database replicas (the paper scales 1–15).
    pub replicas: usize,
    /// Number of certifier nodes (the paper uses a leader plus two backups).
    pub certifiers: usize,
    /// Number of certifier shards the row space is partitioned across
    /// (`1` reproduces the paper's single certifier; each shard is its own
    /// `certifiers`-node replicated group).  See [`crate::ShardMap`].
    pub certifier_shards: usize,
    /// Closed-loop clients attached to each replica.
    pub clients_per_replica: usize,
    /// IO channel layout at the replicas.
    pub io_mode: IoChannelMode,
    /// Hardware service times.
    pub service_times: ServiceTimes,
    /// Fraction of certification requests the certifier aborts at random
    /// *after* performing the full check (Section 9.5's forced abort rates).
    pub forced_abort_rate: f64,
    /// If a replica hears nothing from the certifier for this long, its proxy
    /// proactively fetches remote writesets (bounded staleness, Section 6.2).
    pub staleness_bound: Duration,
    /// Enable local certification at the proxy (Section 6.2 optimisation).
    pub local_certification: bool,
    /// Enable eager pre-certification / deadlock avoidance (Section 8.2).
    pub eager_precertification: bool,
    /// How proxies reach the certifier (appended last so configurations
    /// serialised before networking existed keep their field order).
    pub transport: TransportKind,
}

impl ClusterConfig {
    /// A small configuration convenient for tests and the quickstart example.
    #[must_use]
    pub fn small(system: SystemKind) -> Self {
        ClusterConfig {
            system,
            replicas: 2,
            certifiers: 3,
            certifier_shards: 1,
            clients_per_replica: 2,
            io_mode: IoChannelMode::Dedicated,
            service_times: ServiceTimes {
                // Keep functional tests fast: a tiny but non-zero fsync so
                // grouping behaviour is still observable.
                fsync: Duration::from_micros(200),
                fsync_jitter: Duration::from_micros(0),
                network_one_way: Duration::from_micros(0),
                ..ServiceTimes::default()
            },
            forced_abort_rate: 0.0,
            staleness_bound: Duration::from_millis(50),
            local_certification: true,
            eager_precertification: true,
            transport: TransportKind::InProcess,
        }
    }

    /// The paper's testbed configuration for a given system and replica count.
    #[must_use]
    pub fn paper(system: SystemKind, replicas: usize, io_mode: IoChannelMode) -> Self {
        ClusterConfig {
            system,
            replicas,
            certifiers: 3,
            certifier_shards: 1,
            clients_per_replica: 10,
            io_mode,
            service_times: ServiceTimes::default(),
            forced_abort_rate: 0.0,
            staleness_bound: Duration::from_secs(2),
            local_certification: true,
            eager_precertification: true,
            transport: TransportKind::InProcess,
        }
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the replica count or certifier group is empty, the
    /// abort rate is outside `[0, 1]`, or no clients are configured.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("a cluster needs at least one replica".to_owned());
        }
        if self.certifiers == 0 {
            return Err("a cluster needs at least one certifier".to_owned());
        }
        crate::ShardMap::new(self.certifier_shards).validate()?;
        if self.clients_per_replica == 0 {
            return Err("each replica needs at least one client".to_owned());
        }
        if !(0.0..=1.0).contains(&self.forced_abort_rate) {
            return Err(format!(
                "forced abort rate {} outside [0, 1]",
                self.forced_abort_rate
            ));
        }
        Ok(())
    }

    /// Majority size of the certifier group (progress requires this many
    /// certifiers up, Section 7).
    #[must_use]
    pub fn certifier_majority(&self) -> usize {
        self.certifiers / 2 + 1
    }

    /// The WAL sync mode a replica database should run with under this
    /// system (Tashkent-MW disables synchronous writes, everything else keeps
    /// them).
    #[must_use]
    pub fn replica_sync_mode(&self) -> SyncMode {
        if self.system.database_durable() {
            SyncMode::Durable
        } else {
            SyncMode::Off
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_kind_properties_match_paper_table() {
        assert!(SystemKind::Base.database_durable());
        assert!(SystemKind::TashkentApi.database_durable());
        assert!(!SystemKind::TashkentMw.database_durable());

        assert!(SystemKind::Base.certifier_durable());
        assert!(SystemKind::TashkentMw.certifier_durable());
        assert!(SystemKind::TashkentApi.certifier_durable());
        assert!(!SystemKind::TashkentApiNoCertDurability.certifier_durable());

        assert!(!SystemKind::Base.ordered_commit_api());
        assert!(!SystemKind::TashkentMw.ordered_commit_api());
        assert!(SystemKind::TashkentApi.ordered_commit_api());
        assert!(SystemKind::TashkentApiNoCertDurability.ordered_commit_api());
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(SystemKind::Base.to_string(), "base");
        assert_eq!(SystemKind::TashkentMw.to_string(), "tashMW");
        assert_eq!(SystemKind::TashkentApi.to_string(), "tashAPI");
        assert_eq!(
            SystemKind::TashkentApiNoCertDurability.to_string(),
            "tashAPInoCERT"
        );
        assert_eq!(IoChannelMode::Shared.label(), "shared IO");
        assert_eq!(IoChannelMode::Dedicated.label(), "dedicated IO");
    }

    #[test]
    fn sync_mode_semantics() {
        assert!(SyncMode::Durable.commit_is_synchronous());
        assert!(!SyncMode::NoSyncOnCommit.commit_is_synchronous());
        assert!(!SyncMode::Off.commit_is_synchronous());
        assert!(SyncMode::Durable.preserves_integrity());
        assert!(SyncMode::NoSyncOnCommit.preserves_integrity());
        assert!(!SyncMode::Off.preserves_integrity());
    }

    #[test]
    fn cluster_config_validation() {
        let mut cfg = ClusterConfig::small(SystemKind::Base);
        assert!(cfg.validate().is_ok());
        cfg.replicas = 0;
        assert!(cfg.validate().is_err());
        cfg.replicas = 1;
        cfg.forced_abort_rate = 1.5;
        assert!(cfg.validate().is_err());
        cfg.forced_abort_rate = 0.2;
        cfg.certifiers = 0;
        assert!(cfg.validate().is_err());
        cfg.certifiers = 3;
        cfg.clients_per_replica = 0;
        assert!(cfg.validate().is_err());
        cfg.clients_per_replica = 2;
        cfg.certifier_shards = 0;
        assert!(cfg.validate().is_err());
        cfg.certifier_shards = 4;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn majority_and_sync_mode_derivation() {
        let cfg = ClusterConfig::paper(SystemKind::TashkentMw, 15, IoChannelMode::Shared);
        assert_eq!(cfg.certifier_majority(), 2);
        assert_eq!(cfg.replica_sync_mode(), SyncMode::Off);
        let cfg = ClusterConfig::paper(SystemKind::Base, 4, IoChannelMode::Dedicated);
        assert_eq!(cfg.replica_sync_mode(), SyncMode::Durable);
        assert_eq!(cfg.clients_per_replica, 10);
    }

    #[test]
    fn transport_labels_and_defaults() {
        assert_eq!(TransportKind::InProcess.to_string(), "in-process");
        assert_eq!(TransportKind::Loopback.to_string(), "loopback");
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert!(!TransportKind::InProcess.is_networked());
        assert!(TransportKind::Loopback.is_networked());
        assert!(TransportKind::Tcp.is_networked());
        // Existing constructors stay in-process so nothing changes under
        // callers that predate networking.
        let cfg = ClusterConfig::small(SystemKind::Base);
        assert_eq!(cfg.transport, TransportKind::InProcess);
        let cfg = ClusterConfig::paper(SystemKind::TashkentApi, 4, IoChannelMode::Shared);
        assert_eq!(cfg.transport, TransportKind::InProcess);
    }

    #[test]
    fn default_service_times_match_measurements() {
        let st = ServiceTimes::default();
        assert_eq!(st.fsync, Duration::from_millis(8));
        assert!(st.certify_cpu < st.cpu_allupdates);
        // Certification is an order of magnitude cheaper than execution.
        assert!(st.cpu_allupdates.as_micros() >= 10 * st.certify_cpu.as_micros());
    }
}
