//! Writesets and write-write conflict detection.
//!
//! A *writeset* captures the minimal set of actions necessary to recreate a
//! transaction's modifications (Section 2 of the paper): for every row the
//! transaction touched it records the table, the primary key, the kind of
//! operation and — for inserts and updates — the new column values.
//!
//! Writesets serve three purposes in the system:
//!
//! 1. **Certification.**  The certifier detects write-write conflicts by
//!    *intersecting* the committing writeset with the writesets committed at
//!    versions newer than the transaction's start version
//!    ([`WriteSet::conflicts_with`]).
//! 2. **Update propagation.**  Remote writesets are shipped to every replica
//!    and re-applied there instead of re-executing the original SQL.
//! 3. **Durability.**  In Tashkent-MW the certifier's persistent log of
//!    writesets *is* the durable copy of every committed update transaction.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Version;
use crate::value::Value;

/// Identifier of a replicated table.
///
/// Tables are registered in a schema catalogue at database creation time and
/// referred to by their dense index afterwards, which keeps writesets compact
/// and intersection tests cheap.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TableId(pub u32);

impl TableId {
    /// Returns the raw table index.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table-{}", self.0)
    }
}

/// Primary key of a row.
///
/// All benchmark schemas use either an integer primary key or a compound key
/// that can be flattened into an integer plus a discriminator, so a compact
/// enum suffices and avoids heap allocation on the hot certification path for
/// the common case.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RowKey {
    /// Single integer key (`accounts.aid`, `items.i_id`, ...).
    Int(i64),
    /// Compound integer key (e.g. TPC-W `order_line (ol_o_id, ol_i_id)`).
    Pair(i64, i64),
    /// Text key (rarely used; TPC-W customer user names).
    Text(String),
}

impl RowKey {
    /// Approximate encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            RowKey::Int(_) => 8,
            RowKey::Pair(_, _) => 16,
            RowKey::Text(s) => 4 + s.len(),
        }
    }
}

impl fmt::Display for RowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowKey::Int(i) => write!(f, "{i}"),
            RowKey::Pair(a, b) => write!(f, "({a},{b})"),
            RowKey::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for RowKey {
    fn from(v: i64) -> Self {
        RowKey::Int(v)
    }
}

impl From<(i64, i64)> for RowKey {
    fn from(v: (i64, i64)) -> Self {
        RowKey::Pair(v.0, v.1)
    }
}

impl From<&str> for RowKey {
    fn from(v: &str) -> Self {
        RowKey::Text(v.to_owned())
    }
}

/// The kind of modification captured for one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WriteOp {
    /// A newly inserted row: the full row image.
    Insert {
        /// Column name / value pairs of the new row.
        row: Vec<(String, Value)>,
    },
    /// An update: only the modified columns.
    Update {
        /// Modified column name / value pairs.
        columns: Vec<(String, Value)>,
    },
    /// A deletion: only the primary key is needed.
    Delete,
}

impl WriteOp {
    /// Approximate encoded size in bytes of the operation payload.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            WriteOp::Insert { row } => {
                1 + row
                    .iter()
                    .map(|(n, v)| 2 + n.len() + v.encoded_len())
                    .sum::<usize>()
            }
            WriteOp::Update { columns } => {
                1 + columns
                    .iter()
                    .map(|(n, v)| 2 + n.len() + v.encoded_len())
                    .sum::<usize>()
            }
            WriteOp::Delete => 1,
        }
    }

    /// Names of the columns this operation modifies (empty for deletes).
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        let cols: &[(String, Value)] = match self {
            WriteOp::Insert { row } => row,
            WriteOp::Update { columns } => columns,
            WriteOp::Delete => &[],
        };
        cols.iter().map(|(n, _)| n.as_str())
    }
}

/// One row-level entry of a writeset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteItem {
    /// Table the row belongs to.
    pub table: TableId,
    /// Primary key of the modified row.
    pub key: RowKey,
    /// The modification.
    pub op: WriteOp,
}

impl WriteItem {
    /// Creates an update item touching the given columns.
    #[must_use]
    pub fn update(table: TableId, key: impl Into<RowKey>, columns: Vec<(String, Value)>) -> Self {
        WriteItem {
            table,
            key: key.into(),
            op: WriteOp::Update { columns },
        }
    }

    /// Creates an insert item carrying the full new row.
    #[must_use]
    pub fn insert(table: TableId, key: impl Into<RowKey>, row: Vec<(String, Value)>) -> Self {
        WriteItem {
            table,
            key: key.into(),
            op: WriteOp::Insert { row },
        }
    }

    /// Creates a delete item.
    #[must_use]
    pub fn delete(table: TableId, key: impl Into<RowKey>) -> Self {
        WriteItem {
            table,
            key: key.into(),
            op: WriteOp::Delete,
        }
    }

    /// Approximate encoded size in bytes (table id + key + payload).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        4 + self.key.encoded_len() + self.op.encoded_len()
    }
}

/// A transaction's writeset: the ordered list of row modifications.
///
/// The order of items is the order in which the transaction performed the
/// writes; re-applying the items in order on another replica recreates the
/// transaction's effect.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WriteSet {
    items: Vec<WriteItem>,
}

impl WriteSet {
    /// Creates an empty writeset (the writeset of a read-only transaction).
    #[must_use]
    pub fn new() -> Self {
        WriteSet { items: Vec::new() }
    }

    /// Creates a writeset from row modifications.
    #[must_use]
    pub fn from_items(items: Vec<WriteItem>) -> Self {
        WriteSet { items }
    }

    /// Adds one row modification.
    ///
    /// If the transaction already wrote the same row, the later write is
    /// still recorded as a separate item so that replaying the items in order
    /// yields the same final row image.
    pub fn push(&mut self, item: WriteItem) {
        self.items.push(item);
    }

    /// Returns `true` for the empty writeset, i.e. a read-only transaction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of row modifications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The row modifications, in write order.
    #[must_use]
    pub fn items(&self) -> &[WriteItem] {
        &self.items
    }

    /// Approximate encoded size in bytes.
    ///
    /// This is the size that is logged by the certifier and that travels on
    /// the wire during update propagation; the paper quotes averages of
    /// 54 B (AllUpdates), 158 B (TPC-B) and 275 B (TPC-W).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        4 + self.items.iter().map(WriteItem::encoded_len).sum::<usize>()
    }

    /// The set of `(table, key)` pairs this writeset touches.
    ///
    /// This *footprint* is what certification intersects: two writesets
    /// conflict exactly when their footprints share an element.
    #[must_use]
    pub fn footprint(&self) -> HashSet<(TableId, RowKey)> {
        self.items
            .iter()
            .map(|i| (i.table, i.key.clone()))
            .collect()
    }

    /// Tests whether this writeset has a write-write conflict with `other`.
    ///
    /// The test is symmetric: `a.conflicts_with(&b) == b.conflicts_with(&a)`.
    /// An empty writeset never conflicts with anything.
    #[must_use]
    pub fn conflicts_with(&self, other: &WriteSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        // Intersect using the smaller footprint as the probe side.
        let (small, large) = if self.items.len() <= other.items.len() {
            (self, other)
        } else {
            (other, self)
        };
        let footprint = large.footprint();
        small
            .items
            .iter()
            .any(|i| footprint.contains(&(i.table, i.key.clone())))
    }

    /// Tests conflict against a pre-computed footprint.
    ///
    /// The certifier keeps the footprints of recently committed writesets
    /// cached, so the hot certification path avoids rebuilding hash sets.
    #[must_use]
    pub fn conflicts_with_footprint(&self, footprint: &HashSet<(TableId, RowKey)>) -> bool {
        self.items
            .iter()
            .any(|i| footprint.contains(&(i.table, i.key.clone())))
    }

    /// Merges several writesets into one, preserving their relative order.
    ///
    /// This is how the proxy *groups remote writesets*: the effects of
    /// transactions `T1, T2, T3` become one transaction `T1_2_3` with
    /// writeset `{W1, W2, W3}` (Section 3, "Grouping remote writesets").
    #[must_use]
    pub fn merged<'a>(sets: impl IntoIterator<Item = &'a WriteSet>) -> WriteSet {
        let mut out = WriteSet::new();
        for ws in sets {
            out.items.extend(ws.items.iter().cloned());
        }
        out
    }

    /// Iterates over the distinct tables this writeset touches.
    #[must_use]
    pub fn tables(&self) -> HashSet<TableId> {
        self.items.iter().map(|i| i.table).collect()
    }
}

impl fmt::Display for WriteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WriteSet[{} items, {} bytes]", self.len(), self.encoded_len())
    }
}

/// A writeset together with the version at which it committed globally.
///
/// This is the unit stored in the certifier log and shipped to replicas as a
/// *remote writeset*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionedWriteSet {
    /// Global version created by this transaction's commit.
    pub commit_version: Version,
    /// The transaction's writeset.
    pub writeset: WriteSet,
}

impl VersionedWriteSet {
    /// Creates a new versioned writeset.
    #[must_use]
    pub fn new(commit_version: Version, writeset: WriteSet) -> Self {
        VersionedWriteSet {
            commit_version,
            writeset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(table: u32, keys: &[i64]) -> WriteSet {
        WriteSet::from_items(
            keys.iter()
                .map(|&k| {
                    WriteItem::update(TableId(table), k, vec![("x".into(), Value::Int(k))])
                })
                .collect(),
        )
    }

    #[test]
    fn empty_writeset_is_read_only() {
        let e = WriteSet::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.conflicts_with(&ws(0, &[1, 2, 3])));
        assert!(!ws(0, &[1]).conflicts_with(&e));
    }

    #[test]
    fn conflict_requires_same_table_and_key() {
        let a = ws(0, &[1, 2, 3]);
        let b = ws(0, &[3, 4]);
        let c = ws(0, &[4, 5]);
        let d = ws(1, &[1, 2, 3]); // Same keys, different table.
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
        assert!(!a.conflicts_with(&d));
    }

    #[test]
    fn conflict_with_precomputed_footprint() {
        let a = ws(2, &[10, 20]);
        let b = ws(2, &[20, 30]);
        let fp = a.footprint();
        assert!(b.conflicts_with_footprint(&fp));
        assert!(!ws(2, &[40]).conflicts_with_footprint(&fp));
    }

    #[test]
    fn merged_preserves_order_and_content() {
        let a = ws(0, &[1, 2]);
        let b = ws(0, &[3]);
        let m = WriteSet::merged([&a, &b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.items()[0].key, RowKey::Int(1));
        assert_eq!(m.items()[2].key, RowKey::Int(3));
        // The merged writeset conflicts with anything either constituent
        // conflicts with.
        assert!(m.conflicts_with(&ws(0, &[3, 9])));
        assert!(m.conflicts_with(&ws(0, &[1])));
    }

    #[test]
    fn encoded_len_grows_with_items() {
        let small = ws(0, &[1]);
        let large = ws(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(small.encoded_len() > 0);
        assert!(large.encoded_len() > small.encoded_len());
    }

    #[test]
    fn item_constructors_set_op_kind() {
        let ins = WriteItem::insert(TableId(0), 1, vec![("a".into(), Value::Int(1))]);
        let upd = WriteItem::update(TableId(0), 1, vec![("a".into(), Value::Int(2))]);
        let del = WriteItem::delete(TableId(0), 1);
        assert!(matches!(ins.op, WriteOp::Insert { .. }));
        assert!(matches!(upd.op, WriteOp::Update { .. }));
        assert!(matches!(del.op, WriteOp::Delete));
        assert_eq!(del.op.encoded_len(), 1);
        assert_eq!(ins.op.column_names().collect::<Vec<_>>(), vec!["a"]);
        assert_eq!(del.op.column_names().count(), 0);
    }

    #[test]
    fn tables_lists_distinct_tables() {
        let mut w = ws(0, &[1]);
        w.push(WriteItem::delete(TableId(5), 9));
        w.push(WriteItem::delete(TableId(5), 10));
        let tables = w.tables();
        assert_eq!(tables.len(), 2);
        assert!(tables.contains(&TableId(0)));
        assert!(tables.contains(&TableId(5)));
    }

    #[test]
    fn row_key_kinds() {
        assert_eq!(RowKey::from(3i64), RowKey::Int(3));
        assert_eq!(RowKey::from((1i64, 2i64)), RowKey::Pair(1, 2));
        assert_eq!(RowKey::from("k"), RowKey::Text("k".into()));
        assert_eq!(RowKey::Int(1).encoded_len(), 8);
        assert_eq!(RowKey::Pair(1, 2).encoded_len(), 16);
        assert_eq!(RowKey::Text("ab".into()).encoded_len(), 6);
        assert_eq!(RowKey::Pair(1, 2).to_string(), "(1,2)");
    }

    #[test]
    fn versioned_writeset_carries_version() {
        let v = VersionedWriteSet::new(Version(7), ws(0, &[1]));
        assert_eq!(v.commit_version, Version(7));
        assert_eq!(v.writeset.len(), 1);
    }
}
