//! Identifiers and version numbers.
//!
//! The paper uses a single monotonically increasing *version* to name
//! database snapshots: the certifier's `system_version`, each replica's
//! `replica_version`, a transaction's `tx_start_version` and, for update
//! transactions, its `tx_commit_version`.  [`Version`] models that counter.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A database snapshot version.
///
/// Version `0` is the initial, empty state of the database.  Every committed
/// update transaction creates the next version.  The certifier owns the
/// global `system_version`; each replica tracks the prefix it has applied in
/// its `replica_version`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The initial version of an empty database.
    pub const ZERO: Version = Version(0);

    /// Returns the next version (the version created by one more commit).
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// Returns the previous version, saturating at zero.
    #[must_use]
    pub fn prev(self) -> Version {
        Version(self.0.saturating_sub(1))
    }

    /// Returns the raw counter value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns `true` for the initial (empty database) version.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Number of versions between `self` and an earlier version `other`.
    ///
    /// Returns zero if `other` is newer than `self`.
    #[must_use]
    pub fn distance_from(self, other: Version) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(v: u64) -> Self {
        Version(v)
    }
}

impl From<Version> for u64 {
    fn from(v: Version) -> Self {
        v.0
    }
}

/// Identifier of a database replica (and of its attached proxy).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReplicaId(pub u32);

impl ReplicaId {
    /// Returns the raw identifier.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replica-{}", self.0)
    }
}

/// Identifier of a client connection (one closed-loop workload driver).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Identifier of a transaction, unique within a replica's storage engine.
///
/// Transaction ids are a local implementation detail of the storage engine;
/// the replication protocol only ever refers to transactions by the version
/// they commit at (their `tx_commit_version`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

impl TxId {
    /// Returns the raw identifier.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_next_and_prev() {
        let v = Version::ZERO;
        assert!(v.is_zero());
        assert_eq!(v.next(), Version(1));
        assert_eq!(v.next().prev(), Version::ZERO);
        // `prev` saturates at zero rather than wrapping.
        assert_eq!(Version::ZERO.prev(), Version::ZERO);
    }

    #[test]
    fn version_ordering_follows_counter() {
        assert!(Version(3) > Version(2));
        assert!(Version(2) >= Version(2));
        assert_eq!(Version(7).distance_from(Version(4)), 3);
        assert_eq!(Version(4).distance_from(Version(7)), 0);
    }

    #[test]
    fn version_display_and_conversions() {
        let v: Version = 42u64.into();
        assert_eq!(v.to_string(), "v42");
        let raw: u64 = v.into();
        assert_eq!(raw, 42);
        assert_eq!(v.value(), 42);
    }

    #[test]
    fn id_display_formats() {
        assert_eq!(ReplicaId(3).to_string(), "replica-3");
        assert_eq!(ClientId(9).to_string(), "client-9");
        assert_eq!(TxId(11).to_string(), "tx-11");
        assert_eq!(TxId(11).value(), 11);
        assert_eq!(ReplicaId(3).value(), 3);
    }
}
