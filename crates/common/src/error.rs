//! The common error type shared by every crate in the workspace.

use std::fmt;

use crate::ids::{TxId, Version};

/// Convenient alias for results using the workspace [`Error`] type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage engine, the replication middleware and the
/// cluster API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The transaction was aborted because of a write-write conflict with a
    /// concurrently committed transaction (snapshot isolation's
    /// first-committer-wins rule), either locally or at the certifier.
    WriteConflict {
        /// The aborted transaction.
        tx: TxId,
        /// Human-readable description of the conflicting access.
        detail: String,
    },
    /// The certifier rejected the transaction during certification.
    CertificationFailed {
        /// The start version the transaction was certified against.
        start_version: Version,
        /// Description of the conflict.
        detail: String,
    },
    /// The transaction was chosen as a deadlock victim.
    Deadlock {
        /// The aborted transaction.
        tx: TxId,
    },
    /// The referenced transaction does not exist or has already finished.
    UnknownTransaction(TxId),
    /// The referenced table has not been created.
    UnknownTable(String),
    /// The referenced row does not exist.
    RowNotFound {
        /// Table name.
        table: String,
        /// Stringified key.
        key: String,
    },
    /// An operation was attempted on a transaction in the wrong state
    /// (e.g. writing after commit).
    InvalidTransactionState {
        /// The offending transaction.
        tx: TxId,
        /// What was expected.
        expected: &'static str,
    },
    /// The storage engine or a middleware component has been shut down or has
    /// crashed (fault injection), so the request cannot be served.
    Unavailable(String),
    /// The ordered-commit API was misused (e.g. committing sequence 9 without
    /// 1–8 ever arriving) and the engine resolved the stall by aborting.
    OrderedCommitTimeout {
        /// The commit sequence number that never became eligible.
        sequence: Version,
    },
    /// An IO error from the (simulated or real) log device.
    Io(String),
    /// A corrupted or truncated log / dump file was encountered during
    /// recovery.
    Corruption(String),
    /// Configuration rejected by validation.
    InvalidConfig(String),
    /// The proxy or certifier received a message it cannot interpret.
    Protocol(String),
}

impl Error {
    /// `true` if the error denotes a transaction abort that the client may
    /// simply retry (conflicts, deadlocks, certification failures).
    #[must_use]
    pub fn is_retryable_abort(&self) -> bool {
        matches!(
            self,
            Error::WriteConflict { .. }
                | Error::CertificationFailed { .. }
                | Error::Deadlock { .. }
                | Error::OrderedCommitTimeout { .. }
        )
    }

    /// `true` if the error denotes a crashed / shut-down component.
    #[must_use]
    pub fn is_unavailable(&self) -> bool {
        matches!(self, Error::Unavailable(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WriteConflict { tx, detail } => {
                write!(f, "write-write conflict aborted {tx}: {detail}")
            }
            Error::CertificationFailed {
                start_version,
                detail,
            } => write!(
                f,
                "certification failed (start version {start_version}): {detail}"
            ),
            Error::Deadlock { tx } => write!(f, "{tx} chosen as deadlock victim"),
            Error::UnknownTransaction(tx) => write!(f, "unknown transaction {tx}"),
            Error::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            Error::RowNotFound { table, key } => {
                write!(f, "row {key} not found in table '{table}'")
            }
            Error::InvalidTransactionState { tx, expected } => {
                write!(f, "{tx} is not {expected}")
            }
            Error::Unavailable(what) => write!(f, "component unavailable: {what}"),
            Error::OrderedCommitTimeout { sequence } => {
                write!(f, "ordered commit {sequence} never became eligible")
            }
            Error::Io(detail) => write!(f, "io error: {detail}"),
            Error::Corruption(detail) => write!(f, "log corruption: {detail}"),
            Error::InvalidConfig(detail) => write!(f, "invalid configuration: {detail}"),
            Error::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(Error::WriteConflict {
            tx: TxId(1),
            detail: "x".into()
        }
        .is_retryable_abort());
        assert!(Error::Deadlock { tx: TxId(1) }.is_retryable_abort());
        assert!(Error::CertificationFailed {
            start_version: Version(3),
            detail: "y".into()
        }
        .is_retryable_abort());
        assert!(!Error::UnknownTable("t".into()).is_retryable_abort());
        assert!(!Error::Io("disk".into()).is_retryable_abort());
    }

    #[test]
    fn unavailable_classification() {
        assert!(Error::Unavailable("replica down".into()).is_unavailable());
        assert!(!Error::Io("x".into()).is_unavailable());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = Error::RowNotFound {
            table: "accounts".into(),
            key: "42".into(),
        };
        assert!(e.to_string().contains("accounts"));
        assert!(e.to_string().contains("42"));
        let e = Error::OrderedCommitTimeout {
            sequence: Version(9),
        };
        assert!(e.to_string().contains("v9"));
    }
}
