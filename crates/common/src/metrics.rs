//! Cluster-wide metrics: a lock-cheap registry of counters, gauges and
//! per-stage latency histograms, plus per-transaction commit-path traces.
//!
//! The paper's central claims are about *where time goes on the commit
//! path* — uniting durability with ordering moves the fsync out of the
//! critical section — so every runtime component records the time it
//! contributes to one of six lifecycle [`Stage`]s:
//!
//! | Stage | Measured where |
//! |-------|----------------|
//! | [`Stage::Begin`]    | proxy: snapshot acquisition |
//! | [`Stage::Execute`]  | proxy: client work between begin and commit |
//! | [`Stage::Certify`]  | proxy: certification round-trip |
//! | [`Stage::Durable`]  | certifier: home-shard majority fsync |
//! | [`Stage::Announce`] | engine: wait for the version announce |
//! | [`Stage::Install`]  | proxy/engine: writeset installation |
//!
//! Recording is designed to be cheap enough to leave on in production
//! runs: counters and gauges are single atomic operations, histograms sit
//! behind a small pool of sharded mutexes with per-thread affinity, and a
//! registry constructed with [`MetricsRegistry::disabled`] short-circuits
//! every record call on one branch (the `sharded_certification` bench
//! compares the two modes; the acceptance bar is ≤ 5 % overhead).
//!
//! A [`MetricsSnapshot`] is a self-contained copy of the registry that can
//! be serialised with [`MetricsSnapshot::to_bytes`] / decoded with
//! [`MetricsSnapshot::from_bytes`] (a hand-rolled length-prefixed binary
//! layout in the style of `tashkent-storage`'s codec — the vendored serde
//! stand-in provides derives only).  The flight recorder in the `tashkent`
//! crate samples snapshots on an interval into a ring buffer so post-hoc
//! analysis can see a sub-second timeline of a run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::events::{
    merge_timelines, Component, Event, EventRing, COMPONENT_COUNT, EVENT_RING_CAPACITY,
};
use crate::stats::LatencyHistogram;
use crate::{Error, Result};

/// Number of commit-path lifecycle stages.
pub const STAGE_COUNT: usize = 6;

/// One lifecycle stage of an update transaction's commit path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Snapshot acquisition at the proxy (`begin`).
    Begin,
    /// Client execution between begin and the commit submission.
    Execute,
    /// Certification round-trip as observed by the proxy.
    Certify,
    /// Home-shard durable append (the majority fsync) at the certifier.
    Durable,
    /// The engine's wait for its turn in the global commit order.
    Announce,
    /// Writeset installation (local commit apply or remote apply).
    Install,
}

impl Stage {
    /// All stages in commit-path order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Begin,
        Stage::Execute,
        Stage::Certify,
        Stage::Durable,
        Stage::Announce,
        Stage::Install,
    ];

    /// Dense index of this stage, `0 ..= 5` in commit-path order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Begin => 0,
            Stage::Execute => 1,
            Stage::Certify => 2,
            Stage::Durable => 3,
            Stage::Announce => 4,
            Stage::Install => 5,
        }
    }

    /// Column label used by `figures -- metrics`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Begin => "begin",
            Stage::Execute => "execute",
            Stage::Certify => "certify",
            Stage::Durable => "durable",
            Stage::Announce => "announce",
            Stage::Install => "install",
        }
    }
}

/// Number of defined counters.
pub const COUNTER_COUNT: usize = 22;

/// A monotonic event counter of the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CounterId {
    /// Transactions begun at any proxy.
    TxBegun,
    /// Transactions committed (updates and read-only).
    TxCommitted,
    /// Transactions aborted with a retryable conflict.
    TxAborted,
    /// Certification requests received by the certifier.
    CertifyRequests,
    /// Certification requests decided *commit*.
    CertifyCommits,
    /// Certification requests decided *abort* (conflicts + forced aborts).
    CertifyAborts,
    /// Durable appends to a certifier shard's replicated log.
    DurableAppends,
    /// Synchronous WAL flushes performed by replica engines.
    WalFsyncs,
    /// WAL records made durable across those flushes.
    WalRecords,
    /// Remote writesets installed by proxies.
    RemoteInstalls,
    /// Lock acquisitions that had to block on a conflicting holder.
    LockWaits,
    /// Checkpoint images sealed (replica baselines and certifier shards).
    CheckpointsSealed,
    /// Certified-log entries discarded by watermark-driven truncation.
    TrimmedLogEntries,
    /// Replica WAL records discarded by watermark-driven truncation.
    TrimmedWalRecords,
    /// Payload bytes written to the wire by network sessions (frame
    /// overhead included).
    NetBytesSent,
    /// Payload bytes read from the wire by network sessions.
    NetBytesReceived,
    /// Protocol messages exchanged over network sessions (both directions).
    NetMessages,
    /// Session re-establishments after a broken or severed link.
    NetReconnects,
    /// Writesets certified through batched epochs (the sum of epoch sizes;
    /// divided by the number of `certify_batch` journal events it yields the
    /// mean epoch size).
    CertifyBatchSize,
    /// Certifications whose footprint provably intersected nothing in the
    /// conflict window: the pre-screen let them skip the intersection scan.
    PrescreenHits,
    /// Certifications the pre-screen could not clear (a bucket was newer
    /// than the snapshot), which therefore paid the full intersection scan.
    PrescreenMisses,
    /// Fault-injection transitions on the cluster surface: every node crash
    /// and every successful recovery increments it.  A non-zero delta over a
    /// sampling window is edge evidence that fault injection touched the
    /// cluster — even when a crash/recover pair lands entirely between two
    /// samples, where the level-sampled [`GaugeId::NodesDown`] never shows
    /// it.  The anomaly watchdog's drain-stall detector stands down while
    /// this counter moves within its lookback.
    FaultTransitions,
}

impl CounterId {
    /// All counters, in [`CounterId::index`] order.
    pub const ALL: [CounterId; COUNTER_COUNT] = [
        CounterId::TxBegun,
        CounterId::TxCommitted,
        CounterId::TxAborted,
        CounterId::CertifyRequests,
        CounterId::CertifyCommits,
        CounterId::CertifyAborts,
        CounterId::DurableAppends,
        CounterId::WalFsyncs,
        CounterId::WalRecords,
        CounterId::RemoteInstalls,
        CounterId::LockWaits,
        CounterId::CheckpointsSealed,
        CounterId::TrimmedLogEntries,
        CounterId::TrimmedWalRecords,
        CounterId::NetBytesSent,
        CounterId::NetBytesReceived,
        CounterId::NetMessages,
        CounterId::NetReconnects,
        CounterId::CertifyBatchSize,
        CounterId::PrescreenHits,
        CounterId::PrescreenMisses,
        CounterId::FaultTransitions,
    ];

    /// Dense index of this counter.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CounterId::TxBegun => 0,
            CounterId::TxCommitted => 1,
            CounterId::TxAborted => 2,
            CounterId::CertifyRequests => 3,
            CounterId::CertifyCommits => 4,
            CounterId::CertifyAborts => 5,
            CounterId::DurableAppends => 6,
            CounterId::WalFsyncs => 7,
            CounterId::WalRecords => 8,
            CounterId::RemoteInstalls => 9,
            CounterId::LockWaits => 10,
            CounterId::CheckpointsSealed => 11,
            CounterId::TrimmedLogEntries => 12,
            CounterId::TrimmedWalRecords => 13,
            CounterId::NetBytesSent => 14,
            CounterId::NetBytesReceived => 15,
            CounterId::NetMessages => 16,
            CounterId::NetReconnects => 17,
            CounterId::CertifyBatchSize => 18,
            CounterId::PrescreenHits => 19,
            CounterId::PrescreenMisses => 20,
            CounterId::FaultTransitions => 21,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CounterId::TxBegun => "tx_begun",
            CounterId::TxCommitted => "tx_committed",
            CounterId::TxAborted => "tx_aborted",
            CounterId::CertifyRequests => "certify_requests",
            CounterId::CertifyCommits => "certify_commits",
            CounterId::CertifyAborts => "certify_aborts",
            CounterId::DurableAppends => "durable_appends",
            CounterId::WalFsyncs => "wal_fsyncs",
            CounterId::WalRecords => "wal_records",
            CounterId::RemoteInstalls => "remote_installs",
            CounterId::LockWaits => "lock_waits",
            CounterId::CheckpointsSealed => "checkpoints_sealed",
            CounterId::TrimmedLogEntries => "trimmed_log_entries",
            CounterId::TrimmedWalRecords => "trimmed_wal_records",
            CounterId::NetBytesSent => "net_bytes_sent",
            CounterId::NetBytesReceived => "net_bytes_received",
            CounterId::NetMessages => "net_messages",
            CounterId::NetReconnects => "net_reconnects",
            CounterId::CertifyBatchSize => "certify_batch_size",
            CounterId::PrescreenHits => "prescreen_hits",
            CounterId::PrescreenMisses => "prescreen_misses",
            CounterId::FaultTransitions => "fault_transitions",
        }
    }
}

/// Number of defined gauges.
pub const GAUGE_COUNT: usize = 6;

/// A queue-depth gauge of the registry.  Every gauge also tracks its
/// high-water mark since registry creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GaugeId {
    /// Certification requests currently inside `certify` (the certifier's
    /// inbox depth in a message-passing deployment).
    CertifierInflight,
    /// Remote writesets queued at a proxy waiting to be applied.
    RemoteApplyBacklog,
    /// Records absorbed by the most recent WAL group-commit flush.
    WalGroupBatch,
    /// The cluster-wide truncation watermark: the highest version every
    /// live replica has applied *and* a sealed checkpoint covers (logs
    /// below it may be trimmed).
    TruncationWatermark,
    /// Network sessions currently established (both ends of a loopback or
    /// TCP connection count their own side).
    OpenSessions,
    /// Cluster nodes (replicas + certifier shard-group members) currently
    /// crashed by fault injection.  Non-zero means commits may legitimately
    /// stop — the anomaly watchdog's drain-stall detector stands down while
    /// this gauge is raised.  The high-water mark records the deepest
    /// concurrent outage of the run.
    NodesDown,
}

impl GaugeId {
    /// All gauges, in [`GaugeId::index`] order.
    pub const ALL: [GaugeId; GAUGE_COUNT] = [
        GaugeId::CertifierInflight,
        GaugeId::RemoteApplyBacklog,
        GaugeId::WalGroupBatch,
        GaugeId::TruncationWatermark,
        GaugeId::OpenSessions,
        GaugeId::NodesDown,
    ];

    /// Dense index of this gauge.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            GaugeId::CertifierInflight => 0,
            GaugeId::RemoteApplyBacklog => 1,
            GaugeId::WalGroupBatch => 2,
            GaugeId::TruncationWatermark => 3,
            GaugeId::OpenSessions => 4,
            GaugeId::NodesDown => 5,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GaugeId::CertifierInflight => "certifier_inflight",
            GaugeId::RemoteApplyBacklog => "remote_apply_backlog",
            GaugeId::WalGroupBatch => "wal_group_batch",
            GaugeId::TruncationWatermark => "truncation_watermark",
            GaugeId::OpenSessions => "open_sessions",
            GaugeId::NodesDown => "nodes_down",
        }
    }
}

#[derive(Debug, Default)]
struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            self.high_water.fetch_max(now, Ordering::Relaxed);
        }
    }

    fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    fn read(&self) -> (i64, i64) {
        (
            self.value.load(Ordering::Relaxed),
            self.high_water.load(Ordering::Relaxed),
        )
    }
}

/// Pool size of the sharded histogram handles.  Threads are assigned a
/// shard round-robin on first use, so with the cluster's typical dozen
/// recording threads each mutex is shared by one or two of them.
const HISTOGRAM_SHARDS: usize = 8;

static NEXT_HISTOGRAM_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HISTOGRAM_SHARD: usize =
        NEXT_HISTOGRAM_SHARD.fetch_add(1, Ordering::Relaxed) % HISTOGRAM_SHARDS;
}

/// A latency histogram behind a small pool of mutex shards so concurrent
/// recorders rarely contend.
#[derive(Debug)]
struct ShardedHistogram {
    shards: [Mutex<LatencyHistogram>; HISTOGRAM_SHARDS],
}

impl ShardedHistogram {
    fn new() -> Self {
        ShardedHistogram {
            shards: std::array::from_fn(|_| Mutex::new(LatencyHistogram::new())),
        }
    }

    fn record(&self, latency: Duration) {
        let shard = HISTOGRAM_SHARD.with(|s| *s);
        // A poisoned shard only loses metrics, never correctness.
        if let Ok(mut histogram) = self.shards[shard].lock() {
            histogram.record(latency);
        }
    }

    fn merged(&self) -> LatencyHistogram {
        let mut total = LatencyHistogram::new();
        for shard in &self.shards {
            if let Ok(histogram) = shard.lock() {
                total.merge(&histogram);
            }
        }
        total
    }
}

/// Certifier shard commit counters are folded into this many slots; with
/// practical shard counts (1–8) the mapping is the identity, and the fold
/// preserves the oracle's `certified == Σ shard commits` invariant at any
/// count.
pub const SHARD_COMMIT_SLOTS: usize = 16;

/// How many recent commit-path traces the registry retains.
pub const TRACE_CAPACITY: usize = 256;

/// Per-transaction commit-path trace: cumulative microsecond offsets from
/// transaction start at which each [`Stage`] was observed complete.
///
/// Offsets are non-decreasing in stage order by construction (a skipped
/// stage inherits its predecessor's offset), which
/// [`CommitPathTrace::is_monotonic`] asserts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommitPathTrace {
    /// Transaction identifier (engine `TxId`).
    pub tx: u64,
    /// When the transaction started, in microseconds since the registry
    /// started (zero when the timer was built without a registry clock).
    /// Shared with the event journal's clock, so trace spans and journal
    /// events line up on one timeline in the Chrome-trace export.
    pub started_micros: u64,
    /// Cumulative offsets in microseconds, indexed by [`Stage::index`].
    pub marks: [u64; STAGE_COUNT],
}

impl CommitPathTrace {
    /// `true` if the stage offsets never decrease in commit-path order.
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        self.marks.windows(2).all(|pair| pair[0] <= pair[1])
    }
}

/// Builds a [`CommitPathTrace`] while a transaction runs: each
/// [`TraceTimer::mark`] stamps the current offset and returns the duration
/// since the previous mark, ready to record into the stage histogram.
#[derive(Debug)]
pub struct TraceTimer {
    tx: u64,
    started: Instant,
    started_micros: u64,
    last_micros: u64,
    marks: [Option<u64>; STAGE_COUNT],
}

impl TraceTimer {
    /// Starts timing a transaction at the current instant.
    #[must_use]
    pub fn new(tx: u64) -> Self {
        TraceTimer::new_at(tx, 0)
    }

    /// Starts timing a transaction, anchored at `started_micros` on the
    /// registry clock (see [`MetricsRegistry::uptime_micros`]) so the
    /// finished trace can be placed on the cluster timeline.
    #[must_use]
    pub fn new_at(tx: u64, started_micros: u64) -> Self {
        TraceTimer {
            tx,
            started: Instant::now(),
            started_micros,
            last_micros: 0,
            marks: [None; STAGE_COUNT],
        }
    }

    /// Stamps `stage` as complete now and returns the time elapsed since
    /// the previous mark (or since the timer started, for the first mark).
    pub fn mark(&mut self, stage: Stage) -> Duration {
        let offset = self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let since_previous = offset.saturating_sub(self.last_micros);
        self.last_micros = offset;
        self.marks[stage.index()] = Some(offset);
        Duration::from_micros(since_previous)
    }

    /// Finishes the trace, forward-filling skipped stages with their
    /// predecessor's offset so the result is monotonic.
    #[must_use]
    pub fn finish(self) -> CommitPathTrace {
        let mut marks = [0u64; STAGE_COUNT];
        let mut last = 0u64;
        for (slot, mark) in marks.iter_mut().zip(self.marks.iter()) {
            last = mark.unwrap_or(last).max(last);
            *slot = last;
        }
        CommitPathTrace {
            tx: self.tx,
            started_micros: self.started_micros,
            marks,
        }
    }
}

/// The cluster-wide metrics registry.
///
/// One registry is shared (via `Arc`) by every component of a cluster;
/// components created standalone default to a
/// [disabled](MetricsRegistry::disabled) registry whose record methods
/// return on a single branch.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    /// Whether [`MetricsRegistry::emit`] records into the journal.  On for
    /// every enabled registry except the `enabled_without_journal` baseline
    /// the `events_overhead` bench compares against.
    journal_enabled: bool,
    started: Instant,
    stages: [ShardedHistogram; STAGE_COUNT],
    lock_wait: ShardedHistogram,
    counters: [AtomicU64; COUNTER_COUNT],
    gauges: [Gauge; GAUGE_COUNT],
    shard_commits: [AtomicU64; SHARD_COMMIT_SLOTS],
    traces: Mutex<VecDeque<CommitPathTrace>>,
    /// The causal event journal: one lock-free bounded ring per
    /// [`Component`], written through [`MetricsRegistry::emit`].
    journal: [EventRing; COMPONENT_COUNT],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::disabled()
    }
}

impl MetricsRegistry {
    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry::with_flags(enabled, enabled)
    }

    fn with_flags(enabled: bool, journal_enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            journal_enabled,
            started: Instant::now(),
            stages: std::array::from_fn(|_| ShardedHistogram::new()),
            lock_wait: ShardedHistogram::new(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| Gauge::default()),
            shard_commits: std::array::from_fn(|_| AtomicU64::new(0)),
            traces: Mutex::new(VecDeque::with_capacity(TRACE_CAPACITY)),
            journal: std::array::from_fn(|_| {
                EventRing::new(if journal_enabled { EVENT_RING_CAPACITY } else { 1 })
            }),
        }
    }

    /// Creates a recording registry.
    #[must_use]
    pub fn enabled() -> Self {
        MetricsRegistry::with_enabled(true)
    }

    /// Creates a no-op registry: every record method returns immediately.
    /// This is the default for components constructed outside a cluster,
    /// and the baseline the overhead acceptance bench compares against.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry::with_enabled(false)
    }

    /// Creates a registry that records counters, gauges, histograms and
    /// traces but whose [`MetricsRegistry::emit`] is a no-op.  This is the
    /// baseline the `events_overhead` bench compares a fully enabled
    /// registry against, so the measured delta is exactly the causal event
    /// journal's cost on the hot path.
    #[must_use]
    pub fn enabled_without_journal() -> Self {
        MetricsRegistry::with_flags(true, false)
    }

    /// `true` if this registry records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increments `counter` by one.
    pub fn incr(&self, counter: CounterId) {
        self.add(counter, 1);
    }

    /// Increments `counter` by `delta`.
    pub fn add(&self, counter: CounterId, delta: u64) {
        if self.enabled {
            self.counters[counter.index()].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value of `counter`.
    #[must_use]
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Adds `delta` (possibly negative) to `gauge`, updating its
    /// high-water mark.
    pub fn gauge_add(&self, gauge: GaugeId, delta: i64) {
        if self.enabled {
            self.gauges[gauge.index()].add(delta);
        }
    }

    /// Sets `gauge` to an observed value, updating its high-water mark.
    pub fn gauge_set(&self, gauge: GaugeId, value: i64) {
        if self.enabled {
            self.gauges[gauge.index()].set(value);
        }
    }

    /// Increments `gauge` and returns a guard that decrements it when
    /// dropped — depth tracking for a scope with several exit paths.
    #[must_use]
    pub fn gauge_guard(&self, gauge: GaugeId) -> GaugeGuard<'_> {
        self.gauge_add(gauge, 1);
        GaugeGuard {
            registry: self,
            gauge,
        }
    }

    /// Records one latency sample for `stage`.
    pub fn record_stage(&self, stage: Stage, latency: Duration) {
        if self.enabled {
            self.stages[stage.index()].record(latency);
        }
    }

    /// Records the time one lock acquisition spent blocked.
    pub fn record_lock_wait(&self, waited: Duration) {
        if self.enabled {
            self.lock_wait.record(waited);
            self.incr(CounterId::LockWaits);
        }
    }

    /// Records a commit decision made durable on certifier shard `shard`.
    pub fn record_shard_commit(&self, shard: usize) {
        if self.enabled {
            self.shard_commits[shard % SHARD_COMMIT_SLOTS].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retains a finished commit-path trace (ring buffer of the most
    /// recent [`TRACE_CAPACITY`]).
    pub fn record_trace(&self, trace: CommitPathTrace) {
        if !self.enabled {
            return;
        }
        if let Ok(mut traces) = self.traces.lock() {
            if traces.len() == TRACE_CAPACITY {
                traces.pop_front();
            }
            traces.push_back(trace);
        }
    }

    /// Microseconds since the registry started: the clock every journal
    /// event and trace anchor shares.
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        duration_micros(self.started.elapsed())
    }

    /// Records `event` into its component's journal ring, stamping it
    /// with the registry clock.  A single branch when disabled.
    pub fn emit(&self, event: Event) {
        if self.journal_enabled {
            let mut event = event;
            event.at_micros = self.uptime_micros();
            self.journal[event.component.index()].record(&event);
        }
    }

    /// The events currently held in `component`'s ring, oldest first.
    #[must_use]
    pub fn component_events(&self, component: Component) -> Vec<Event> {
        self.journal[component.index()].snapshot()
    }

    /// The merged cluster timeline: every component's ring, ordered by
    /// the shared registry clock.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        merge_timelines(
            Component::ALL
                .iter()
                .map(|c| self.component_events(*c))
                .collect(),
        )
    }

    /// Events dropped across all rings to avoid torn slots (full-lap
    /// write collisions only — overwriting the oldest entry is not a
    /// drop).
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.journal.iter().map(EventRing::dropped).sum()
    }

    /// The most recent commit-path traces, oldest first.
    #[must_use]
    pub fn recent_traces(&self) -> Vec<CommitPathTrace> {
        self.traces
            .lock()
            .map(|traces| traces.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Takes a self-contained snapshot of every counter, gauge and
    /// histogram.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            elapsed: self.started.elapsed(),
            stages: Stage::ALL
                .iter()
                .map(|s| self.stages[s.index()].merged())
                .collect(),
            lock_wait: self.lock_wait.merged(),
            counters: self
                .counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            gauges: self.gauges.iter().map(Gauge::read).collect(),
            shard_commits: self
                .shard_commits
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Decrements its gauge on drop; created by [`MetricsRegistry::gauge_guard`].
#[derive(Debug)]
pub struct GaugeGuard<'a> {
    registry: &'a MetricsRegistry,
    gauge: GaugeId,
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.registry.gauge_add(self.gauge, -1);
    }
}

/// A self-contained copy of a [`MetricsRegistry`] at one instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Time since the registry was created.
    pub elapsed: Duration,
    /// Per-stage latency histograms, indexed by [`Stage::index`].
    pub stages: Vec<LatencyHistogram>,
    /// Lock-wait time distribution (blocked acquisitions only).
    pub lock_wait: LatencyHistogram,
    /// Counter values, indexed by [`CounterId::index`].
    pub counters: Vec<u64>,
    /// Gauge `(value, high_water)` pairs, indexed by [`GaugeId::index`].
    pub gauges: Vec<(i64, i64)>,
    /// Per-certifier-shard durable commit decisions (folded into
    /// [`SHARD_COMMIT_SLOTS`]).
    pub shard_commits: Vec<u64>,
}

impl MetricsSnapshot {
    /// The histogram of `stage`.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// The value of `counter` at snapshot time.
    #[must_use]
    pub fn counter(&self, counter: CounterId) -> u64 {
        self.counters[counter.index()]
    }

    /// The `(value, high_water)` of `gauge` at snapshot time.
    #[must_use]
    pub fn gauge(&self, gauge: GaugeId) -> (i64, i64) {
        self.gauges[gauge.index()]
    }

    /// Sum of per-shard durable commit decisions.  The fault oracle checks
    /// this equals [`CounterId::CertifyCommits`].
    #[must_use]
    pub fn shard_commit_sum(&self) -> u64 {
        self.shard_commits.iter().sum()
    }

    /// Per-counter difference `self - earlier`, for timeline analysis of
    /// flight-recorder samples.  Saturates at zero (counters are
    /// monotonic; a regression is an oracle violation, not a panic here).
    #[must_use]
    pub fn counters_since(&self, earlier: &MetricsSnapshot) -> Vec<u64> {
        self.counters
            .iter()
            .zip(earlier.counters.iter())
            .map(|(now, then)| now.saturating_sub(*then))
            .collect()
    }

    /// Serialises the snapshot into a compact binary buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_u32(&mut out, SNAPSHOT_MAGIC);
        // Nanoseconds, so the round-trip is bit-exact (u64 nanoseconds
        // cover ~585 years of registry uptime).
        put_u64(
            &mut out,
            self.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        put_u8(&mut out, self.stages.len() as u8);
        for stage in &self.stages {
            encode_histogram(&mut out, stage);
        }
        encode_histogram(&mut out, &self.lock_wait);
        put_u8(&mut out, self.counters.len() as u8);
        for &counter in &self.counters {
            put_u64(&mut out, counter);
        }
        put_u8(&mut out, self.gauges.len() as u8);
        for &(value, high) in &self.gauges {
            put_i64(&mut out, value);
            put_i64(&mut out, high);
        }
        put_u8(&mut out, self.shard_commits.len() as u8);
        for &commits in &self.shard_commits {
            put_u64(&mut out, commits);
        }
        out
    }

    /// Decodes a snapshot serialised by [`MetricsSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] on a truncated or malformed buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<MetricsSnapshot> {
        let mut cursor = Cursor { bytes, at: 0 };
        let magic = cursor.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(Error::Corruption(format!(
                "bad metrics snapshot magic {magic:#x}"
            )));
        }
        let elapsed = Duration::from_nanos(cursor.u64()?);
        let stage_count = cursor.u8()? as usize;
        let mut stages = Vec::with_capacity(stage_count.min(STAGE_COUNT * 2));
        for _ in 0..stage_count {
            stages.push(decode_histogram(&mut cursor)?);
        }
        let lock_wait = decode_histogram(&mut cursor)?;
        let counter_count = cursor.u8()? as usize;
        let mut counters = Vec::with_capacity(counter_count);
        for _ in 0..counter_count {
            counters.push(cursor.u64()?);
        }
        let gauge_count = cursor.u8()? as usize;
        let mut gauges = Vec::with_capacity(gauge_count);
        for _ in 0..gauge_count {
            let value = cursor.i64()?;
            let high = cursor.i64()?;
            gauges.push((value, high));
        }
        let shard_count = cursor.u8()? as usize;
        let mut shard_commits = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shard_commits.push(cursor.u64()?);
        }
        Ok(MetricsSnapshot {
            elapsed,
            stages,
            lock_wait,
            counters,
            gauges,
            shard_commits,
        })
    }
}

const SNAPSHOT_MAGIC: u32 = 0x544D_5331; // "TMS1"

fn duration_micros(duration: Duration) -> u64 {
    duration.as_micros().min(u128::from(u64::MAX)) as u64
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8]> {
        if self.bytes.len() - self.at < n {
            return Err(Error::Corruption(format!(
                "truncated metrics snapshot: need {n} bytes for {what}, {} remaining",
                self.bytes.len() - self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2, "u16")?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8, "i64")?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_be_bytes(
            self.take(16, "u128")?.try_into().unwrap(),
        ))
    }
}

/// Encodes a histogram as its summary fields plus the non-zero buckets as
/// `(index, count)` pairs — compact, since runs populate a few dozen of
/// the 288 buckets.
fn encode_histogram(out: &mut Vec<u8>, histogram: &LatencyHistogram) {
    put_u64(out, histogram.count());
    put_u128(out, histogram.sum_micros());
    put_u64(out, duration_micros(histogram.min()));
    put_u64(out, duration_micros(histogram.max()));
    let nonzero: Vec<(usize, u64)> = histogram
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i, c))
        .collect();
    put_u16(out, nonzero.len() as u16);
    for (index, count) in nonzero {
        put_u16(out, index as u16);
        put_u64(out, count);
    }
}

fn decode_histogram(cursor: &mut Cursor<'_>) -> Result<LatencyHistogram> {
    let count = cursor.u64()?;
    let sum_micros = cursor.u128()?;
    let min_micros = cursor.u64()?;
    let max_micros = cursor.u64()?;
    let nonzero = cursor.u16()? as usize;
    let mut buckets = vec![0u64; LatencyHistogram::bucket_count()];
    for _ in 0..nonzero {
        let index = cursor.u16()? as usize;
        let bucket_count = cursor.u64()?;
        if index >= buckets.len() {
            return Err(Error::Corruption(format!(
                "metrics snapshot bucket index {index} out of range"
            )));
        }
        buckets[index] = bucket_count;
    }
    Ok(LatencyHistogram::from_parts(
        buckets, count, sum_micros, min_micros, max_micros,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::disabled();
        registry.incr(CounterId::TxCommitted);
        registry.record_stage(Stage::Certify, Duration::from_millis(3));
        registry.gauge_set(GaugeId::WalGroupBatch, 12);
        registry.record_shard_commit(0);
        registry.record_trace(CommitPathTrace {
            tx: 1,
            started_micros: 0,
            marks: [0; STAGE_COUNT],
        });
        registry.emit(Event::new(Component::Proxy, EventKind::TxCommit).tx(1));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter(CounterId::TxCommitted), 0);
        assert_eq!(snapshot.stage(Stage::Certify).count(), 0);
        assert_eq!(snapshot.gauge(GaugeId::WalGroupBatch), (0, 0));
        assert_eq!(snapshot.shard_commit_sum(), 0);
        assert!(registry.recent_traces().is_empty());
        assert!(registry.events().is_empty());
    }

    #[test]
    fn enabled_registry_aggregates() {
        let registry = MetricsRegistry::enabled();
        registry.incr(CounterId::CertifyCommits);
        registry.add(CounterId::CertifyCommits, 2);
        registry.record_stage(Stage::Durable, Duration::from_millis(8));
        registry.record_stage(Stage::Durable, Duration::from_millis(10));
        registry.gauge_add(GaugeId::CertifierInflight, 3);
        registry.gauge_add(GaugeId::CertifierInflight, -1);
        registry.record_shard_commit(0);
        registry.record_shard_commit(1);
        registry.record_shard_commit(1);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter(CounterId::CertifyCommits), 3);
        assert_eq!(snapshot.stage(Stage::Durable).count(), 2);
        assert_eq!(snapshot.gauge(GaugeId::CertifierInflight), (2, 3));
        assert_eq!(snapshot.shard_commit_sum(), 3);
        assert_eq!(snapshot.shard_commits[1], 2);
    }

    #[test]
    fn trace_timer_forward_fills_skipped_stages() {
        let mut timer = TraceTimer::new(7);
        let _ = timer.mark(Stage::Begin);
        let _ = timer.mark(Stage::Execute);
        // Certify / Durable skipped (read-only transaction).
        let _ = timer.mark(Stage::Install);
        let trace = timer.finish();
        assert_eq!(trace.tx, 7);
        assert!(trace.is_monotonic(), "marks: {:?}", trace.marks);
        assert_eq!(trace.marks[Stage::Certify.index()], trace.marks[Stage::Execute.index()]);
        assert_eq!(trace.marks[Stage::Durable.index()], trace.marks[Stage::Execute.index()]);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let registry = MetricsRegistry::enabled();
        for tx in 0..(TRACE_CAPACITY as u64 + 10) {
            registry.record_trace(CommitPathTrace {
                tx,
                started_micros: 0,
                marks: [0; STAGE_COUNT],
            });
        }
        let traces = registry.recent_traces();
        assert_eq!(traces.len(), TRACE_CAPACITY);
        assert_eq!(traces.first().unwrap().tx, 10);
        assert_eq!(traces.last().unwrap().tx, TRACE_CAPACITY as u64 + 9);
    }

    #[test]
    fn enabled_registry_journals_and_merges_by_its_clock() {
        let registry = MetricsRegistry::enabled();
        registry.emit(Event::new(Component::Proxy, EventKind::TxBegin).tx(9));
        registry.emit(
            Event::new(Component::Certifier, EventKind::CertifyCommit)
                .tx(9)
                .version(1)
                .shard(0),
        );
        registry.emit(Event::new(Component::Wal, EventKind::WalFsync).version(1));
        let merged = registry.events();
        assert_eq!(merged.len(), 3);
        for pair in merged.windows(2) {
            assert!(pair[0].at_micros <= pair[1].at_micros);
        }
        assert_eq!(
            registry.component_events(Component::Certifier).len(),
            1
        );
        assert_eq!(registry.events_dropped(), 0);
    }

    #[test]
    fn counters_since_saturates() {
        let registry = MetricsRegistry::enabled();
        registry.add(CounterId::TxCommitted, 5);
        let earlier = registry.snapshot();
        registry.add(CounterId::TxCommitted, 7);
        let later = registry.snapshot();
        let delta = later.counters_since(&earlier);
        assert_eq!(delta[CounterId::TxCommitted.index()], 7);
        // Reversed order saturates instead of wrapping.
        assert_eq!(
            earlier.counters_since(&later)[CounterId::TxCommitted.index()],
            0
        );
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(MetricsSnapshot::from_bytes(&[]).is_err());
        assert!(MetricsSnapshot::from_bytes(&[1, 2, 3, 4, 5]).is_err());
        let registry = MetricsRegistry::enabled();
        let bytes = registry.snapshot().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MetricsSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "decoded a truncated snapshot of {cut} bytes"
            );
        }
    }
}
