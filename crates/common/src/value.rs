//! Column values stored by the engine and carried inside writesets.
//!
//! The storage engine is schema-light: a row is a vector of named columns,
//! each holding a [`Value`].  The variants cover what the three benchmarks
//! (AllUpdates, TPC-B, TPC-W) need — integers, floats, text and raw bytes —
//! plus `Null`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single column value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (TPC-B balances, TPC-W prices).
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes (payload / filler columns).
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the integer value, if this is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float value for [`Value::Float`] or [`Value::Int`].
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the text value, if this is a [`Value::Text`].
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this value is SQL NULL.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate serialized size in bytes.
    ///
    /// Used by the workload generators to size writesets so that the average
    /// writeset sizes match the paper (54 B for AllUpdates, 158 B for TPC-B,
    /// 275 B for TPC-W).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 9,
            Value::Float(_) => 9,
            Value::Text(s) => 5 + s.len(),
            Value::Bytes(b) => 5 + b.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Text("a".into()).as_int(), None);
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(String::from("hi")), Value::Text("hi".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
    }

    #[test]
    fn encoded_len_tracks_payload_size() {
        assert_eq!(Value::Null.encoded_len(), 1);
        assert_eq!(Value::Int(1).encoded_len(), 9);
        assert_eq!(Value::Text("abcd".into()).encoded_len(), 9);
        assert_eq!(Value::Bytes(vec![0; 10]).encoded_len(), 15);
    }

    #[test]
    fn display_is_reasonable() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Text("t".into()).to_string(), "'t'");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
    }
}
