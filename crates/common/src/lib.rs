//! Shared vocabulary types for the Tashkent replicated database reproduction.
//!
//! This crate defines the types that flow between every component of the
//! system described in *"Tashkent: Uniting Durability with Transaction
//! Ordering for High-Performance Scalable Database Replication"*
//! (Elnikety, Dropsho, Pedone — EuroSys 2006):
//!
//! * [`ids`] — identifiers and the global [`ids::Version`] counter that names
//!   database snapshots.
//! * [`value`] — the column value model used by the storage engine and by
//!   writesets.
//! * [`writeset`] — writeset representation and the intersection test that
//!   the certifier uses to detect write-write conflicts.
//! * [`config`] — the replication system variants (`Base`, `Tashkent-MW`,
//!   `Tashkent-API`), WAL synchronisation modes, IO-channel layouts and
//!   whole-cluster configuration.
//! * [`shard`] — the deterministic key→shard map of the sharded certification
//!   subsystem.
//! * [`error`] — the common error type.
//! * [`stats`] — latency histograms, counters and throughput meters used by
//!   the benchmark harness and by the examples.
//! * [`metrics`] — the cluster-wide metrics registry and commit-path
//!   tracing (the flight recorder's data plane).
//! * [`events`] — the causal event journal: typed events with causal ids
//!   in lock-free bounded rings, merged timelines, Chrome-trace export.
//!
//! Everything here is deliberately free of threads and IO so that both the
//! real multi-threaded engine (`tashkent-storage`, `tashkent-certifier`,
//! `tashkent-proxy`, `tashkent`) and the discrete-event performance model
//! (`tashkent-sim`) can share it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod events;
pub mod ids;
pub mod metrics;
pub mod shard;
pub mod stats;
pub mod value;
pub mod writeset;

pub use config::{ClusterConfig, IoChannelMode, SyncMode, SystemKind, TransportKind};
pub use error::{Error, Result};
pub use events::{
    chrome_trace_json, merge_timelines, text_timeline, Component, Event, EventKind, EventRing,
};
pub use ids::{ClientId, ReplicaId, TxId, Version};
pub use metrics::{
    CommitPathTrace, CounterId, GaugeId, MetricsRegistry, MetricsSnapshot, Stage, TraceTimer,
};
pub use shard::{footprint_hash, ShardId, ShardMap, MAX_SHARDS};
pub use value::Value;
pub use stats::{GroupCommitStats, LatencyHistogram, RunStats, Series, SeriesPoint};
pub use writeset::{RowKey, TableId, VersionedWriteSet, WriteItem, WriteOp, WriteSet};
