//! The causal event journal: typed, timestamped events in lock-free
//! bounded rings, one per component, merged on demand into one
//! causally-ordered cluster timeline.
//!
//! Aggregate counters (the [`crate::metrics`] registry) summarize *how
//! much* happened; the journal records *what happened in what order*.
//! Every event carries the causal identifiers that link the commit path
//! across components — transaction id, global commit version, certifier
//! shard, node — so a merged timeline reads as one story: the proxy began
//! tx 17, shard 1 certified it as version 203, the home shard appended it
//! durably, the WAL fsynced through it, the engine announced it, a remote
//! replica installed it.
//!
//! Design constraints, in order:
//!
//! * **Never torn.**  A reader only ever sees an event exactly as one
//!   writer published it.  Each ring slot is a seqlock of five atomic
//!   words: a writer claims the slot by CAS (odd sequence), stores the
//!   four payload words, then publishes (even sequence); a reader accepts
//!   a slot only if the sequence was even and unchanged around the
//!   payload read.
//! * **Oldest dropped.**  The ring holds the most recent
//!   [`EventRing::capacity`] events; older ones are overwritten.  Under a
//!   pathological full-lap race (one writer stalls mid-publish while the
//!   ring wraps past it) the colliding record is dropped and counted in
//!   [`EventRing::dropped`] instead of tearing the slot.
//! * **Cheap.**  Recording is a handful of atomic operations and no
//!   allocation; a disabled registry short-circuits emission on a single
//!   branch, exactly like the metrics record methods (the
//!   `events_overhead` bench group pins both modes).
//!
//! The journal itself is thread-free and IO-free (this crate's ground
//! rule); the anomaly watchdog and the diagnostic-bundle writer that
//! consume it live in the `tashkent` core crate.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::metrics::{CommitPathTrace, Stage};

/// Number of event-emitting components.
pub const COMPONENT_COUNT: usize = 5;

/// The component that emitted an event — which ring it lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The per-replica transparent proxy (transaction lifecycle).
    Proxy,
    /// The certifier (decisions and durable appends).
    Certifier,
    /// A replica engine's write-ahead log (fsyncs).
    Wal,
    /// A replica's storage engine (ordered-commit announces).
    Engine,
    /// Replica lifecycle (crash, recovery).
    Replica,
}

impl Component {
    /// All components, in [`Component::index`] order.
    pub const ALL: [Component; COMPONENT_COUNT] = [
        Component::Proxy,
        Component::Certifier,
        Component::Wal,
        Component::Engine,
        Component::Replica,
    ];

    /// Dense index of this component.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Component::Proxy => 0,
            Component::Certifier => 1,
            Component::Wal => 2,
            Component::Engine => 3,
            Component::Replica => 4,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Component::Proxy => "proxy",
            Component::Certifier => "certifier",
            Component::Wal => "wal",
            Component::Engine => "engine",
            Component::Replica => "replica",
        }
    }

    /// Inverse of [`Component::index`]; `None` for out-of-range values
    /// (the bundle decoder's corruption check).
    #[must_use]
    pub fn from_index(index: u8) -> Option<Component> {
        Component::ALL.get(index as usize).copied()
    }
}

/// Number of defined event kinds.
pub const EVENT_KIND_COUNT: usize = 16;

/// What happened.  Kinds are deliberately commit-path-shaped: a grep for
/// one transaction id across the merged timeline reconstructs its journey
/// through every component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A proxy began a transaction.
    TxBegin,
    /// A transaction committed at its proxy.
    TxCommit,
    /// A transaction aborted (certification conflict or forced abort).
    TxAbort,
    /// The certifier decided *commit* and assigned a global version.
    CertifyCommit,
    /// The certifier decided *abort*.
    CertifyAbort,
    /// A commit record was appended to its home shard's durable log.
    DurableAppend,
    /// A replica WAL performed a synchronous flush.
    WalFsync,
    /// The engine announced a commit in the global order.
    Announce,
    /// A proxy installed a remote writeset.
    InstallRemote,
    /// A proxy resynchronised its apply pipeline after a failure.
    Resync,
    /// A replica was crashed (fault injection or operator action).
    ReplicaCrash,
    /// A crashed replica recovered and rejoined.
    ReplicaRecover,
    /// A network session completed its handshake (either side).
    SessionOpen,
    /// A network session closed (gracefully or on a broken link).
    SessionClose,
    /// A loopback link's fault state changed (severed or healed).
    LinkFault,
    /// The certifier drained one batched epoch of pending writesets; the
    /// event's `version` field carries the epoch size.
    CertifyBatch,
}

impl EventKind {
    /// All kinds, in [`EventKind::index`] order.
    pub const ALL: [EventKind; EVENT_KIND_COUNT] = [
        EventKind::TxBegin,
        EventKind::TxCommit,
        EventKind::TxAbort,
        EventKind::CertifyCommit,
        EventKind::CertifyAbort,
        EventKind::DurableAppend,
        EventKind::WalFsync,
        EventKind::Announce,
        EventKind::InstallRemote,
        EventKind::Resync,
        EventKind::ReplicaCrash,
        EventKind::ReplicaRecover,
        EventKind::SessionOpen,
        EventKind::SessionClose,
        EventKind::LinkFault,
        EventKind::CertifyBatch,
    ];

    /// Dense index of this kind.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EventKind::TxBegin => 0,
            EventKind::TxCommit => 1,
            EventKind::TxAbort => 2,
            EventKind::CertifyCommit => 3,
            EventKind::CertifyAbort => 4,
            EventKind::DurableAppend => 5,
            EventKind::WalFsync => 6,
            EventKind::Announce => 7,
            EventKind::InstallRemote => 8,
            EventKind::Resync => 9,
            EventKind::ReplicaCrash => 10,
            EventKind::ReplicaRecover => 11,
            EventKind::SessionOpen => 12,
            EventKind::SessionClose => 13,
            EventKind::LinkFault => 14,
            EventKind::CertifyBatch => 15,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::TxBegin => "tx_begin",
            EventKind::TxCommit => "tx_commit",
            EventKind::TxAbort => "tx_abort",
            EventKind::CertifyCommit => "certify_commit",
            EventKind::CertifyAbort => "certify_abort",
            EventKind::DurableAppend => "durable_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::Announce => "announce",
            EventKind::InstallRemote => "install_remote",
            EventKind::Resync => "resync",
            EventKind::ReplicaCrash => "replica_crash",
            EventKind::ReplicaRecover => "replica_recover",
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::LinkFault => "link_fault",
            EventKind::CertifyBatch => "certify_batch",
        }
    }

    /// Inverse of [`EventKind::index`]; `None` for out-of-range values.
    #[must_use]
    pub fn from_index(index: u8) -> Option<EventKind> {
        EventKind::ALL.get(index as usize).copied()
    }
}

/// One journal entry: a typed event with its causal identifiers.
///
/// `at_micros` is microseconds since the owning registry started — one
/// clock for the whole cluster (every component shares the cluster's
/// registry), which is what makes the merged timeline causally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Microseconds since the registry started (stamped by
    /// `MetricsRegistry::emit`; zero until then).
    pub at_micros: u64,
    /// Which component emitted it.
    pub component: Component,
    /// What happened.
    pub kind: EventKind,
    /// Transaction id, or `0` when the event is not tied to one
    /// transaction (e.g. a WAL fsync).
    pub tx: u64,
    /// Global commit version, or `0` when no version is involved yet.
    pub version: u64,
    /// Certifier shard, or [`Event::NO_SHARD`].
    pub shard: u16,
    /// Replica / certifier node, or [`Event::NO_NODE`].
    pub node: u16,
}

impl Event {
    /// Sentinel for "no shard involved".
    pub const NO_SHARD: u16 = u16::MAX;
    /// Sentinel for "no node involved".
    pub const NO_NODE: u16 = u16::MAX;

    /// Creates an event with no causal ids attached; chain the builder
    /// methods to add them.
    #[must_use]
    pub fn new(component: Component, kind: EventKind) -> Event {
        Event {
            at_micros: 0,
            component,
            kind,
            tx: 0,
            version: 0,
            shard: Event::NO_SHARD,
            node: Event::NO_NODE,
        }
    }

    /// Attaches a transaction id.
    #[must_use]
    pub fn tx(mut self, tx: u64) -> Event {
        self.tx = tx;
        self
    }

    /// Attaches a global commit version.
    #[must_use]
    pub fn version(mut self, version: u64) -> Event {
        self.version = version;
        self
    }

    /// Attaches a certifier shard.
    #[must_use]
    pub fn shard(mut self, shard: usize) -> Event {
        self.shard = shard.min(usize::from(u16::MAX - 1)) as u16;
        self
    }

    /// Attaches a replica / certifier node.
    #[must_use]
    pub fn node(mut self, node: usize) -> Event {
        self.node = node.min(usize::from(u16::MAX - 1)) as u16;
        self
    }

    /// Packs the event into the ring's four payload words.  Public so the
    /// diagnostic-bundle codec shares the layout.
    #[must_use]
    pub fn encode(&self) -> [u64; 4] {
        let meta = u64::from(self.kind.index() as u8)
            | (u64::from(self.component.index() as u8) << 8)
            | (u64::from(self.shard) << 16)
            | (u64::from(self.node) << 32);
        [self.at_micros, self.tx, self.version, meta]
    }

    /// Inverse of [`Event::encode`]; `None` if the component or kind byte
    /// is out of range (a corrupt bundle, never a live ring).
    #[must_use]
    pub fn decode(words: [u64; 4]) -> Option<Event> {
        let meta = words[3];
        Some(Event {
            at_micros: words[0],
            tx: words[1],
            version: words[2],
            kind: EventKind::from_index((meta & 0xFF) as u8)?,
            component: Component::from_index(((meta >> 8) & 0xFF) as u8)?,
            shard: ((meta >> 16) & 0xFFFF) as u16,
            node: ((meta >> 32) & 0xFFFF) as u16,
        })
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>12} us  {:<9} {:<16}",
            self.at_micros,
            self.component.label(),
            self.kind.label()
        )?;
        if self.tx != 0 {
            write!(f, " tx={}", self.tx)?;
        }
        if self.version != 0 {
            write!(f, " v={}", self.version)?;
        }
        if self.shard != Event::NO_SHARD {
            write!(f, " shard={}", self.shard)?;
        }
        if self.node != Event::NO_NODE {
            write!(f, " node={}", self.node)?;
        }
        Ok(())
    }
}

/// Default per-component ring capacity: deep enough to hold the commit
/// tail that explains an anomaly (a few thousand events at typical rates
/// is a second or two of history), small enough to snapshot cheaply into
/// a bundle.
pub const EVENT_RING_CAPACITY: usize = 2048;

/// Payload words per ring slot.
const WORDS_PER_SLOT: usize = 4;

/// A lock-free bounded ring of [`Event`]s: many concurrent writers, any
/// number of on-demand readers, oldest entries overwritten, reads never
/// torn.  See the module docs for the slot seqlock protocol.
#[derive(Debug)]
pub struct EventRing {
    capacity: usize,
    /// Monotonic ticket counter; ticket `t` writes slot `t % capacity`.
    next: AtomicU64,
    /// Events dropped to avoid tearing a slot (full-lap collisions only).
    dropped: AtomicU64,
    /// Per-slot seqlock: `0` = never written, odd = write in progress,
    /// even `2t+2` = ticket `t` published.
    seqs: Box<[AtomicU64]>,
    /// Slot payloads, [`WORDS_PER_SLOT`] words each.
    words: Box<[AtomicU64]>,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            capacity,
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            seqs: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            words: (0..capacity * WORDS_PER_SLOT)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Maximum number of events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever offered to the ring (including dropped ones).
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Events dropped to avoid a torn slot.  Nonzero only under a
    /// full-lap write collision; the overflow path (oldest overwritten)
    /// does not count as a drop.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event.  Lock-free; drops the event (counted) rather
    /// than blocking or tearing when a slot collision is detected.
    pub fn record(&self, event: &Event) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.capacity as u64) as usize;
        let claim = ticket.wrapping_mul(2).wrapping_add(1);
        let prev = self.seqs[slot].load(Ordering::SeqCst);
        // Claim only an idle slot owned by an older generation.  An odd
        // sequence means a stalled writer still owns it; a newer even one
        // means the ring lapped us while we were between the ticket and
        // here.  Either way our record is (or is about to be) the
        // overwritten one — drop it instead of tearing the slot.
        if prev % 2 == 1 || prev >= claim {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.seqs[slot]
            .compare_exchange(prev, claim, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (i, word) in event.encode().into_iter().enumerate() {
            self.words[slot * WORDS_PER_SLOT + i].store(word, Ordering::SeqCst);
        }
        self.seqs[slot].store(claim.wrapping_add(1), Ordering::SeqCst);
    }

    /// The events currently held, oldest first.  Slots mid-write are
    /// skipped (they belong to newer events than the slot's published
    /// one), so the result is always a consistent, untorn suffix of the
    /// recorded stream.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let mut entries: Vec<(u64, Event)> = Vec::with_capacity(self.capacity);
        for slot in 0..self.capacity {
            let before = self.seqs[slot].load(Ordering::SeqCst);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let mut words = [0u64; WORDS_PER_SLOT];
            for (i, word) in words.iter_mut().enumerate() {
                *word = self.words[slot * WORDS_PER_SLOT + i].load(Ordering::SeqCst);
            }
            let after = self.seqs[slot].load(Ordering::SeqCst);
            if after != before {
                continue; // overwritten mid-read: the slot's new event
                          // will be in a later snapshot
            }
            let ticket = before / 2 - 1;
            if let Some(event) = Event::decode(words) {
                entries.push((ticket, event));
            }
        }
        entries.sort_by_key(|(ticket, _)| *ticket);
        entries.into_iter().map(|(_, event)| event).collect()
    }
}

/// Merges per-component event streams into one causally-ordered timeline.
///
/// All streams share the registry's clock, so sorting by timestamp *is*
/// the causal order; the sort is stable, so events with equal timestamps
/// keep their per-stream (ticket) order and streams tie-break in the
/// order given (commit-path component order when called via the
/// registry).
#[must_use]
pub fn merge_timelines(streams: Vec<Vec<Event>>) -> Vec<Event> {
    let mut merged: Vec<Event> = streams.into_iter().flatten().collect();
    merged.sort_by_key(|event| event.at_micros);
    merged
}

/// Renders a merged timeline as plain text, one event per line — the
/// `FAULT_SEED` replay companion: grep a transaction id or a version to
/// follow it across components.
#[must_use]
pub fn text_timeline(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for event in events {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

/// Exports commit-path traces and journal events as Chrome trace / Perfetto
/// JSON (the "trace event format"): one complete-event span (`"ph":"X"`)
/// per transaction per stage, built from each trace's cumulative stage
/// marks, plus one instant event (`"ph":"i"`) per journal entry.
///
/// Load the output in `ui.perfetto.dev` (or `chrome://tracing`): rows are
/// transactions (`tid` = transaction id), spans are stages, instants carry
/// the causal ids as args.
#[must_use]
pub fn chrome_trace_json(events: &[Event], traces: &[CommitPathTrace]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + traces.len() * 512 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        let mut previous = 0u64;
        for stage in Stage::ALL {
            let mark = trace.marks[stage.index()];
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"commit-path\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                stage.label(),
                trace.tx,
                trace.started_micros + previous,
                mark.saturating_sub(previous),
            ));
            previous = mark;
        }
    }
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"version\":{},\"shard\":{},\"node\":{}}}}}",
            event.kind.label(),
            event.component.label(),
            event.tx,
            event.at_micros,
            event.version,
            event.shard,
            event.node,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::thread;

    use super::*;

    fn event(i: u64) -> Event {
        let mut e = Event::new(Component::Proxy, EventKind::TxCommit)
            .tx(i)
            .version(i.wrapping_mul(31).wrapping_add(7));
        e.at_micros = i;
        e
    }

    #[test]
    fn ring_keeps_the_most_recent_events_in_order() {
        let ring = EventRing::new(8);
        for i in 0..20u64 {
            ring.record(&event(i));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        let txs: Vec<u64> = events.iter().map(|e| e.tx).collect();
        assert_eq!(txs, (12..20).collect::<Vec<u64>>());
        assert_eq!(ring.issued(), 20);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_under_capacity_returns_everything() {
        let ring = EventRing::new(16);
        for i in 0..5u64 {
            ring.record(&event(i));
        }
        assert_eq!(ring.snapshot().len(), 5);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        // Each event's version is a function of its tx; a torn slot would
        // mix two writers' words and break the relation.
        let ring = Arc::new(EventRing::new(64));
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(thread::spawn(move || {
                for i in 0..2000u64 {
                    ring.record(&event(worker * 1_000_000 + i));
                }
            }));
        }
        let reader_ring = Arc::clone(&ring);
        let reader = thread::spawn(move || {
            for _ in 0..200 {
                for e in reader_ring.snapshot() {
                    assert_eq!(
                        e.version,
                        e.tx.wrapping_mul(31).wrapping_add(7),
                        "torn event: tx {} with version {}",
                        e.tx,
                        e.version
                    );
                }
            }
        });
        for handle in handles {
            handle.join().unwrap();
        }
        reader.join().unwrap();
        let events = ring.snapshot();
        assert!(events.len() <= 64);
        assert_eq!(ring.issued(), 8000);
        // Everything that survived is consistent.
        for e in &events {
            assert_eq!(e.version, e.tx.wrapping_mul(31).wrapping_add(7));
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for kind in EventKind::ALL {
            for component in Component::ALL {
                let mut e = Event::new(component, kind)
                    .tx(u64::MAX)
                    .version(12345)
                    .shard(3)
                    .node(7);
                e.at_micros = 99;
                assert_eq!(Event::decode(e.encode()), Some(e));
            }
        }
        // Garbage meta bytes are rejected, not misdecoded.
        assert_eq!(Event::decode([0, 0, 0, 0xFF]), None);
        assert_eq!(Event::decode([0, 0, 0, 0xFF00]), None);
    }

    #[test]
    fn merge_orders_by_time_and_keeps_ties_stable() {
        let mut a = vec![event(1), event(5), event(9)];
        let b = vec![event(2), event(5), event(10)];
        a[1].node = 1; // distinguish the tied pair
        let merged = merge_timelines(vec![a.clone(), b.clone()]);
        assert_eq!(merged.len(), 6);
        for pair in merged.windows(2) {
            assert!(pair[0].at_micros <= pair[1].at_micros);
        }
        // Stable: stream a's t=5 event precedes stream b's.
        let tied: Vec<&Event> = merged.iter().filter(|e| e.at_micros == 5).collect();
        assert_eq!(tied[0].node, 1);
    }

    #[test]
    fn chrome_trace_contains_spans_and_instants() {
        let trace = CommitPathTrace {
            tx: 42,
            started_micros: 100,
            marks: [1, 4, 9, 9, 12, 20],
        };
        let json = chrome_trace_json(&[event(3)], &[trace]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"certify\""));
        assert!(json.contains("\"tid\":42"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        // The durable stage was instantaneous: dur 0, not negative.
        assert!(json.contains("\"ts\":109,\"dur\":0"));
    }

    #[test]
    fn text_timeline_is_greppable() {
        let text = text_timeline(&[event(7)]);
        assert!(text.contains("proxy"));
        assert!(text.contains("tx_commit"));
        assert!(text.contains("tx=7"));
        assert!(!text.contains("shard="), "sentinel fields must be omitted");
    }
}
