//! Measurement helpers: latency histograms, throughput meters and
//! group-commit statistics.
//!
//! Both the real cluster and the discrete-event simulator report their
//! results through these types, which keeps the `figures` harness output
//! uniform across the two substrates.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A latency histogram with microsecond resolution.
///
/// Samples are kept in logarithmically sized buckets so that memory use is
/// bounded no matter how long an experiment runs, while percentile error
/// stays below ~3 %.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts.  Bucket `i` covers `[lower_bound(i), lower_bound(i+1))`.
    buckets: Vec<u64>,
    count: u64,
    sum_micros: u128,
    min_micros: u64,
    max_micros: u64,
}

const BUCKETS_PER_DECADE: usize = 32;
const DECADES: usize = 9; // 1 us .. ~1000 s

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS_PER_DECADE * DECADES],
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            return 0;
        }
        let log = (micros as f64).log10();
        let idx = (log * BUCKETS_PER_DECADE as f64) as usize;
        idx.min(BUCKETS_PER_DECADE * DECADES - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        10f64.powf(index as f64 / BUCKETS_PER_DECADE as f64).round() as u64
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(micros)] += 1;
        self.count += 1;
        self.sum_micros += u128::from(micros);
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero if no samples were recorded.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_micros / u128::from(self.count)) as u64)
    }

    /// Smallest recorded sample, or zero if empty.
    #[must_use]
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_micros)
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_micros)
    }

    /// The latency at the given percentile (0.0–100.0).
    ///
    /// Returns zero for an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_micros(Self::bucket_value(i));
            }
        }
        self.max()
    }

    /// Median latency.
    #[must_use]
    pub fn median(&self) -> Duration {
        self.percentile(50.0)
    }

    /// Number of buckets every histogram has.
    #[must_use]
    pub fn bucket_count() -> usize {
        BUCKETS_PER_DECADE * DECADES
    }

    /// Raw bucket counts (bucket `i` covers `[10^(i/32), 10^((i+1)/32))`
    /// microseconds).  Used by the metrics snapshot codec.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum of all recorded samples in microseconds.
    #[must_use]
    pub fn sum_micros(&self) -> u128 {
        self.sum_micros
    }

    /// Reconstructs a histogram from its parts (the metrics snapshot
    /// decoder).  `buckets` is padded or truncated to the canonical length,
    /// and an empty histogram (`count == 0`) gets the canonical empty
    /// min/max regardless of the arguments.
    #[must_use]
    pub fn from_parts(
        mut buckets: Vec<u64>,
        count: u64,
        sum_micros: u128,
        min_micros: u64,
        max_micros: u64,
    ) -> Self {
        buckets.resize(Self::bucket_count(), 0);
        if count == 0 {
            return LatencyHistogram::new();
        }
        LatencyHistogram {
            buckets,
            count,
            sum_micros,
            min_micros,
            max_micros,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        if other.count > 0 {
            self.min_micros = self.min_micros.min(other.min_micros);
            self.max_micros = self.max_micros.max(other.max_micros);
        }
    }
}

/// Statistics about group commit: how many records each synchronous flush
/// absorbed.
///
/// The headline explanation for Tashkent-MW's win is that "the certifier …
/// is able to group an average of 29 writesets per fsync" (Section 9.2);
/// this type produces that number.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroupCommitStats {
    /// Number of synchronous flush operations performed.
    pub fsyncs: u64,
    /// Total records made durable across all flushes.
    pub records: u64,
    /// Largest single group.
    pub max_group: u64,
}

impl GroupCommitStats {
    /// Records one flush that made `records` commit records durable.
    pub fn record_flush(&mut self, records: u64) {
        self.fsyncs += 1;
        self.records += records;
        self.max_group = self.max_group.max(records);
    }

    /// Average number of records per flush (the paper's "writesets per
    /// fsync"), or zero if no flush happened.
    #[must_use]
    pub fn mean_group_size(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.records as f64 / self.fsyncs as f64
        }
    }

    /// Merges another set of group-commit statistics into this one.
    pub fn merge(&mut self, other: &GroupCommitStats) {
        self.fsyncs += other.fsyncs;
        self.records += other.records;
        self.max_group = self.max_group.max(other.max_group);
    }
}

/// Result of one measured run: committed/aborted counts, duration, latency.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions aborted (conflicts, deadlocks, forced aborts).
    pub aborted: u64,
    /// Read-only transactions among the committed ones.
    pub read_only: u64,
    /// Wall-clock (or virtual) duration of the measured interval.
    pub elapsed: Duration,
    /// Response-time distribution of committed transactions.
    #[serde(skip)]
    pub latency: LatencyHistogram,
    /// Response-time distribution of committed read-only transactions.
    #[serde(skip)]
    pub read_only_latency: LatencyHistogram,
    /// Response-time distribution of committed update transactions.
    #[serde(skip)]
    pub update_latency: LatencyHistogram,
    /// Group-commit behaviour of the replica WAL (database durability).
    pub replica_group_commit: GroupCommitStats,
    /// Group-commit behaviour of the certifier log (middleware durability).
    pub certifier_group_commit: GroupCommitStats,
}

impl RunStats {
    /// Creates empty run statistics.
    #[must_use]
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Committed transactions per second over the measured interval
    /// ("goodput" in Section 9.5: aborted transactions do not count).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }

    /// Abort rate among all finished transactions.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }

    /// Mean response time of committed transactions.
    #[must_use]
    pub fn mean_response_time(&self) -> Duration {
        self.latency.mean()
    }

    /// Merges per-thread / per-replica statistics into a cluster total.
    ///
    /// Elapsed time is taken as the maximum of the two intervals (they ran
    /// concurrently), while counts and histograms are summed.
    pub fn merge(&mut self, other: &RunStats) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.read_only += other.read_only;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.latency.merge(&other.latency);
        self.read_only_latency.merge(&other.read_only_latency);
        self.update_latency.merge(&other.update_latency);
        self.replica_group_commit.merge(&other.replica_group_commit);
        self.certifier_group_commit
            .merge(&other.certifier_group_commit);
    }
}

/// One data point of a figure: x value (replica count), plus the measured
/// throughput and response time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Number of replicas (the x axis of every figure in the paper).
    pub replicas: usize,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Mean response time in milliseconds.
    pub response_time_ms: f64,
}

/// A named series (one curve of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (e.g. `tashMW`).
    pub label: String,
    /// Data points ordered by replica count.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a data point.
    pub fn push(&mut self, replicas: usize, throughput: f64, response_time_ms: f64) {
        self.points.push(SeriesPoint {
            replicas,
            throughput,
            response_time_ms,
        });
    }

    /// The throughput at the largest replica count, or zero if empty.
    #[must_use]
    pub fn peak_throughput(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.throughput)
            .fold(0.0, f64::max)
    }

    /// Throughput at exactly `replicas`, if measured.
    #[must_use]
    pub fn throughput_at(&self, replicas: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.replicas == replicas)
            .map(|p| p.throughput)
    }

    /// Response time at exactly `replicas`, if measured.
    #[must_use]
    pub fn response_time_at(&self, replicas: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.replicas == replicas)
            .map(|p| p.response_time_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_statistics() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(50.0), Duration::ZERO);
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        let mean = h.mean();
        assert!(mean >= Duration::from_millis(5) && mean <= Duration::from_millis(6));
        assert!(h.min() >= Duration::from_micros(900));
        assert!(h.max() >= Duration::from_millis(9));
        let median = h.median();
        assert!(median >= Duration::from_millis(4) && median <= Duration::from_millis(7));
        let p99 = h.percentile(99.0);
        assert!(p99 >= median);
    }

    #[test]
    fn histogram_percentile_accuracy_is_within_buckets() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_micros(100));
        }
        let p50 = h.percentile(50.0).as_micros() as f64;
        assert!((p50 - 100.0).abs() / 100.0 < 0.10, "p50 = {p50}");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_millis(1));
        b.record(Duration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_millis(90));
        assert!(a.min() <= Duration::from_millis(2));
    }

    #[test]
    fn group_commit_mean() {
        let mut g = GroupCommitStats::default();
        assert_eq!(g.mean_group_size(), 0.0);
        g.record_flush(10);
        g.record_flush(20);
        assert_eq!(g.fsyncs, 2);
        assert_eq!(g.records, 30);
        assert_eq!(g.max_group, 20);
        assert!((g.mean_group_size() - 15.0).abs() < f64::EPSILON);
        let mut h = GroupCommitStats::default();
        h.record_flush(40);
        g.merge(&h);
        assert_eq!(g.fsyncs, 3);
        assert_eq!(g.max_group, 40);
    }

    #[test]
    fn run_stats_throughput_and_abort_rate() {
        let mut s = RunStats::new();
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.abort_rate(), 0.0);
        s.committed = 500;
        s.aborted = 100;
        s.elapsed = Duration::from_secs(10);
        assert!((s.throughput() - 50.0).abs() < 1e-9);
        assert!((s.abort_rate() - 100.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn run_stats_merge_takes_max_elapsed() {
        let mut a = RunStats::new();
        a.committed = 10;
        a.elapsed = Duration::from_secs(5);
        let mut b = RunStats::new();
        b.committed = 20;
        b.aborted = 2;
        b.elapsed = Duration::from_secs(8);
        a.merge(&b);
        assert_eq!(a.committed, 30);
        assert_eq!(a.aborted, 2);
        assert_eq!(a.elapsed, Duration::from_secs(8));
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("tashMW");
        s.push(1, 490.0, 18.0);
        s.push(15, 3657.0, 40.0);
        assert_eq!(s.label, "tashMW");
        assert_eq!(s.throughput_at(15), Some(3657.0));
        assert_eq!(s.throughput_at(3), None);
        assert_eq!(s.response_time_at(1), Some(18.0));
        assert!((s.peak_throughput() - 3657.0).abs() < f64::EPSILON);
    }
}
