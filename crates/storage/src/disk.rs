//! The (simulated) log device.
//!
//! The paper's measurements hinge on the cost of synchronous writes: an
//! `fsync` to the disk medium takes about 8 ms on their hardware, so whoever
//! can put more commit records into one fsync wins.  The engine therefore
//! talks to its log through the [`LogDevice`] trait, and the default
//! implementation, [`SimulatedDisk`], models exactly the properties that
//! matter:
//!
//! * a configurable per-fsync latency (optionally with jitter, matching the
//!   6–12 ms spread the paper reports),
//! * a single channel: fsyncs on the same device are serialised,
//! * optional extra *contention* delay representing a shared IO channel on
//!   which database page reads and dirty-page writebacks compete with the
//!   WAL (the "shared IO" configurations),
//! * crash semantics: bytes appended after the last fsync are lost when the
//!   device "crashes", which is what makes the recovery tests meaningful.
//!
//! All latencies can be set to zero for fast functional tests; the fsync
//! count and group-size statistics are tracked either way.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tashkent_common::GroupCommitStats;

/// Statistics kept by a log device.
#[derive(Debug, Clone, Default)]
pub struct DiskStats {
    /// Number of append operations.
    pub appends: u64,
    /// Total bytes appended.
    pub bytes_appended: u64,
    /// Number of fsync operations.
    pub fsyncs: u64,
    /// Group-commit statistics: how many records each fsync made durable.
    pub group_commit: GroupCommitStats,
}

/// Abstraction over the append-only log storage used by the WAL and by the
/// certifier log.
///
/// Implementations must be safe to share between threads; the engine calls
/// `append` and `fsync` concurrently from many committing transactions.
pub trait LogDevice: Send + Sync {
    /// Appends bytes to the end of the log and returns the offset at which
    /// they were written.  The bytes are *not* durable until the next
    /// [`LogDevice::fsync`] call returns.
    fn append(&self, bytes: &[u8]) -> u64;

    /// Forces all previously appended bytes to stable storage.
    ///
    /// `records` tells the device how many commit records this flush makes
    /// durable so that group-commit statistics can be tracked; it has no
    /// effect on durability itself.
    fn fsync(&self, records: u64);

    /// Total bytes appended so far (durable or not).
    fn len(&self) -> u64;

    /// `true` if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes that are guaranteed to survive a crash.
    fn durable_len(&self) -> u64;

    /// Returns a copy of the durable prefix of the log.
    fn durable_contents(&self) -> Vec<u8>;

    /// Simulates a crash: volatile (un-fsynced) bytes are discarded.
    fn crash(&self);

    /// Atomically replaces the entire log with `contents`, durably.
    ///
    /// This is the primitive behind log truncation: the caller rewrites the
    /// log as the suffix of records it wants to keep (a real system would
    /// drop whole segment files; this simulated device has one segment).
    /// The replacement is durable immediately — it models a rename over a
    /// fully synced rewrite, not an in-place edit.
    fn replace(&self, contents: Vec<u8>);

    /// Statistics snapshot.
    fn stats(&self) -> DiskStats;
}

/// Configuration of a [`SimulatedDisk`].
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Latency of one fsync (time to flush to the disk medium).
    pub fsync_latency: Duration,
    /// Additional uniformly distributed latency added to each fsync,
    /// modelling the dependence on where the data lands on the platter.
    pub fsync_jitter: Duration,
    /// Extra latency added to each fsync when the channel is shared with
    /// non-logging IO (page reads / dirty writebacks).
    pub contention_latency: Duration,
    /// If `true`, latencies are actually slept; if `false` they are only
    /// accounted in the statistics.  Functional tests run with `false`.
    pub sleep: bool,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            fsync_latency: Duration::ZERO,
            fsync_jitter: Duration::ZERO,
            contention_latency: Duration::ZERO,
            sleep: false,
        }
    }
}

impl DiskConfig {
    /// A device with a real (slept) fsync latency, for end-to-end runs that
    /// want wall-clock behaviour resembling the paper's testbed.
    #[must_use]
    pub fn with_latency(fsync_latency: Duration) -> Self {
        DiskConfig {
            fsync_latency,
            sleep: true,
            ..DiskConfig::default()
        }
    }
}

#[derive(Debug, Default)]
struct DiskState {
    buffer: Vec<u8>,
    durable_len: u64,
    stats: DiskStats,
    /// Deterministic pseudo-random state for jitter.
    jitter_seed: u64,
}

/// An in-memory append-only device with configurable fsync behaviour and
/// crash semantics.
#[derive(Debug, Clone)]
pub struct SimulatedDisk {
    config: DiskConfig,
    state: Arc<Mutex<DiskState>>,
    /// Serialises fsyncs: one IO channel.
    io_channel: Arc<Mutex<()>>,
}

impl Default for SimulatedDisk {
    fn default() -> Self {
        SimulatedDisk::new(DiskConfig::default())
    }
}

impl SimulatedDisk {
    /// Creates a device with the given configuration.
    #[must_use]
    pub fn new(config: DiskConfig) -> Self {
        SimulatedDisk {
            config,
            state: Arc::new(Mutex::new(DiskState::default())),
            io_channel: Arc::new(Mutex::new(())),
        }
    }

    /// Creates a device with no latency at all — the default for unit tests.
    #[must_use]
    pub fn instant() -> Self {
        SimulatedDisk::default()
    }

    fn jitter(&self, state: &mut DiskState) -> Duration {
        if self.config.fsync_jitter.is_zero() {
            return Duration::ZERO;
        }
        // xorshift64* — cheap, deterministic, good enough for jitter.
        let mut x = state.jitter_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state.jitter_seed = x;
        let frac = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        self.config.fsync_jitter.mul_f64(frac)
    }
}

impl LogDevice for SimulatedDisk {
    fn append(&self, bytes: &[u8]) -> u64 {
        let mut state = self.state.lock();
        let offset = state.buffer.len() as u64;
        state.buffer.extend_from_slice(bytes);
        state.stats.appends += 1;
        state.stats.bytes_appended += bytes.len() as u64;
        offset
    }

    fn fsync(&self, records: u64) {
        // Hold the IO channel for the duration of the (possibly slept)
        // flush: a single disk can only serve one synchronous flush at a
        // time, which is precisely the serial-commit bottleneck of Base.
        let _channel = self.io_channel.lock();
        let delay = {
            let mut state = self.state.lock();
            let jitter = self.jitter(&mut state);
            state.durable_len = state.buffer.len() as u64;
            state.stats.fsyncs += 1;
            state.stats.group_commit.record_flush(records);
            self.config.fsync_latency + jitter + self.config.contention_latency
        };
        if self.config.sleep && !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }

    fn len(&self) -> u64 {
        self.state.lock().buffer.len() as u64
    }

    fn durable_len(&self) -> u64 {
        self.state.lock().durable_len
    }

    fn durable_contents(&self) -> Vec<u8> {
        let state = self.state.lock();
        state.buffer[..state.durable_len as usize].to_vec()
    }

    fn crash(&self) {
        let mut state = self.state.lock();
        let durable = state.durable_len as usize;
        state.buffer.truncate(durable);
    }

    fn replace(&self, contents: Vec<u8>) {
        let mut state = self.state.lock();
        state.durable_len = contents.len() as u64;
        state.buffer = contents;
    }

    fn stats(&self) -> DiskStats {
        self.state.lock().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_fsync_makes_bytes_durable() {
        let disk = SimulatedDisk::instant();
        assert!(disk.is_empty());
        let off = disk.append(b"hello");
        assert_eq!(off, 0);
        assert_eq!(disk.len(), 5);
        assert_eq!(disk.durable_len(), 0);
        disk.fsync(1);
        assert_eq!(disk.durable_len(), 5);
        assert_eq!(disk.durable_contents(), b"hello");
        let off = disk.append(b", world");
        assert_eq!(off, 5);
        assert_eq!(disk.durable_contents(), b"hello");
    }

    #[test]
    fn crash_discards_unsynced_bytes() {
        let disk = SimulatedDisk::instant();
        disk.append(b"durable");
        disk.fsync(1);
        disk.append(b"volatile");
        assert_eq!(disk.len(), 15);
        disk.crash();
        assert_eq!(disk.len(), 7);
        assert_eq!(disk.durable_contents(), b"durable");
    }

    #[test]
    fn stats_track_group_commit() {
        let disk = SimulatedDisk::instant();
        disk.append(b"a");
        disk.append(b"b");
        disk.fsync(2);
        disk.append(b"c");
        disk.fsync(1);
        let stats = disk.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.bytes_appended, 3);
        assert_eq!(stats.fsyncs, 2);
        assert_eq!(stats.group_commit.records, 3);
        assert!((stats.group_commit.mean_group_size() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn latency_is_slept_when_enabled() {
        let disk = SimulatedDisk::new(DiskConfig {
            fsync_latency: Duration::from_millis(5),
            sleep: true,
            ..DiskConfig::default()
        });
        disk.append(b"x");
        let start = std::time::Instant::now();
        disk.fsync(1);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic_per_device() {
        let disk = SimulatedDisk::new(DiskConfig {
            fsync_latency: Duration::from_millis(1),
            fsync_jitter: Duration::from_millis(4),
            sleep: false,
            ..DiskConfig::default()
        });
        // Jitter must never exceed the configured bound.
        let mut state = disk.state.lock();
        for _ in 0..100 {
            let j = disk.jitter(&mut state);
            assert!(j <= Duration::from_millis(4));
        }
    }

    #[test]
    fn replace_swaps_contents_durably() {
        let disk = SimulatedDisk::instant();
        disk.append(b"old contents");
        disk.fsync(1);
        disk.append(b"volatile");
        disk.replace(b"new".to_vec());
        assert_eq!(disk.len(), 3);
        assert_eq!(disk.durable_len(), 3);
        assert_eq!(disk.durable_contents(), b"new");
        // The replacement survives a crash without an explicit fsync.
        disk.crash();
        assert_eq!(disk.durable_contents(), b"new");
    }

    #[test]
    fn clones_share_the_same_underlying_device() {
        let disk = SimulatedDisk::instant();
        let clone = disk.clone();
        disk.append(b"abc");
        assert_eq!(clone.len(), 3);
        clone.fsync(1);
        assert_eq!(disk.durable_len(), 3);
    }
}
