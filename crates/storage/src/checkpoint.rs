//! Sealed, versioned checkpoints with an atomic manifest pointer flip.
//!
//! A [`CheckpointStore`] holds the durable checkpoint images one replica (or
//! one certifier shard) writes periodically, generalising the fault
//! harness's one-shot baseline seal into a real checkpoint mechanism:
//!
//! * an **image** is a checksummed, versioned frame around an opaque payload
//!   (a [`DatabaseDump`](crate::dump::DatabaseDump) for replicas, an encoded
//!   log suffix for certifier shards), written to its own slot;
//! * the **manifest** is a tiny checksummed pointer record naming the
//!   current image.  Sealing writes the image first and flips the manifest
//!   last, so a crash mid-seal leaves the previous manifest (and therefore
//!   the previous intact checkpoint) in effect — a reader can observe the
//!   old checkpoint or the new one, never a half-written image;
//! * readers walk manifests newest-first and skip any manifest or image
//!   that fails validation, which is exactly the torn-write fallback.
//!
//! The store retains the newest few images so the fallback always has
//! somewhere to land, and log truncation can safely discard every record at
//! or below the newest *sealed* checkpoint's version.

use parking_lot::Mutex;
use tashkent_common::{Error, Result, Version};

use crate::codec::checksum;

/// Magic prefix of a checkpoint image frame.
pub const IMAGE_MAGIC: &[u8; 4] = b"TKCP";
/// Magic prefix of a manifest record.
pub const MANIFEST_MAGIC: &[u8; 4] = b"TKMF";

/// Sealed images (and manifests) retained per store: the current one, plus
/// fallbacks for torn seals.
const RETAINED: usize = 3;

/// One sealed checkpoint read back from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedCheckpoint {
    /// Monotonic seal sequence number (manifest flips, not versions).
    pub seq: u64,
    /// The version the image covers: all effects at or below it are inside.
    pub version: Version,
    /// The opaque checkpoint payload.
    pub payload: Vec<u8>,
}

/// Encodes a checkpoint image frame: magic, version, length, checksum,
/// payload.  The same frame-around-payload convention as the database dump
/// codec, so a truncated or bit-flipped image is always rejected.
#[must_use]
pub fn encode_image(version: Version, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(IMAGE_MAGIC);
    out.extend_from_slice(&version.0.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes and validates a checkpoint image frame.
///
/// # Errors
///
/// Returns [`Error::Corruption`] on wrong magic, any truncation or a
/// checksum mismatch.
pub fn decode_image(bytes: &[u8]) -> Result<(Version, Vec<u8>)> {
    if bytes.len() < 20 {
        return Err(Error::Corruption("truncated checkpoint image header".into()));
    }
    if &bytes[0..4] != IMAGE_MAGIC {
        return Err(Error::Corruption("bad checkpoint image magic".into()));
    }
    let version = Version(u64::from_be_bytes(bytes[4..12].try_into().unwrap()));
    let len = u32::from_be_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let expected = u32::from_be_bytes(bytes[16..20].try_into().unwrap());
    let payload = &bytes[20..];
    if payload.len() != len {
        return Err(Error::Corruption(format!(
            "checkpoint image payload length {} does not match header {len}",
            payload.len()
        )));
    }
    if checksum(payload) != expected {
        return Err(Error::Corruption("checkpoint image checksum mismatch".into()));
    }
    Ok((version, payload.to_vec()))
}

/// Encodes a manifest record pointing at slot `slot` holding a checkpoint
/// at `version`, sealed as flip number `seq`.
#[must_use]
pub fn encode_manifest(seq: u64, slot: u64, version: Version) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    body.extend_from_slice(&seq.to_be_bytes());
    body.extend_from_slice(&slot.to_be_bytes());
    body.extend_from_slice(&version.0.to_be_bytes());
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum(&body).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<(u64, u64, Version)> {
    if bytes.len() < 12 {
        return Err(Error::Corruption("truncated manifest header".into()));
    }
    if &bytes[0..4] != MANIFEST_MAGIC {
        return Err(Error::Corruption("bad manifest magic".into()));
    }
    let len = u32::from_be_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let expected = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
    let body = &bytes[12..];
    if body.len() != len || len != 24 {
        return Err(Error::Corruption("torn manifest body".into()));
    }
    if checksum(body) != expected {
        return Err(Error::Corruption("manifest checksum mismatch".into()));
    }
    let seq = u64::from_be_bytes(body[0..8].try_into().unwrap());
    let slot = u64::from_be_bytes(body[8..16].try_into().unwrap());
    let version = Version(u64::from_be_bytes(body[16..24].try_into().unwrap()));
    Ok((seq, slot, version))
}

#[derive(Debug, Default)]
struct StoreInner {
    next_seq: u64,
    next_slot: u64,
    /// `(slot id, raw image bytes)`, oldest first.
    slots: Vec<(u64, Vec<u8>)>,
    /// Raw manifest writes, oldest first.  The newest *valid* one wins.
    manifests: Vec<Vec<u8>>,
}

/// Durable store of sealed checkpoint images behind a manifest pointer.
///
/// Cheap to share: every method takes `&self`.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
}

impl CheckpointStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Seals `payload` as a checkpoint covering `version`: writes the image
    /// to a fresh slot, then flips the manifest to point at it.  Returns the
    /// seal sequence number.
    pub fn seal(&self, version: Version, payload: &[u8]) -> u64 {
        let image = encode_image(version, payload);
        let mut inner = self.inner.lock();
        let slot = inner.next_slot;
        inner.next_slot += 1;
        inner.slots.push((slot, image));
        // The image is fully durable before the pointer flip: a torn write
        // can only affect the manifest, never expose a half image.
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let manifest = encode_manifest(seq, slot, version);
        inner.manifests.push(manifest);
        Self::prune(&mut inner);
        seq
    }

    fn prune(inner: &mut StoreInner) {
        if inner.manifests.len() > RETAINED {
            let excess = inner.manifests.len() - RETAINED;
            inner.manifests.drain(0..excess);
        }
        if inner.slots.len() > RETAINED {
            let excess = inner.slots.len() - RETAINED;
            inner.slots.drain(0..excess);
        }
    }

    /// The newest intact sealed checkpoint, falling back across torn or
    /// corrupt manifests and images.  `None` if no intact checkpoint exists.
    #[must_use]
    pub fn latest(&self) -> Option<SealedCheckpoint> {
        let inner = self.inner.lock();
        for raw in inner.manifests.iter().rev() {
            let Ok((seq, slot, version)) = decode_manifest(raw) else {
                continue;
            };
            let Some((_, image)) = inner.slots.iter().find(|(id, _)| *id == slot) else {
                continue;
            };
            let Ok((image_version, payload)) = decode_image(image) else {
                continue;
            };
            if image_version != version {
                continue;
            }
            return Some(SealedCheckpoint {
                seq,
                version,
                payload,
            });
        }
        None
    }

    /// The version of the newest intact sealed checkpoint, or
    /// [`Version::ZERO`] if none has been sealed — the value this store
    /// contributes to the truncation watermark.
    #[must_use]
    pub fn latest_version(&self) -> Version {
        self.latest().map_or(Version::ZERO, |cp| cp.version)
    }

    /// Every intact retained checkpoint, oldest first (Tashkent-MW recovery
    /// walks these newest-first looking for an intact dump).
    #[must_use]
    pub fn intact_payloads_oldest_first(&self) -> Vec<Vec<u8>> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for raw in &inner.manifests {
            let Ok((_, slot, version)) = decode_manifest(raw) else {
                continue;
            };
            let Some((_, image)) = inner.slots.iter().find(|(id, _)| *id == slot) else {
                continue;
            };
            if let Ok((image_version, payload)) = decode_image(image) {
                if image_version == version {
                    out.push(payload);
                }
            }
        }
        out
    }

    /// `true` if at least one intact checkpoint is sealed.
    #[must_use]
    pub fn has_checkpoint(&self) -> bool {
        self.latest().is_some()
    }

    /// Test hook: appends a raw (possibly torn or corrupt) manifest write,
    /// simulating a crash mid-flip.
    pub fn install_raw_manifest(&self, bytes: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.manifests.push(bytes);
        Self::prune(&mut inner);
    }

    /// Test hook: appends a raw image slot without flipping the manifest,
    /// returning its slot id — half of a simulated interrupted seal.
    pub fn install_raw_slot(&self, bytes: Vec<u8>) -> u64 {
        let mut inner = self.inner.lock();
        let slot = inner.next_slot;
        inner.next_slot += 1;
        inner.slots.push((slot, bytes));
        Self::prune(&mut inner);
        slot
    }

    /// Test hook: the next manifest sequence number.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_and_read_back_round_trips() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        assert_eq!(store.latest_version(), Version::ZERO);
        store.seal(Version(7), b"payload seven");
        let cp = store.latest().unwrap();
        assert_eq!(cp.version, Version(7));
        assert_eq!(cp.payload, b"payload seven");
        store.seal(Version(12), b"payload twelve");
        assert_eq!(store.latest_version(), Version(12));
        assert_eq!(store.latest().unwrap().payload, b"payload twelve");
        let all = store.intact_payloads_oldest_first();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], b"payload seven");
    }

    #[test]
    fn image_codec_rejects_every_truncation_and_corruption() {
        let full = encode_image(Version(42), b"the checkpointed state");
        let (version, payload) = decode_image(&full).unwrap();
        assert_eq!(version, Version(42));
        assert_eq!(payload, b"the checkpointed state");
        for cut in 0..full.len() {
            assert!(
                decode_image(&full[..cut]).is_err(),
                "decoded a truncated image of {cut} bytes"
            );
        }
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(decode_image(&flipped).is_err());
        let mut wrong_magic = full;
        wrong_magic[0] = b'X';
        assert!(decode_image(&wrong_magic).is_err());
    }

    #[test]
    fn torn_manifest_falls_back_to_previous_sealed_checkpoint() {
        let store = CheckpointStore::new();
        store.seal(Version(10), b"good ten");
        // A crash mid-flip: the new image may or may not have landed, the
        // manifest write is torn.  Reads must land on version 10 intact.
        let slot = store.install_raw_slot(encode_image(Version(20), b"good twenty"));
        let manifest = encode_manifest(store.next_seq(), slot, Version(20));
        store.install_raw_manifest(manifest[..manifest.len() / 2].to_vec());
        let cp = store.latest().unwrap();
        assert_eq!(cp.version, Version(10));
        assert_eq!(cp.payload, b"good ten");
    }

    #[test]
    fn manifest_pointing_at_a_torn_image_falls_back_too() {
        let store = CheckpointStore::new();
        store.seal(Version(10), b"good ten");
        // Manifest flip completed but the image itself is torn (out-of-order
        // write surfaced by a crash): fall back, never expose half an image.
        let image = encode_image(Version(20), b"good twenty");
        let slot = store.install_raw_slot(image[..image.len() - 3].to_vec());
        store.install_raw_manifest(encode_manifest(store.next_seq(), slot, Version(20)));
        assert_eq!(store.latest().unwrap().version, Version(10));
        // A subsequent intact seal takes over again.
        store.seal(Version(30), b"good thirty");
        assert_eq!(store.latest().unwrap().version, Version(30));
    }

    #[test]
    fn retention_keeps_a_bounded_number_of_images() {
        let store = CheckpointStore::new();
        for v in 1..=10u64 {
            store.seal(Version(v), format!("payload {v}").as_bytes());
        }
        assert_eq!(store.latest_version(), Version(10));
        let all = store.intact_payloads_oldest_first();
        assert_eq!(all.len(), RETAINED);
        assert_eq!(all.last().unwrap(), b"payload 10");
    }
}
