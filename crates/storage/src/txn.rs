//! Per-transaction state: snapshot, write buffer and captured writeset.
//!
//! The engine captures a transaction's writeset as the transaction executes
//! (the equivalent of the INSERT/UPDATE/DELETE triggers the paper installs in
//! PostgreSQL), so that the proxy can extract it at commit time — and can
//! even look at the *partial* writeset of a still-running transaction, which
//! is what eager pre-certification needs.

use std::collections::HashMap;

use tashkent_common::{RowKey, TableId, TxId, Value, Version, WriteItem, WriteSet};

use crate::row::Row;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxState {
    /// The transaction is executing.
    Active,
    /// The transaction committed, creating the given version (read-only
    /// transactions report the version they read from).
    Committed(Version),
    /// The transaction aborted.
    Aborted,
}

/// Internal state of one transaction.
#[derive(Debug)]
pub struct Transaction {
    /// Engine-local identifier.
    pub id: TxId,
    /// Snapshot the transaction reads from.
    pub start_version: Version,
    /// Lifecycle state.
    pub state: TxState,
    /// Uncommitted row images, keyed by `(table, key)`.  `None` marks a
    /// deletion.  Reads within the transaction consult this buffer before
    /// the shared multi-version store so the transaction sees its own writes.
    pub write_buffer: HashMap<(TableId, RowKey), Option<Row>>,
    /// The captured writeset, in write order.
    pub writeset: WriteSet,
    /// `true` if this transaction is the application of a remote writeset
    /// (used for diagnostics and to skip writeset re-capture downstream).
    pub remote_apply: bool,
    /// For an *ordered* remote apply, its announce-order index.  Row-lock
    /// arbitration between two remote applies compares these: the
    /// later-ordered one can never commit first (it waits for the earlier
    /// one's announce), so holding a row the earlier one needs is a
    /// guaranteed cross-component deadlock and the later one is wounded.
    pub remote_order: Option<u64>,
}

impl Transaction {
    /// Creates a new active transaction reading from `start_version`.
    #[must_use]
    pub fn new(id: TxId, start_version: Version) -> Self {
        Transaction {
            id,
            start_version,
            state: TxState::Active,
            write_buffer: HashMap::new(),
            writeset: WriteSet::new(),
            remote_apply: false,
            remote_order: None,
        }
    }

    /// `true` while the transaction may still read and write.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.state == TxState::Active
    }

    /// `true` if the transaction has not written anything (a read-only
    /// transaction commits locally without certification).
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        self.writeset.is_empty()
    }

    /// Returns the transaction's own uncommitted image of a row, if it wrote
    /// the row.  `Some(None)` means the transaction deleted the row.
    #[must_use]
    pub fn own_write(&self, table: TableId, key: &RowKey) -> Option<&Option<Row>> {
        self.write_buffer.get(&(table, key.clone()))
    }

    /// Records an insert: buffers the new row and captures the writeset item.
    pub fn record_insert(&mut self, table: TableId, key: RowKey, row: Row) {
        self.writeset.push(WriteItem::insert(
            table,
            key.clone(),
            row.columns().to_vec(),
        ));
        self.write_buffer.insert((table, key), Some(row));
    }

    /// Records an update: buffers the new image and captures only the
    /// modified columns (as the PostgreSQL UPDATE trigger does).
    pub fn record_update(
        &mut self,
        table: TableId,
        key: RowKey,
        new_image: Row,
        modified: Vec<(String, Value)>,
    ) {
        self.writeset
            .push(WriteItem::update(table, key.clone(), modified));
        self.write_buffer.insert((table, key), Some(new_image));
    }

    /// Records a deletion.
    pub fn record_delete(&mut self, table: TableId, key: RowKey) {
        self.writeset.push(WriteItem::delete(table, key.clone()));
        self.write_buffer.insert((table, key), None);
    }

    /// The resources (rows) this transaction has written so far.
    #[must_use]
    pub fn written_resources(&self) -> Vec<(TableId, RowKey)> {
        self.write_buffer.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_transaction_is_active_and_read_only() {
        let tx = Transaction::new(TxId(1), Version(5));
        assert!(tx.is_active());
        assert!(tx.is_read_only());
        assert_eq!(tx.start_version, Version(5));
        assert!(tx.written_resources().is_empty());
    }

    #[test]
    fn writes_are_buffered_and_captured() {
        let mut tx = Transaction::new(TxId(1), Version(0));
        let t = TableId(0);
        tx.record_insert(
            t,
            RowKey::Int(1),
            Row::from_columns(vec![("x".into(), Value::Int(1))]),
        );
        tx.record_update(
            t,
            RowKey::Int(1),
            Row::from_columns(vec![("x".into(), Value::Int(2))]),
            vec![("x".into(), Value::Int(2))],
        );
        tx.record_delete(t, RowKey::Int(7));
        assert!(!tx.is_read_only());
        assert_eq!(tx.writeset.len(), 3);
        // The buffer holds the latest image per key.
        let own = tx.own_write(t, &RowKey::Int(1)).unwrap().clone().unwrap();
        assert_eq!(own.get("x"), Some(&Value::Int(2)));
        assert_eq!(tx.own_write(t, &RowKey::Int(7)), Some(&None));
        assert!(tx.own_write(t, &RowKey::Int(9)).is_none());
        assert_eq!(tx.written_resources().len(), 2);
    }

    #[test]
    fn state_transitions() {
        let mut tx = Transaction::new(TxId(1), Version(0));
        tx.state = TxState::Committed(Version(3));
        assert!(!tx.is_active());
        let mut tx = Transaction::new(TxId(2), Version(0));
        tx.state = TxState::Aborted;
        assert!(!tx.is_active());
    }
}
