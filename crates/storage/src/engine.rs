//! The database engine façade.
//!
//! [`Database`] glues the catalogue, the multi-version store, the lock
//! manager and the write-ahead log together behind a transaction API that
//! mirrors what the replication middleware needs from PostgreSQL:
//!
//! * [`Database::begin`] / [`TxHandle::read`] / [`TxHandle::update`] /
//!   [`TxHandle::commit`] — ordinary snapshot-isolated transactions with
//!   eager write locks and first-committer-wins validation.
//! * [`TxHandle::writeset`] — writeset extraction (the trigger mechanism of
//!   Section 8.1).
//! * [`TxHandle::commit_at`] — commit that installs an externally chosen
//!   global version, used by the proxy when it serially applies remote
//!   writesets and local commits (Base and Tashkent-MW).
//! * [`TxHandle::commit_ordered`] — the extended `COMMIT <seq>` API of
//!   Tashkent-API: commits may be submitted concurrently, their commit
//!   records are group-committed in one fsync, and the engine *announces*
//!   them in the prescribed dense order (the 20-line semaphore change of
//!   Section 8.3).
//! * [`Database::set_sync_mode`] — enable / disable synchronous WAL writes
//!   (Section 7.1), which is how Tashkent-MW turns replica commits into
//!   in-memory operations.
//! * [`Database::dump`] / [`Database::restore_from_dump`] /
//!   [`Database::crash`] / [`Database::recover`] — the recovery tool-box of
//!   Section 7.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use tashkent_common::metrics::Stage;
use tashkent_common::{
    Component, Error, Event, EventKind, MetricsRegistry, Result, RowKey, SyncMode, TableId, TxId,
    Value, Version, WriteOp, WriteSet,
};

use crate::disk::{DiskConfig, DiskStats, LogDevice, SimulatedDisk};
use crate::dump::DatabaseDump;
use crate::locks::LockManager;
use crate::row::{Row, TableData};
use crate::schema::Catalog;
use crate::txn::{Transaction, TxState};
use crate::wal::{WalRecord, WalWriter};

/// Row images buffered by a transaction, keyed by `(table, row)` — the
/// payload [`Database::prepare_commit`] hands to the install step.
type WriteBuffer = HashMap<(TableId, RowKey), Option<Row>>;

/// Configuration of one database engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// WAL synchronisation mode (Section 7.1).
    pub sync_mode: SyncMode,
    /// Configuration of the simulated log device.
    pub disk: DiskConfig,
    /// How long an ordered commit waits for its predecessors before the
    /// engine resolves the stall by aborting it (protects against the
    /// API-misuse case of Section 5.2: `COMMIT 9` without `COMMIT 1-8`).
    pub ordered_commit_timeout: Duration,
    /// Bound on one blocking row-lock wait.  Cycles that pass through
    /// components outside the engine (the proxy's apply mutex, the ordered
    /// announce order) are invisible to the wait-for-graph deadlock
    /// detector; when the bound elapses the waiter aborts as a presumed
    /// deadlock victim, which clients treat as a retryable conflict.
    pub lock_wait_timeout: Duration,
    /// Metrics registry the engine reports into (lock-wait times, the
    /// announce-wait stage and WAL group-commit figures).  Defaults to a
    /// disabled registry, which reduces every instrumentation point to one
    /// predictable branch.
    pub metrics: Arc<MetricsRegistry>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sync_mode: SyncMode::Durable,
            disk: DiskConfig::default(),
            ordered_commit_timeout: Duration::from_secs(5),
            lock_wait_timeout: crate::locks::DEFAULT_LOCK_WAIT,
            metrics: Arc::new(MetricsRegistry::disabled()),
        }
    }
}

impl EngineConfig {
    /// Configuration for a replica under a given system: Tashkent-MW turns
    /// synchronous writes off, everything else keeps them on.
    #[must_use]
    pub fn with_sync_mode(sync_mode: SyncMode) -> Self {
        EngineConfig {
            sync_mode,
            ..EngineConfig::default()
        }
    }
}

/// Counters exposed by [`Database::stats`].
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Committed update transactions.
    pub commits: u64,
    /// Committed read-only transactions.
    pub read_only_commits: u64,
    /// Aborted transactions (conflicts, deadlocks, explicit aborts).
    pub aborts: u64,
    /// Aborts that were deadlock victims.
    pub deadlocks: u64,
    /// Current database version (the replica's `replica_version` as far as
    /// the engine knows it).
    pub version: Version,
    /// Log-device statistics (fsync counts, group-commit sizes).
    pub wal: DiskStats,
}

#[derive(Debug, Default)]
struct Counters {
    commits: u64,
    read_only_commits: u64,
    aborts: u64,
    deadlocks: u64,
}

/// Mutable data protected by the announce lock: the table heaps, the current
/// version and the ordered-commit announce counter.
#[derive(Debug, Default)]
struct DataState {
    tables: Vec<TableData>,
    /// Latest announced (visible) version.
    version: Version,
    /// Next version to hand out to standalone `commit()` calls.
    reserved_version: Version,
    /// Dense counter of announced ordered commits (the "semaphore" of
    /// Section 8.3).
    announce_counter: u64,
}

struct DbShared {
    catalog: RwLock<Catalog>,
    data: Mutex<DataState>,
    announced: Condvar,
    txns: Mutex<HashMap<TxId, Transaction>>,
    next_tx: AtomicU64,
    locks: LockManager,
    wal: WalWriter,
    device: Arc<dyn LogDevice>,
    sync_mode: Mutex<SyncMode>,
    counters: Mutex<Counters>,
    crashed: AtomicBool,
    ordered_commit_timeout: Duration,
    metrics: Arc<MetricsRegistry>,
}

/// A snapshot-isolated multi-version database engine.
///
/// `Database` is cheap to clone (all clones share the same engine), which is
/// how the proxy, the workload drivers and the fault injector all hold a
/// handle to the same replica.
#[derive(Clone)]
pub struct Database {
    shared: Arc<DbShared>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("version", &self.version())
            .field("tables", &self.shared.catalog.read().len())
            .finish()
    }
}

impl Database {
    /// Creates an empty database with a fresh simulated log device.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let device: Arc<dyn LogDevice> = Arc::new(SimulatedDisk::new(config.disk.clone()));
        Database::with_device(config, device)
    }

    /// Creates an empty database on top of an existing log device (used by
    /// recovery and by tests that want to share a device).
    #[must_use]
    pub fn with_device(config: EngineConfig, device: Arc<dyn LogDevice>) -> Self {
        Database {
            shared: Arc::new(DbShared {
                catalog: RwLock::new(Catalog::new()),
                data: Mutex::new(DataState::default()),
                announced: Condvar::new(),
                txns: Mutex::new(HashMap::new()),
                next_tx: AtomicU64::new(1),
                locks: LockManager::with_max_wait(config.lock_wait_timeout),
                wal: WalWriter::with_metrics(Arc::clone(&device), Arc::clone(&config.metrics)),
                device,
                sync_mode: Mutex::new(config.sync_mode),
                counters: Mutex::new(Counters::default()),
                crashed: AtomicBool::new(false),
                ordered_commit_timeout: config.ordered_commit_timeout,
                metrics: config.metrics,
            }),
        }
    }

    /// Recovers a database from the durable contents of a log device,
    /// re-creating the given schema first and then redoing every durable
    /// commit record (standard WAL redo recovery, Section 7.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the durable log cannot be decoded.
    pub fn recover(
        config: EngineConfig,
        device: Arc<dyn LogDevice>,
        schema: &[(&str, Vec<&str>)],
    ) -> Result<Self> {
        Database::recover_with_baseline(config, device, schema, None, None)
    }

    /// [`Database::recover`] starting from a baseline image instead of an
    /// empty database, optionally bounding the redo.
    ///
    /// A real engine's WAL redoes *on top of the data pages on disk*; this
    /// simulated engine has no data pages, so state that never went through
    /// the WAL — the bulk-loaded initial database of a benchmark — must be
    /// supplied as a baseline dump or it would vanish on recovery.  Records
    /// at or below the baseline's version are skipped (already covered),
    /// exactly like the checkpoint rule.
    ///
    /// Records are redone in ascending **version** order, not log order:
    /// the ordered-commit API logs each record before waiting for its
    /// announce turn, so under concurrency the physical log interleaves
    /// versions — a log-order redo with a monotonic skip would silently
    /// drop any record written after a higher-versioned one (found by the
    /// fault-schedule harness: a recovered Tashkent-API replica came back
    /// missing interior commits).
    ///
    /// `redo_bound` stops the redo after the given version; replicas that
    /// can re-fetch writesets from the certifier pass the highest version
    /// up to which the log is *provably* complete and fill the rest from
    /// the certifier (see `recover_base_or_api_replica` in the proxy).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the durable log cannot be decoded.
    pub fn recover_with_baseline(
        config: EngineConfig,
        device: Arc<dyn LogDevice>,
        schema: &[(&str, Vec<&str>)],
        baseline: Option<&DatabaseDump>,
        redo_bound: Option<Version>,
    ) -> Result<Self> {
        let mut records: Vec<(Version, WriteSet)> =
            WalRecord::decode_all(&device.durable_contents())?
                .into_iter()
                .filter_map(|record| match record {
                    WalRecord::Commit { version, writeset } => Some((version, writeset)),
                    WalRecord::Checkpoint { .. } => None,
                })
                .collect();
        records.sort_by_key(|(version, _)| *version);
        let db = Database::with_device(config, device);
        for (name, columns) in schema {
            db.create_table(name, columns);
        }
        if let Some(dump) = baseline {
            // The baseline may be any sealed checkpoint, not just a
            // version-0-anchored seed image.  The WAL's dense frontier must
            // *meet* it: the smallest durable record above the checkpoint
            // version must be exactly the next version, otherwise records
            // between checkpoint and log were truncated away and a silent
            // re-fetch would paper over data loss.
            let base = dump.version();
            let first_above = records
                .iter()
                .map(|(version, _)| *version)
                .find(|version| {
                    *version > base && redo_bound.is_none_or(|bound| *version <= bound)
                });
            if let Some(first) = first_above {
                if first > base.next() {
                    return Err(Error::Corruption(format!(
                        "WAL gap above checkpoint: baseline covers {base}, \
                         next durable record is {first}"
                    )));
                }
            }
            dump.load_into(&db);
        }
        for (version, writeset) in records {
            if redo_bound.is_some_and(|bound| version > bound) {
                break;
            }
            // Idempotent with respect to versions already applied (duplicate
            // records, checkpoint or baseline coverage).
            if version > db.version() {
                db.apply_writeset_internal(&writeset, version, false)?;
            }
        }
        Ok(db)
    }

    /// Restores a database from a dump taken with [`Database::dump`]
    /// (Tashkent-MW replica recovery, Section 7.1 Case 1).
    #[must_use]
    pub fn restore_from_dump(config: EngineConfig, dump: &DatabaseDump) -> Self {
        let db = Database::new(config);
        dump.load_into(&db);
        db
    }

    /// Registers a table and returns its identifier.  Idempotent.
    pub fn create_table(&self, name: &str, columns: &[&str]) -> TableId {
        let id = self.shared.catalog.write().create_table(name, columns);
        let mut data = self.shared.data.lock();
        while data.tables.len() <= id.0 as usize {
            data.tables.push(TableData::new());
        }
        id
    }

    /// Looks up a table by name.
    #[must_use]
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.shared.catalog.read().table_id(name)
    }

    /// The schema of every registered table, for feeding [`Database::recover`].
    #[must_use]
    pub fn schema(&self) -> Vec<(String, Vec<String>)> {
        self.shared
            .catalog
            .read()
            .iter()
            .map(|s| (s.name.clone(), s.columns.clone()))
            .collect()
    }

    /// The latest announced (visible) version — the engine's view of
    /// `replica_version`.
    #[must_use]
    pub fn version(&self) -> Version {
        self.shared.data.lock().version
    }

    /// Begins a new transaction reading from the latest announced snapshot.
    #[must_use]
    pub fn begin(&self) -> TxHandle {
        let start_version = self.shared.data.lock().version;
        self.begin_at(start_version)
    }

    /// Begins a transaction pinned to an explicit (possibly older) snapshot.
    ///
    /// Assigning a conservative (older) snapshot is safe under GSI
    /// (Section 6.2): certification still detects every write-write conflict
    /// as long as the label is not newer than the actual snapshot.
    #[must_use]
    pub fn begin_at(&self, start_version: Version) -> TxHandle {
        let id = TxId(self.shared.next_tx.fetch_add(1, Ordering::Relaxed));
        self.shared
            .txns
            .lock()
            .insert(id, Transaction::new(id, start_version));
        TxHandle {
            db: self.clone(),
            id,
        }
    }

    /// Changes the WAL synchronisation mode (Section 7.1).
    pub fn set_sync_mode(&self, mode: SyncMode) {
        *self.shared.sync_mode.lock() = mode;
    }

    /// The current WAL synchronisation mode.
    #[must_use]
    pub fn sync_mode(&self) -> SyncMode {
        *self.shared.sync_mode.lock()
    }

    /// Current engine statistics.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let counters = self.shared.counters.lock();
        EngineStats {
            commits: counters.commits,
            read_only_commits: counters.read_only_commits,
            aborts: counters.aborts,
            deadlocks: counters.deadlocks,
            version: self.version(),
            wal: self.shared.wal.device_stats(),
        }
    }

    /// The log device backing this engine (shared for crash simulation and
    /// recovery).
    #[must_use]
    pub fn log_device(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.shared.device)
    }

    /// Reads the latest committed image of a row outside any transaction
    /// (convenience for tests and workload loaders).
    #[must_use]
    pub fn read_latest(&self, table: TableId, key: impl Into<RowKey>) -> Option<Row> {
        let data = self.shared.data.lock();
        let version = data.version;
        data.tables
            .get(table.0 as usize)
            .and_then(|t| t.read(&key.into(), version))
            .cloned()
    }

    /// Number of visible rows in a table at the latest version.
    #[must_use]
    pub fn row_count(&self, table: TableId) -> usize {
        let data = self.shared.data.lock();
        let version = data.version;
        data.tables
            .get(table.0 as usize)
            .map_or(0, |t| t.scan_at(version).count())
    }

    /// Writesets of all currently active update transactions (their partial
    /// writesets), used by eager pre-certification at the proxy.
    #[must_use]
    pub fn active_update_writesets(&self) -> Vec<(TxId, WriteSet)> {
        self.shared
            .txns
            .lock()
            .values()
            .filter(|t| t.is_active() && !t.writeset.is_empty())
            .map(|t| (t.id, t.writeset.clone()))
            .collect()
    }

    /// Wounds an active transaction: its next lock wait or commit fails so
    /// the middleware can abort it in favour of a remote writeset
    /// (eager pre-certification, Section 8.2).
    pub fn wound(&self, tx: TxId) {
        self.shared.locks.wound(tx);
    }

    /// Aborts a transaction by id, releasing its locks.
    ///
    /// This is the mechanism behind the proxy's eager pre-certification
    /// (Section 8.2): the middleware owns the client connection and can issue
    /// the abort on the client's behalf, so that a certified remote writeset
    /// blocked on the transaction's write locks can proceed.  Subsequent
    /// operations on the aborted transaction fail with
    /// [`Error::InvalidTransactionState`].
    pub fn abort_transaction(&self, tx: TxId) {
        self.shared.locks.wound(tx);
        self.abort_tx(tx);
    }

    /// Takes a consistent dump of the latest committed snapshot
    /// ("DUMP DATA", Section 8.1) without blocking writers for long.
    #[must_use]
    pub fn dump(&self) -> DatabaseDump {
        let catalog = self.shared.catalog.read().clone();
        let data = self.shared.data.lock();
        DatabaseDump::capture(&catalog, &data.tables, data.version)
    }

    /// The dense announce counter of the ordered-commit API: how many ordered
    /// commits have been announced so far.
    #[must_use]
    pub fn announce_counter(&self) -> u64 {
        self.shared.data.lock().announce_counter
    }

    /// Fast-forwards the ordered-commit announce counter to at least `value`.
    ///
    /// Used by the proxy's soft-recovery path (Section 8.1): when an ordered
    /// commit fails after its order index was assigned, the index would
    /// otherwise leave a permanent gap that stalls every later ordered
    /// commit.  Fast-forwarding declares the burned indices consumed.
    pub fn force_announce_counter(&self, value: u64) {
        let mut data = self.shared.data.lock();
        data.announce_counter = data.announce_counter.max(value);
        drop(data);
        self.shared.announced.notify_all();
    }

    /// Bulk-loads rows into a table, installing them at `version` without
    /// going through the transaction machinery or the WAL.
    ///
    /// Used by workload loaders (populating the initial TPC-B / TPC-W
    /// databases) and by dump restoration.  The database version advances to
    /// at least `version`.
    pub fn bulk_load(&self, table: TableId, rows: Vec<(RowKey, Row)>, version: Version) {
        let mut data = self.shared.data.lock();
        while data.tables.len() <= table.0 as usize {
            data.tables.push(TableData::new());
        }
        for (key, row) in rows {
            data.tables[table.0 as usize]
                .chain_mut(key)
                .install(version, Some(row));
        }
        data.version = data.version.max(version);
        data.reserved_version = data.reserved_version.max(version);
    }

    /// Writes a checkpoint record and flushes the WAL.
    pub fn checkpoint(&self) {
        let version = self.version();
        self.shared.wal.append(&WalRecord::Checkpoint { version });
        self.shared.wal.flush_all();
    }

    /// Drops every WAL record whose version is at or below `watermark`,
    /// rewriting the log as the surviving suffix.  Returns how many records
    /// were dropped.
    ///
    /// The caller (the cluster's trimmer) must only pass a watermark covered
    /// by a sealed checkpoint — recovery from the truncated log alone is
    /// impossible below it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the durable log cannot be decoded.
    pub fn truncate_wal_below(&self, watermark: Version) -> Result<usize> {
        self.shared.wal.truncate_below(watermark)
    }

    /// Current size of the WAL in bytes (durable or not) — the figure the
    /// bounded-memory soak assertion watches.
    #[must_use]
    pub fn wal_size(&self) -> u64 {
        self.shared.device.len()
    }

    /// Discards row versions that no snapshot at or after
    /// `current - keep_versions` can see.  Returns the number of versions
    /// discarded.
    pub fn vacuum(&self, keep_versions: u64) -> usize {
        let mut data = self.shared.data.lock();
        let horizon = Version(data.version.0.saturating_sub(keep_versions));
        data.tables
            .iter_mut()
            .map(|t| t.prune_older_than(horizon))
            .sum()
    }

    /// Simulates a crash of the database process: un-synced log bytes are
    /// lost and every subsequent operation fails with
    /// [`Error::Unavailable`] until the database is recovered.
    pub fn crash(&self) {
        self.shared.crashed.store(true, Ordering::SeqCst);
        self.shared.device.crash();
    }

    /// `true` once [`Database::crash`] has been called.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.shared.crashed.load(Ordering::SeqCst)
    }

    /// Applies a (possibly merged) remote writeset as its own transaction and
    /// commits it at `commit_version`, following the engine's sync mode.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts and deadlocks (the proxy then performs soft
    /// recovery) and [`Error::Unavailable`] after a crash.
    pub fn apply_writeset(&self, writeset: &WriteSet, commit_version: Version) -> Result<Version> {
        self.apply_writeset_internal(writeset, commit_version, true)
    }

    fn apply_writeset_internal(
        &self,
        writeset: &WriteSet,
        commit_version: Version,
        respect_sync_mode: bool,
    ) -> Result<Version> {
        let tx = self.begin();
        self.mark_remote_apply(tx.id(), None);
        if let Err(e) = tx.apply_items(writeset) {
            tx.abort();
            return Err(e);
        }
        if respect_sync_mode {
            tx.commit_at(commit_version)
        } else {
            // Recovery replay: never wait on fsyncs.
            tx.commit_at_with_sync(commit_version, false)
        }
    }

    /// Applies a remote writeset with the ordered-commit API (Tashkent-API):
    /// the commit record may be grouped with others and the commit is
    /// announced at dense position `order_index`.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts, deadlocks and ordered-commit timeouts.
    pub fn apply_writeset_ordered(
        &self,
        writeset: &WriteSet,
        commit_version: Version,
        order_index: u64,
    ) -> Result<Version> {
        // An ordered apply can lose a row to an *earlier-ordered* apply
        // mid-flight: `lock_row` wounds the later-ordered holder of a row
        // the earlier one needs (the later one is parked waiting for the
        // earlier one's announce — a guaranteed cross-component deadlock
        // otherwise), and a first-committer validation can trip over the
        // earlier apply's just-installed row.  Both are transient ordering
        // artifacts, not real conflicts — this writeset is certified and
        // must commit — so retry with a fresh snapshot.  Progress is
        // guaranteed: a wound only comes from a strictly earlier announce
        // order, so a retry that waits for this apply's own announce turn
        // cannot be wounded again (every earlier order has announced by
        // then).  The wait matters as much as the retry itself: retrying
        // immediately turns a deep pipeline into a livelock — dozens of
        // wounded appliers respinning begin/apply/conflict at full speed
        // starve the announce chain they are waiting on (on a small box the
        // fault harness measured multi-second drain stalls with ~75
        // runnable threads), while parking on the announce condvar lets the
        // one thread whose turn it is actually run.  The cap is a backstop
        // that surfaces genuine pathology to the caller's resync path.
        const WOUND_RETRIES: usize = 64;
        let mut attempt = 0;
        loop {
            let tx = self.begin();
            self.mark_remote_apply(tx.id(), Some(order_index));
            let result = match tx.apply_items(writeset) {
                Ok(()) => tx.commit_ordered(order_index, commit_version),
                Err(e) => {
                    tx.abort();
                    Err(e)
                }
            };
            match result {
                Err(Error::WriteConflict { .. } | Error::Deadlock { .. })
                    if attempt < WOUND_RETRIES =>
                {
                    attempt += 1;
                    if !self.wait_for_announce_turn(order_index) {
                        return Err(Error::OrderedCommitTimeout {
                            sequence: commit_version,
                        });
                    }
                }
                other => return other,
            }
        }
    }

    /// Parks until every announce order strictly below `order_index` has
    /// announced (the precondition under which an ordered apply retry can
    /// no longer be wounded).  Returns `false` if the ordered-commit
    /// timeout elapses first — the announce chain itself is stuck, which
    /// is the caller's resync path, not a retry case.
    fn wait_for_announce_turn(&self, order_index: u64) -> bool {
        let deadline = std::time::Instant::now() + self.shared.ordered_commit_timeout;
        let mut data = self.shared.data.lock();
        while data.announce_counter < order_index.saturating_sub(1) {
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero()
                || self
                    .shared
                    .announced
                    .wait_for(&mut data, timeout)
                    .timed_out()
            {
                return data.announce_counter >= order_index.saturating_sub(1);
            }
        }
        true
    }

    fn mark_remote_apply(&self, id: TxId, order: Option<u64>) {
        if let Some(tx) = self.shared.txns.lock().get_mut(&id) {
            tx.remote_apply = true;
            tx.remote_order = order;
        }
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_crashed() {
            Err(Error::Unavailable("database has crashed".into()))
        } else {
            Ok(())
        }
    }

    // ----- internal transaction operations (called through TxHandle) -----

    fn with_tx<R>(&self, id: TxId, f: impl FnOnce(&mut Transaction) -> Result<R>) -> Result<R> {
        let mut txns = self.shared.txns.lock();
        let tx = txns.get_mut(&id).ok_or(Error::UnknownTransaction(id))?;
        f(tx)
    }

    fn read_tx(&self, id: TxId, table: TableId, key: &RowKey) -> Result<Option<Row>> {
        self.check_alive()?;
        let (start_version, own) = self.with_tx(id, |tx| {
            if !tx.is_active() {
                return Err(Error::InvalidTransactionState {
                    tx: id,
                    expected: "active",
                });
            }
            Ok((tx.start_version, tx.own_write(table, key).cloned()))
        })?;
        if let Some(own_image) = own {
            return Ok(own_image);
        }
        let data = self.shared.data.lock();
        Ok(data
            .tables
            .get(table.0 as usize)
            .and_then(|t| t.read(key, start_version))
            .cloned())
    }

    fn scan_tx(&self, id: TxId, table: TableId) -> Result<Vec<(RowKey, Row)>> {
        self.check_alive()?;
        let (start_version, buffer) = self.with_tx(id, |tx| {
            if !tx.is_active() {
                return Err(Error::InvalidTransactionState {
                    tx: id,
                    expected: "active",
                });
            }
            Ok((
                tx.start_version,
                tx.write_buffer
                    .iter()
                    .filter(|((t, _), _)| *t == table)
                    .map(|((_, k), v)| (k.clone(), v.clone()))
                    .collect::<HashMap<RowKey, Option<Row>>>(),
            ))
        })?;
        let data = self.shared.data.lock();
        let mut rows: Vec<(RowKey, Row)> = Vec::new();
        if let Some(t) = data.tables.get(table.0 as usize) {
            for (key, row) in t.scan_at(start_version) {
                match buffer.get(key) {
                    Some(Some(own)) => rows.push((key.clone(), own.clone())),
                    Some(None) => {} // Deleted by this transaction.
                    None => rows.push((key.clone(), row.clone())),
                }
            }
        }
        drop(data);
        // Rows inserted by this transaction that are not yet in the store.
        for (key, image) in &buffer {
            if let Some(row) = image {
                if !rows.iter().any(|(k, _)| k == key) {
                    rows.push((key.clone(), row.clone()));
                }
            }
        }
        rows.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(rows)
    }

    fn lock_row(&self, id: TxId, table: TableId, key: &RowKey) -> Result<()> {
        // Remote-writeset applications take priority over ordinary local
        // transactions (Section 8.2: "mark remote writesets with high
        // priority, aborting any conflicting local transaction").  The
        // remote writeset is already certified and must eventually commit,
        // whereas a conflicting local transaction is doomed to fail
        // certification anyway; aborting it immediately also prevents
        // deadlocks between the replication middleware's apply phase and
        // client transactions.
        let (is_remote_apply, my_order) = self
            .with_tx(id, |tx| Ok((tx.remote_apply, tx.remote_order)))
            .unwrap_or((false, None));
        if is_remote_apply {
            let resource = (table, key.clone());
            loop {
                if self.shared.locks.try_acquire(id, &resource)? {
                    return Ok(());
                }
                match self.shared.locks.holder(&resource) {
                    Some(holder) if holder != id => {
                        let (holder_is_remote, holder_order) = self
                            .with_tx(holder, |tx| Ok((tx.remote_apply, tx.remote_order)))
                            .unwrap_or((false, None));
                        if holder_is_remote {
                            // Two *concurrently certified* writesets never
                            // conflict — but two sequential certified
                            // writesets may well write the same row, and
                            // their applies can be scheduled by different
                            // pipeline rounds and race here.  The announce
                            // order decides who must commit first.  A holder
                            // with a LATER order index is parked waiting for
                            // our own announce while holding our row — a
                            // cross-component cycle (row lock ↔ announce
                            // chain) the wait-for graph cannot see, and the
                            // mechanism behind the historical drain-tail
                            // stall (presumed-deadlock retries at ~1 Hz
                            // until an ordered-commit timeout broke the
                            // cycle).  Wound it; `apply_writeset_ordered`
                            // retries it after us.  An EARLIER-ordered (or
                            // unordered) holder announces and releases
                            // soon: wait it out on the blocking path.
                            match (my_order, holder_order) {
                                (Some(mine), Some(theirs)) if theirs > mine => {
                                    self.abort_transaction(holder);
                                    // The victim may be parked in its
                                    // announce wait; wake it so it observes
                                    // the wound now, not at its deadline.
                                    self.shared.announced.notify_all();
                                }
                                _ => break,
                            }
                        } else {
                            self.abort_transaction(holder);
                        }
                    }
                    _ => {}
                }
            }
        }
        let wait_started = self
            .shared
            .metrics
            .is_enabled()
            .then(std::time::Instant::now);
        let acquired = self.shared.locks.acquire(id, &(table, key.clone()));
        if let Some(started) = wait_started {
            self.shared.metrics.record_lock_wait(started.elapsed());
        }
        match acquired {
            Ok(()) => Ok(()),
            Err(Error::Deadlock { tx }) => {
                self.shared.counters.lock().deadlocks += 1;
                Err(Error::Deadlock { tx })
            }
            Err(e) => Err(e),
        }
    }

    fn insert_tx(&self, id: TxId, table: TableId, key: RowKey, row: Row) -> Result<()> {
        self.check_alive()?;
        self.ensure_table(table)?;
        self.lock_row(id, table, &key)?;
        self.with_tx(id, |tx| {
            if !tx.is_active() {
                return Err(Error::InvalidTransactionState {
                    tx: id,
                    expected: "active",
                });
            }
            tx.record_insert(table, key.clone(), row.clone());
            Ok(())
        })
    }

    fn update_tx(
        &self,
        id: TxId,
        table: TableId,
        key: RowKey,
        columns: Vec<(String, Value)>,
    ) -> Result<()> {
        self.check_alive()?;
        self.ensure_table(table)?;
        self.lock_row(id, table, &key)?;
        // Base image: the transaction's own write if any, else the snapshot.
        let base = self.read_tx(id, table, &key)?;
        let Some(base) = base else {
            return Err(Error::RowNotFound {
                table: self.shared.catalog.read().table_name(table).to_owned(),
                key: key.to_string(),
            });
        };
        let new_image = base.with_updates(&columns);
        self.with_tx(id, |tx| {
            tx.record_update(table, key.clone(), new_image.clone(), columns.clone());
            Ok(())
        })
    }

    fn delete_tx(&self, id: TxId, table: TableId, key: RowKey) -> Result<()> {
        self.check_alive()?;
        self.ensure_table(table)?;
        self.lock_row(id, table, &key)?;
        let existing = self.read_tx(id, table, &key)?;
        if existing.is_none() {
            return Err(Error::RowNotFound {
                table: self.shared.catalog.read().table_name(table).to_owned(),
                key: key.to_string(),
            });
        }
        self.with_tx(id, |tx| {
            tx.record_delete(table, key.clone());
            Ok(())
        })
    }

    fn ensure_table(&self, table: TableId) -> Result<()> {
        if self.shared.catalog.read().schema(table).is_some() {
            Ok(())
        } else {
            Err(Error::UnknownTable(format!("{table}")))
        }
    }

    fn writeset_of(&self, id: TxId) -> Result<WriteSet> {
        self.with_tx(id, |tx| Ok(tx.writeset.clone()))
    }

    fn start_version_of(&self, id: TxId) -> Result<Version> {
        self.with_tx(id, |tx| Ok(tx.start_version))
    }

    fn abort_tx(&self, id: TxId) {
        let mut txns = self.shared.txns.lock();
        if let Some(tx) = txns.get_mut(&id) {
            if tx.is_active() {
                tx.state = TxState::Aborted;
                tx.write_buffer.clear();
                self.shared.counters.lock().aborts += 1;
            }
        }
        drop(txns);
        self.shared.locks.release_all(id, false);
    }

    /// Shared commit preparation: validates and extracts what the install
    /// step needs.  Returns `None` for read-only transactions.
    fn prepare_commit(
        &self,
        id: TxId,
    ) -> Result<Option<(WriteSet, WriteBuffer, Version)>> {
        self.check_alive()?;
        if self.shared.locks.is_wounded(id) {
            self.abort_tx(id);
            return Err(Error::WriteConflict {
                tx: id,
                detail: "transaction wounded by replication middleware".into(),
            });
        }
        let (writeset, buffer, start_version) = self.with_tx(id, |tx| {
            if !tx.is_active() {
                return Err(Error::InvalidTransactionState {
                    tx: id,
                    expected: "active",
                });
            }
            Ok((
                tx.writeset.clone(),
                tx.write_buffer.clone(),
                tx.start_version,
            ))
        })?;
        if writeset.is_empty() {
            // Read-only: commit immediately, no WAL, no version change.
            self.with_tx(id, |tx| {
                tx.state = TxState::Committed(start_version);
                Ok(())
            })?;
            self.shared.locks.release_all(id, true);
            self.shared.counters.lock().read_only_commits += 1;
            return Ok(None);
        }
        // First-committer-wins validation against committed state.
        {
            let data = self.shared.data.lock();
            for (table, key) in buffer.keys() {
                if let Some(t) = data.tables.get(table.0 as usize) {
                    if t.modified_after(key, start_version) {
                        drop(data);
                        self.abort_tx(id);
                        return Err(Error::WriteConflict {
                            tx: id,
                            detail: format!("row {key} modified since {start_version}"),
                        });
                    }
                }
            }
        }
        Ok(Some((writeset, buffer, start_version)))
    }

    fn log_commit(&self, version: Version, writeset: &WriteSet, force_sync: Option<bool>) {
        let record = WalRecord::Commit {
            version,
            writeset: writeset.clone(),
        };
        let sync = force_sync.unwrap_or_else(|| self.sync_mode().commit_is_synchronous());
        if sync {
            self.shared.wal.append_durable(&record);
        } else {
            self.shared.wal.append(&record);
        }
    }

    fn install(
        &self,
        data: &mut DataState,
        buffer: &WriteBuffer,
        version: Version,
    ) {
        for ((table, key), image) in buffer {
            while data.tables.len() <= table.0 as usize {
                data.tables.push(TableData::new());
            }
            data.tables[table.0 as usize]
                .chain_mut(key.clone())
                .install(version, image.clone());
        }
        data.version = data.version.max(version);
        data.reserved_version = data.reserved_version.max(version);
    }

    fn finish_commit(&self, id: TxId, version: Version) {
        self.with_tx(id, |tx| {
            tx.state = TxState::Committed(version);
            Ok(())
        })
        .ok();
        self.shared.locks.release_all(id, true);
        self.shared.counters.lock().commits += 1;
    }

    /// Standalone commit: the engine assigns the next version itself and
    /// announces commits in version order while group-committing the log
    /// records.
    fn commit_standalone(&self, id: TxId) -> Result<Version> {
        let Some((writeset, buffer, _)) = self.prepare_commit(id)? else {
            return Ok(self.version());
        };
        // Reserve the next version.
        let target = {
            let mut data = self.shared.data.lock();
            data.reserved_version = data.reserved_version.next();
            data.reserved_version
        };
        self.log_commit(target, &writeset, None);
        // Announce in version order.
        let announce_started = self
            .shared
            .metrics
            .is_enabled()
            .then(std::time::Instant::now);
        let mut data = self.shared.data.lock();
        while data.version != target.prev() {
            self.shared.announced.wait(&mut data);
        }
        if let Some(started) = announce_started {
            self.shared
                .metrics
                .record_stage(Stage::Announce, started.elapsed());
        }
        self.shared.metrics.emit(
            Event::new(Component::Engine, EventKind::Announce)
                .tx(id.0)
                .version(target.0),
        );
        self.install(&mut data, &buffer, target);
        drop(data);
        self.shared.announced.notify_all();
        self.finish_commit(id, target);
        Ok(target)
    }

    /// Externally versioned, serial commit (Base / Tashkent-MW path).
    fn commit_at_version(&self, id: TxId, version: Version, force_sync: Option<bool>) -> Result<Version> {
        let Some((writeset, buffer, _)) = self.prepare_commit(id)? else {
            return Ok(self.version());
        };
        {
            let data = self.shared.data.lock();
            if version <= data.version {
                drop(data);
                self.abort_tx(id);
                return Err(Error::Protocol(format!(
                    "commit version {version} is not newer than current {}",
                    self.version()
                )));
            }
        }
        self.log_commit(version, &writeset, force_sync);
        let mut data = self.shared.data.lock();
        self.install(&mut data, &buffer, version);
        drop(data);
        self.shared.announced.notify_all();
        self.finish_commit(id, version);
        Ok(version)
    }

    /// The extended `COMMIT <seq>` of Tashkent-API: concurrent submission,
    /// group-committed log records, ordered announcement.
    fn commit_ordered_version(&self, id: TxId, order_index: u64, version: Version) -> Result<Version> {
        if order_index == 0 {
            self.abort_tx(id);
            return Err(Error::Protocol(
                "ordered commit indices start at 1".into(),
            ));
        }
        let Some((writeset, buffer, _)) = self.prepare_commit(id)? else {
            return Ok(self.version());
        };
        // Durability first: the commit record may be flushed in any order
        // relative to other transactions (grouped into one fsync when
        // submissions are concurrent).
        self.log_commit(version, &writeset, None);
        // Announce strictly in the prescribed order ("semaphore").
        let announce_started = self
            .shared
            .metrics
            .is_enabled()
            .then(std::time::Instant::now);
        let deadline = std::time::Instant::now() + self.shared.ordered_commit_timeout;
        let mut data = self.shared.data.lock();
        loop {
            if data.announce_counter >= order_index {
                drop(data);
                self.abort_tx(id);
                return Err(Error::Protocol(format!(
                    "ordered commit index {order_index} already announced"
                )));
            }
            if data.announce_counter == order_index - 1 {
                // Our turn — but an earlier-ordered apply may have wounded
                // us while we waited (`lock_row`), in which case our locks
                // are gone and installing would race its write.  Check
                // without `data` held (the transaction table is never taken
                // under the data lock).  No new wound can land after this
                // check: wounds only come from strictly earlier orders, and
                // every one of those has already announced.
                drop(data);
                if !self.with_tx(id, |tx| Ok(tx.is_active())).unwrap_or(false) {
                    return Err(Error::WriteConflict {
                        tx: id,
                        detail: "ordered apply wounded by an earlier-ordered writeset".into(),
                    });
                }
                data = self.shared.data.lock();
                if data.announce_counter == order_index - 1 {
                    break;
                }
                continue;
            }
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            if timeout.is_zero()
                || self
                    .shared
                    .announced
                    .wait_for(&mut data, timeout)
                    .timed_out()
            {
                if data.announce_counter == order_index - 1 {
                    continue;
                }
                drop(data);
                self.abort_tx(id);
                return Err(Error::OrderedCommitTimeout { sequence: version });
            }
            // Woken — by an announce, or by a wound from an earlier-ordered
            // apply that needed one of our rows.  Surface a wound promptly
            // as a retryable conflict instead of sleeping out the deadline.
            drop(data);
            if !self.with_tx(id, |tx| Ok(tx.is_active())).unwrap_or(false) {
                return Err(Error::WriteConflict {
                    tx: id,
                    detail: "ordered apply wounded by an earlier-ordered writeset".into(),
                });
            }
            data = self.shared.data.lock();
        }
        if let Some(started) = announce_started {
            self.shared
                .metrics
                .record_stage(Stage::Announce, started.elapsed());
        }
        self.shared.metrics.emit(
            Event::new(Component::Engine, EventKind::Announce)
                .tx(id.0)
                .version(version.0),
        );
        self.install(&mut data, &buffer, version);
        data.announce_counter = order_index;
        drop(data);
        self.shared.announced.notify_all();
        self.finish_commit(id, version);
        Ok(version)
    }
}

/// Handle to one transaction.
///
/// Dropping an active handle aborts the transaction, so early returns in
/// client code cannot leak write locks.
pub struct TxHandle {
    db: Database,
    id: TxId,
}

impl std::fmt::Debug for TxHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxHandle").field("id", &self.id).finish()
    }
}

impl TxHandle {
    /// The engine-local transaction identifier.
    #[must_use]
    pub fn id(&self) -> TxId {
        self.id
    }

    /// The snapshot version this transaction reads from.
    #[must_use]
    pub fn start_version(&self) -> Version {
        self.db.start_version_of(self.id).unwrap_or(Version::ZERO)
    }

    /// Reads a row, seeing the transaction's own writes first.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is no longer active or the database crashed.
    pub fn read(&self, table: TableId, key: impl Into<RowKey>) -> Result<Option<Row>> {
        self.db.read_tx(self.id, table, &key.into())
    }

    /// Scans all rows of a table visible to this transaction, in key order.
    ///
    /// # Errors
    ///
    /// Fails if the transaction is no longer active or the database crashed.
    pub fn scan(&self, table: TableId) -> Result<Vec<(RowKey, Row)>> {
        self.db.scan_tx(self.id, table)
    }

    /// Inserts (or fully replaces) a row.
    ///
    /// # Errors
    ///
    /// Fails with a write conflict or deadlock if the row is locked by a
    /// competing transaction that goes on to commit.
    pub fn insert(
        &self,
        table: TableId,
        key: impl Into<RowKey>,
        row: Vec<(String, Value)>,
    ) -> Result<()> {
        self.db
            .insert_tx(self.id, table, key.into(), Row::from_columns(row))
    }

    /// Updates columns of an existing row.
    ///
    /// # Errors
    ///
    /// Fails if the row does not exist, or with a conflict / deadlock while
    /// acquiring the row lock.
    pub fn update(
        &self,
        table: TableId,
        key: impl Into<RowKey>,
        columns: Vec<(String, Value)>,
    ) -> Result<()> {
        self.db.update_tx(self.id, table, key.into(), columns)
    }

    /// Deletes a row.
    ///
    /// # Errors
    ///
    /// Fails if the row does not exist, or with a conflict / deadlock while
    /// acquiring the row lock.
    pub fn delete(&self, table: TableId, key: impl Into<RowKey>) -> Result<()> {
        self.db.delete_tx(self.id, table, key.into())
    }

    /// Extracts the transaction's writeset so far (trigger-captured changes).
    #[must_use]
    pub fn writeset(&self) -> WriteSet {
        self.db.writeset_of(self.id).unwrap_or_default()
    }

    /// Applies every item of a writeset as writes of this transaction
    /// (used to re-execute remote writesets).
    ///
    /// Updates to rows that do not exist locally are treated as inserts and
    /// deletions of missing rows are ignored, so that replaying a remote
    /// writeset is robust no matter how much of the schema the replica has
    /// materialised.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts and deadlocks.
    pub fn apply_items(&self, writeset: &WriteSet) -> Result<()> {
        for item in writeset.items() {
            match &item.op {
                WriteOp::Insert { row } => {
                    self.insert(item.table, item.key.clone(), row.clone())?;
                }
                WriteOp::Update { columns } => {
                    match self.update(item.table, item.key.clone(), columns.clone()) {
                        Ok(()) => {}
                        Err(Error::RowNotFound { .. }) => {
                            self.insert(item.table, item.key.clone(), columns.clone())?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                WriteOp::Delete => match self.delete(item.table, item.key.clone()) {
                    Ok(()) | Err(Error::RowNotFound { .. }) => {}
                    Err(e) => return Err(e),
                },
            }
        }
        Ok(())
    }

    /// Commits with an engine-assigned version (standalone operation).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::WriteConflict`] under first-committer-wins, or if
    /// the transaction was wounded, or after a crash.
    pub fn commit(&self) -> Result<Version> {
        self.db.commit_standalone(self.id)
    }

    /// Commits at an externally chosen version (serial replicated path).
    ///
    /// # Errors
    ///
    /// As for [`TxHandle::commit`], plus [`Error::Protocol`] if the version
    /// is not newer than the replica's current version.
    pub fn commit_at(&self, version: Version) -> Result<Version> {
        self.db.commit_at_version(self.id, version, None)
    }

    /// Commits at an externally chosen version, overriding the sync mode
    /// (used by recovery replay, which never waits for fsyncs).
    ///
    /// # Errors
    ///
    /// As for [`TxHandle::commit_at`].
    pub fn commit_at_with_sync(&self, version: Version, sync: bool) -> Result<Version> {
        self.db.commit_at_version(self.id, version, Some(sync))
    }

    /// The extended commit API of Tashkent-API: `COMMIT <seq>`.
    ///
    /// `order_index` is the dense per-engine announce position (1, 2, 3, …)
    /// and `version` the global version to install.  Concurrent ordered
    /// commits group their log records into a single fsync; announcement
    /// happens strictly in `order_index` order.
    ///
    /// # Errors
    ///
    /// As for [`TxHandle::commit`], plus [`Error::OrderedCommitTimeout`] if a
    /// predecessor index never arrives (API misuse, Section 5.2).
    pub fn commit_ordered(&self, order_index: u64, version: Version) -> Result<Version> {
        self.db.commit_ordered_version(self.id, order_index, version)
    }

    /// Aborts the transaction, releasing its locks.
    pub fn abort(&self) {
        self.db.abort_tx(self.id);
    }

    fn is_active(&self) -> bool {
        self.db
            .shared
            .txns
            .lock()
            .get(&self.id)
            .is_some_and(Transaction::is_active)
    }
}

impl Drop for TxHandle {
    fn drop(&mut self) {
        if self.is_active() {
            self.db.abort_tx(self.id);
        }
        // Garbage-collect finished transaction state.
        self.db.shared.txns.lock().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use std::thread;

    use super::*;

    fn test_db() -> (Database, TableId) {
        let db = Database::new(EngineConfig::default());
        let t = db.create_table("accounts", &["balance"]);
        (db, t)
    }

    fn balance(db: &Database, t: TableId, key: i64) -> i64 {
        db.read_latest(t, key)
            .and_then(|r| r.get("balance").and_then(Value::as_int))
            .unwrap_or(i64::MIN)
    }

    #[test]
    fn insert_read_commit() {
        let (db, t) = test_db();
        let tx = db.begin();
        tx.insert(t, 1, vec![("balance".into(), Value::Int(100))])
            .unwrap();
        // Own write is visible inside the transaction…
        assert_eq!(
            tx.read(t, 1).unwrap().unwrap().get("balance"),
            Some(&Value::Int(100))
        );
        // …but not outside before commit.
        assert!(db.read_latest(t, 1).is_none());
        let v = tx.commit().unwrap();
        assert_eq!(v, Version(1));
        assert_eq!(db.version(), Version(1));
        assert_eq!(balance(&db, t, 1), 100);
        let stats = db.stats();
        assert_eq!(stats.commits, 1);
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let (db, t) = test_db();
        let tx = db.begin();
        assert!(tx.read(t, 1).unwrap().is_none());
        tx.commit().unwrap();
        assert_eq!(db.version(), Version::ZERO);
        assert_eq!(db.stats().read_only_commits, 1);
        assert_eq!(db.stats().wal.fsyncs, 0, "read-only commits never fsync");
    }

    #[test]
    fn snapshot_isolation_reads_ignore_later_commits() {
        let (db, t) = test_db();
        let setup = db.begin();
        setup
            .insert(t, 1, vec![("balance".into(), Value::Int(1))])
            .unwrap();
        setup.commit().unwrap();

        let reader = db.begin();
        assert_eq!(
            reader.read(t, 1).unwrap().unwrap().get("balance"),
            Some(&Value::Int(1))
        );
        // A concurrent writer commits a new version.
        let writer = db.begin();
        writer
            .update(t, 1, vec![("balance".into(), Value::Int(2))])
            .unwrap();
        writer.commit().unwrap();
        // The reader still sees its snapshot.
        assert_eq!(
            reader.read(t, 1).unwrap().unwrap().get("balance"),
            Some(&Value::Int(1))
        );
        reader.commit().unwrap();
        assert_eq!(balance(&db, t, 1), 2);
    }

    #[test]
    fn first_committer_wins_on_write_write_conflict() {
        let (db, t) = test_db();
        let setup = db.begin();
        setup
            .insert(t, 1, vec![("balance".into(), Value::Int(0))])
            .unwrap();
        setup.commit().unwrap();

        // T1 writes the row and commits; T2, which started earlier, then
        // tries to write the same row and must abort.
        let t2 = db.begin();
        let t1 = db.begin();
        t1.update(t, 1, vec![("balance".into(), Value::Int(10))])
            .unwrap();
        t1.commit().unwrap();
        let result = t2.update(t, 1, vec![("balance".into(), Value::Int(20))]);
        // The lock is free (T1 finished) so the write succeeds; the conflict
        // must then be caught at commit time.
        if result.is_ok() {
            assert!(matches!(
                t2.commit(),
                Err(Error::WriteConflict { .. })
            ));
        }
        assert_eq!(balance(&db, t, 1), 10);
        assert!(db.stats().aborts >= 1);
    }

    #[test]
    fn blocked_writer_aborts_when_holder_commits() {
        let (db, t) = test_db();
        let setup = db.begin();
        setup
            .insert(t, 1, vec![("balance".into(), Value::Int(0))])
            .unwrap();
        setup.commit().unwrap();

        let holder = db.begin();
        holder
            .update(t, 1, vec![("balance".into(), Value::Int(1))])
            .unwrap();
        let db2 = db.clone();
        let waiter = thread::spawn(move || {
            let tx = db2.begin();
            let r = tx.update(t, 1, vec![("balance".into(), Value::Int(2))]);
            if r.is_ok() {
                tx.commit().map(|_| ())
            } else {
                tx.abort();
                r
            }
        });
        thread::sleep(Duration::from_millis(30));
        holder.commit().unwrap();
        let result = waiter.join().unwrap();
        assert!(matches!(result, Err(Error::WriteConflict { .. })));
        assert_eq!(balance(&db, t, 1), 1);
    }

    #[test]
    fn writeset_extraction_captures_modified_columns_only() {
        let (db, t) = test_db();
        let setup = db.begin();
        setup
            .insert(
                t,
                1,
                vec![
                    ("balance".into(), Value::Int(5)),
                    ("name".into(), Value::Text("a".into())),
                ],
            )
            .unwrap();
        setup.commit().unwrap();
        let tx = db.begin();
        tx.update(t, 1, vec![("balance".into(), Value::Int(6))])
            .unwrap();
        let ws = tx.writeset();
        assert_eq!(ws.len(), 1);
        match &ws.items()[0].op {
            WriteOp::Update { columns } => {
                assert_eq!(columns.len(), 1);
                assert_eq!(columns[0].0, "balance");
            }
            other => panic!("expected update, got {other:?}"),
        }
        tx.abort();
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn commit_at_installs_externally_chosen_versions() {
        let (db, t) = test_db();
        // The proxy applies a grouped remote writeset T1_2_3 at version 3…
        let ws = WriteSet::from_items(vec![tashkent_common::WriteItem::insert(
            t,
            7,
            vec![("balance".into(), Value::Int(70))],
        )]);
        db.apply_writeset(&ws, Version(3)).unwrap();
        assert_eq!(db.version(), Version(3));
        // …then commits the local transaction at version 4.
        let tx = db.begin();
        tx.insert(t, 8, vec![("balance".into(), Value::Int(80))])
            .unwrap();
        assert_eq!(tx.commit_at(Version(4)).unwrap(), Version(4));
        assert_eq!(db.version(), Version(4));
        // A stale version is rejected.
        let tx = db.begin();
        tx.insert(t, 9, vec![("balance".into(), Value::Int(90))])
            .unwrap();
        assert!(matches!(
            tx.commit_at(Version(2)),
            Err(Error::Protocol(_))
        ));
    }

    #[test]
    fn ordered_commits_announce_in_sequence_and_group_fsyncs() {
        let (db, t) = test_db();
        db.set_sync_mode(SyncMode::Durable);
        // Submit four ordered commits concurrently, in scrambled submission
        // order; the engine must announce them as 1, 2, 3, 4.
        let mut handles = Vec::new();
        for (order, version, key) in [(3u64, 8u64, 3i64), (1, 3, 1), (4, 9, 4), (2, 4, 2)] {
            let db2 = db.clone();
            handles.push(thread::spawn(move || {
                let tx = db2.begin();
                tx.insert(t, key, vec![("balance".into(), Value::Int(key))])
                    .unwrap();
                tx.commit_ordered(order, Version(version)).unwrap()
            }));
            thread::sleep(Duration::from_millis(5));
        }
        let mut versions: Vec<Version> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        versions.sort();
        assert_eq!(
            versions,
            vec![Version(3), Version(4), Version(8), Version(9)]
        );
        assert_eq!(db.version(), Version(9));
        // All four rows are present.
        for key in 1..=4i64 {
            assert_eq!(balance(&db, t, key), key);
        }
        // Group commit: fewer fsyncs than commits is possible (not asserted
        // strictly because timing-dependent), but every commit is durable.
        let stats = db.stats();
        assert_eq!(stats.commits, 4);
        assert!(stats.wal.fsyncs <= 4);
    }

    #[test]
    fn ordered_commit_times_out_on_missing_predecessor() {
        let db = Database::new(EngineConfig {
            ordered_commit_timeout: Duration::from_millis(50),
            ..EngineConfig::default()
        });
        let t = db.create_table("t", &["x"]);
        let tx = db.begin();
        tx.insert(t, 1, vec![("x".into(), Value::Int(1))]).unwrap();
        // COMMIT 9 without COMMIT 1-8 ever arriving: the engine aborts it.
        let result = tx.commit_ordered(9, Version(9));
        assert!(matches!(result, Err(Error::OrderedCommitTimeout { .. })));
        assert_eq!(db.version(), Version::ZERO);
    }

    #[test]
    fn wounded_ordered_apply_parks_for_its_turn_instead_of_spinning() {
        // A wounded (or lock-timed-out) ordered apply cannot succeed before
        // its announce turn: every wound comes from a strictly earlier
        // order.  The retry loop must therefore park on the announce
        // condvar rather than respin begin/apply/conflict — the hot-spin
        // variant burned one full lock-wait round per retry (the fault
        // harness measured ~75 runnable threads and 10+ second drain
        // stalls on seed 0x29).  Here the predecessor (order 1) never
        // arrives and a local transaction pins the row: the apply must
        // give up with OrderedCommitTimeout after roughly one lock-wait
        // plus one announce-wait, not 64 lock-wait rounds.
        let db = Database::new(EngineConfig {
            ordered_commit_timeout: Duration::from_millis(75),
            lock_wait_timeout: Duration::from_millis(50),
            ..EngineConfig::default()
        });
        let t = db.create_table("t", &["x"]);
        let holder = db.begin();
        holder
            .insert(t, 1, vec![("x".into(), Value::Int(1))])
            .unwrap();
        let mut writeset = WriteSet::new();
        writeset.push(tashkent_common::WriteItem::update(
            t,
            1,
            vec![("x".into(), Value::Int(2))],
        ));
        let started = std::time::Instant::now();
        let result = db.apply_writeset_ordered(&writeset, Version(2), 2);
        let elapsed = started.elapsed();
        assert!(
            matches!(
                result,
                Err(Error::OrderedCommitTimeout { .. } | Error::Deadlock { .. })
            ),
            "stuck ordered apply must surface to the resync path: {result:?}"
        );
        assert!(
            elapsed < Duration::from_secs(1),
            "ordered apply spun through lock-wait rounds instead of parking \
             ({elapsed:?})"
        );
        drop(holder);
    }

    #[test]
    fn sync_mode_off_skips_fsyncs() {
        let db = Database::new(EngineConfig::with_sync_mode(SyncMode::Off));
        let t = db.create_table("t", &["x"]);
        for i in 0..10 {
            let tx = db.begin();
            tx.insert(t, i, vec![("x".into(), Value::Int(i))]).unwrap();
            tx.commit().unwrap();
        }
        let stats = db.stats();
        assert_eq!(stats.commits, 10);
        assert_eq!(stats.wal.fsyncs, 0);
        // The WAL content exists but is volatile: a crash loses it.
        db.crash();
        let recovered =
            Database::recover(EngineConfig::default(), db.log_device(), &[("t", vec!["x"])])
                .unwrap();
        assert_eq!(recovered.version(), Version::ZERO);
    }

    #[test]
    fn durable_commits_survive_crash_and_recovery() {
        let (db, t) = test_db();
        for i in 0..5 {
            let tx = db.begin();
            tx.insert(t, i, vec![("balance".into(), Value::Int(i * 10))])
                .unwrap();
            tx.commit().unwrap();
        }
        db.crash();
        assert!(db.is_crashed());
        assert!(matches!(
            db.begin().read(t, 1),
            Err(Error::Unavailable(_))
        ));
        let recovered = Database::recover(
            EngineConfig::default(),
            db.log_device(),
            &[("accounts", vec!["balance"])],
        )
        .unwrap();
        assert_eq!(recovered.version(), Version(5));
        let t2 = recovered.table_id("accounts").unwrap();
        for i in 0..5 {
            assert_eq!(balance(&recovered, t2, i), i * 10);
        }
    }

    #[test]
    fn dump_and_restore_reproduce_state() {
        let (db, t) = test_db();
        for i in 0..20 {
            let tx = db.begin();
            tx.insert(t, i, vec![("balance".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        let dump = db.dump();
        assert_eq!(dump.version(), Version(20));
        let restored = Database::restore_from_dump(EngineConfig::default(), &dump);
        assert_eq!(restored.version(), Version(20));
        let t2 = restored.table_id("accounts").unwrap();
        assert_eq!(restored.row_count(t2), 20);
        assert_eq!(balance(&restored, t2, 7), 7);
    }

    #[test]
    fn wounded_transaction_cannot_commit() {
        let (db, t) = test_db();
        let tx = db.begin();
        tx.insert(t, 1, vec![("balance".into(), Value::Int(1))])
            .unwrap();
        db.wound(tx.id());
        assert!(matches!(tx.commit(), Err(Error::WriteConflict { .. })));
        assert!(db.read_latest(t, 1).is_none());
    }

    #[test]
    fn active_writesets_expose_partial_writes() {
        let (db, t) = test_db();
        let tx = db.begin();
        tx.insert(t, 1, vec![("balance".into(), Value::Int(1))])
            .unwrap();
        let active = db.active_update_writesets();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].0, tx.id());
        assert_eq!(active[0].1.len(), 1);
        tx.abort();
        assert!(db.active_update_writesets().is_empty());
    }

    #[test]
    fn dropping_an_active_handle_aborts_it() {
        let (db, t) = test_db();
        {
            let tx = db.begin();
            tx.insert(t, 1, vec![("balance".into(), Value::Int(1))])
                .unwrap();
            // Dropped without commit.
        }
        assert!(db.read_latest(t, 1).is_none());
        assert_eq!(db.stats().aborts, 1);
        // The lock was released: a new writer can proceed.
        let tx = db.begin();
        tx.insert(t, 1, vec![("balance".into(), Value::Int(2))])
            .unwrap();
        tx.commit().unwrap();
    }

    #[test]
    fn scan_merges_own_writes_and_respects_deletes() {
        let (db, t) = test_db();
        let setup = db.begin();
        for i in 0..3 {
            setup
                .insert(t, i, vec![("balance".into(), Value::Int(i))])
                .unwrap();
        }
        setup.commit().unwrap();
        let tx = db.begin();
        tx.delete(t, 0).unwrap();
        tx.insert(t, 10, vec![("balance".into(), Value::Int(10))])
            .unwrap();
        tx.update(t, 1, vec![("balance".into(), Value::Int(99))])
            .unwrap();
        let rows = tx.scan(t).unwrap();
        let keys: Vec<i64> = rows
            .iter()
            .map(|(k, _)| match k {
                RowKey::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 10]);
        assert_eq!(rows[0].1.get("balance"), Some(&Value::Int(99)));
        tx.abort();
        // Outside the aborted transaction nothing changed.
        assert_eq!(db.row_count(t), 3);
    }

    #[test]
    fn vacuum_prunes_dead_versions() {
        let (db, t) = test_db();
        let setup = db.begin();
        setup
            .insert(t, 1, vec![("balance".into(), Value::Int(0))])
            .unwrap();
        setup.commit().unwrap();
        for i in 1..=10 {
            let tx = db.begin();
            tx.update(t, 1, vec![("balance".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        let removed = db.vacuum(0);
        assert!(removed >= 9, "expected most versions pruned, got {removed}");
        assert_eq!(balance(&db, t, 1), 10);
    }

    #[test]
    fn update_missing_row_is_an_error_but_apply_items_tolerates_it() {
        let (db, t) = test_db();
        let tx = db.begin();
        assert!(matches!(
            tx.update(t, 99, vec![("balance".into(), Value::Int(1))]),
            Err(Error::RowNotFound { .. })
        ));
        assert!(matches!(
            tx.delete(t, 99),
            Err(Error::RowNotFound { .. })
        ));
        tx.abort();
        // A remote writeset updating an unknown row falls back to insert.
        let ws = WriteSet::from_items(vec![tashkent_common::WriteItem::update(
            t,
            99,
            vec![("balance".into(), Value::Int(5))],
        )]);
        db.apply_writeset(&ws, Version(1)).unwrap();
        assert_eq!(balance(&db, t, 99), 5);
    }

    #[test]
    fn recovery_from_a_mid_stream_checkpoint_meets_the_wal_frontier() {
        let (db, t) = test_db();
        for i in 0..8 {
            let tx = db.begin();
            tx.insert(t, i, vec![("balance".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        // Seal a checkpoint at version 5 and truncate the WAL below it: the
        // log now starts at version 6 and the checkpoint is *not* anchored
        // at version 0.
        let dump_at_5 = {
            // Rebuild the version-5 image by replaying onto a fresh db.
            let fresh = Database::new(EngineConfig::default());
            let ft = fresh.create_table("accounts", &["balance"]);
            for i in 0..5 {
                let tx = fresh.begin();
                tx.insert(ft, i, vec![("balance".into(), Value::Int(i))])
                    .unwrap();
                tx.commit().unwrap();
            }
            fresh.dump()
        };
        assert_eq!(db.truncate_wal_below(Version(5)).unwrap(), 5);
        db.crash();
        let recovered = Database::recover_with_baseline(
            EngineConfig::default(),
            db.log_device(),
            &[("accounts", vec!["balance"])],
            Some(&dump_at_5),
            None,
        )
        .unwrap();
        assert_eq!(recovered.version(), Version(8));
        let t2 = recovered.table_id("accounts").unwrap();
        for i in 0..8 {
            assert_eq!(balance(&recovered, t2, i), i);
        }
    }

    #[test]
    fn recovery_errors_loudly_when_the_checkpoint_misses_the_wal_frontier() {
        let (db, t) = test_db();
        for i in 0..8 {
            let tx = db.begin();
            tx.insert(t, i, vec![("balance".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        // The log was truncated below version 5, but the only checkpoint on
        // hand covers version 3: versions 4 and 5 exist nowhere.  Recovery
        // must refuse instead of silently starting from the stale image.
        let stale = {
            let fresh = Database::new(EngineConfig::default());
            let ft = fresh.create_table("accounts", &["balance"]);
            for i in 0..3 {
                let tx = fresh.begin();
                tx.insert(ft, i, vec![("balance".into(), Value::Int(i))])
                    .unwrap();
                tx.commit().unwrap();
            }
            fresh.dump()
        };
        db.truncate_wal_below(Version(5)).unwrap();
        db.crash();
        let result = Database::recover_with_baseline(
            EngineConfig::default(),
            db.log_device(),
            &[("accounts", vec!["balance"])],
            Some(&stale),
            None,
        );
        assert!(matches!(result, Err(Error::Corruption(_))));
    }

    #[test]
    fn unknown_table_is_rejected() {
        let db = Database::new(EngineConfig::default());
        let tx = db.begin();
        assert!(matches!(
            tx.insert(TableId(9), 1, vec![]),
            Err(Error::UnknownTable(_))
        ));
    }

    use std::time::Duration;
}
