//! Table catalogue.
//!
//! The engine is intentionally schema-light: a table has a name, a dense
//! [`TableId`] and a list of column names.  Column names are only used for
//! writeset payloads and for dumps; rows themselves are free-form column
//! maps so that the three benchmark schemas (AllUpdates, TPC-B, TPC-W) can
//! all be expressed without a type system.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tashkent_common::TableId;

/// Definition of one replicated table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Dense identifier used inside writesets.
    pub id: TableId,
    /// Human-readable name.
    pub name: String,
    /// Declared columns (informational; rows may carry any columns).
    pub columns: Vec<String>,
}

/// The set of tables known to a database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalogue.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table and returns its identifier.
    ///
    /// Registering an existing name returns the existing identifier; the
    /// column list of the first registration wins.  This makes catalogue
    /// creation idempotent, which simplifies replica recovery (the proxy can
    /// simply re-run the schema setup).
    pub fn create_table(&mut self, name: &str, columns: &[&str]) -> TableId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableSchema {
            id,
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks a table up by name.
    #[must_use]
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Returns the schema of a table.
    #[must_use]
    pub fn schema(&self, id: TableId) -> Option<&TableSchema> {
        self.tables.get(id.0 as usize)
    }

    /// Returns the name of a table, or a placeholder for unknown ids.
    #[must_use]
    pub fn table_name(&self, id: TableId) -> &str {
        self.schema(id).map_or("<unknown>", |s| s.name.as_str())
    }

    /// Number of registered tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no table has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over all registered tables.
    pub fn iter(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let a = c.create_table("accounts", &["balance"]);
        let b = c.create_table("tellers", &["balance"]);
        assert_ne!(a, b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_id("accounts"), Some(a));
        assert_eq!(c.table_id("missing"), None);
        assert_eq!(c.table_name(a), "accounts");
        assert_eq!(c.table_name(TableId(99)), "<unknown>");
        assert_eq!(c.schema(a).unwrap().columns, vec!["balance".to_string()]);
    }

    #[test]
    fn create_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.create_table("accounts", &["balance"]);
        let a2 = c.create_table("accounts", &["other"]);
        assert_eq!(a, a2);
        assert_eq!(c.len(), 1);
        // First registration's columns win.
        assert_eq!(c.schema(a).unwrap().columns, vec!["balance".to_string()]);
    }

    #[test]
    fn iter_visits_all_tables() {
        let mut c = Catalog::new();
        c.create_table("a", &[]);
        c.create_table("b", &[]);
        let names: Vec<_> = c.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
