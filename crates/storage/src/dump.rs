//! Full-database dumps ("DUMP DATA", Section 8.1).
//!
//! Tashkent-MW disables all synchronous WAL writes at the replicas, which on
//! engines like PostgreSQL also voids *physical data integrity* after a
//! crash.  To compensate, the middleware periodically asks the database for a
//! complete copy of a committed snapshot and records the version of that
//! copy.  After a crash the replica is restarted from the most recent intact
//! dump and the middleware re-applies the writesets committed since the dump
//! version (Section 7.1, Case 1).
//!
//! A [`DatabaseDump`] is such a copy: every table's visible rows at one
//! version, together with the version itself, serialisable to a checksummed
//! byte image (the "dump file").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tashkent_common::{Error, Result, RowKey, Version};

use crate::codec;
use crate::engine::Database;
use crate::row::{Row, TableData};
use crate::schema::Catalog;

/// One table's portion of a dump.
#[derive(Debug, Clone, PartialEq)]
pub struct DumpTable {
    /// Table name.
    pub name: String,
    /// Declared columns.
    pub columns: Vec<String>,
    /// Every visible row at the dump version, in key order.
    pub rows: Vec<(RowKey, Row)>,
}

/// A consistent copy of the whole database at one committed version.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseDump {
    version: Version,
    tables: Vec<DumpTable>,
}

/// Magic bytes identifying a dump image.
const DUMP_MAGIC: &[u8; 4] = b"TKDP";

impl DatabaseDump {
    /// Captures a dump from the engine's internal state (called by
    /// [`Database::dump`]).
    #[must_use]
    pub fn capture(catalog: &Catalog, tables: &[TableData], version: Version) -> Self {
        let mut out = Vec::new();
        for schema in catalog.iter() {
            let data = tables.get(schema.id.0 as usize);
            let rows = data.map_or_else(Vec::new, |t| {
                t.scan_at(version)
                    .map(|(k, r)| (k.clone(), r.clone()))
                    .collect()
            });
            out.push(DumpTable {
                name: schema.name.clone(),
                columns: schema.columns.clone(),
                rows,
            });
        }
        DatabaseDump {
            version,
            tables: out,
        }
    }

    /// The committed version this dump captures.
    #[must_use]
    pub fn version(&self) -> Version {
        self.version
    }

    /// The per-table contents.
    #[must_use]
    pub fn tables(&self) -> &[DumpTable] {
        &self.tables
    }

    /// Total number of rows across all tables.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(|t| t.rows.len()).sum()
    }

    /// Loads the dump into an (empty) database: re-creates the schema and
    /// bulk-loads every row at the dump version.
    pub fn load_into(&self, db: &Database) {
        for table in &self.tables {
            let columns: Vec<&str> = table.columns.iter().map(String::as_str).collect();
            let id = db.create_table(&table.name, &columns);
            db.bulk_load(id, table.rows.clone(), self.version);
        }
    }

    /// Serialises the dump to a checksummed byte image (the dump *file* the
    /// proxy stores, together with the version and an end-of-file marker).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = BytesMut::new();
        codec::encode_version(&mut body, self.version);
        body.put_u32(self.tables.len() as u32);
        for table in &self.tables {
            body.put_u16(table.name.len() as u16);
            body.put_slice(table.name.as_bytes());
            body.put_u16(table.columns.len() as u16);
            for column in &table.columns {
                body.put_u16(column.len() as u16);
                body.put_slice(column.as_bytes());
            }
            body.put_u32(table.rows.len() as u32);
            for (key, row) in &table.rows {
                codec::encode_key(&mut body, key);
                codec::encode_row(&mut body, row);
            }
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(DUMP_MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(&codec::checksum(&body).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses a dump image produced by [`DatabaseDump::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the image is truncated (e.g. the
    /// database crashed while dumping), its checksum does not match, or its
    /// contents cannot be decoded.  The caller then falls back to the
    /// previous dump, exactly as Section 7.1 prescribes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 12 || &bytes[..4] != DUMP_MAGIC {
            return Err(Error::Corruption("not a dump image".into()));
        }
        let len = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        let expected_checksum = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let body = &bytes[12..];
        if body.len() < len {
            return Err(Error::Corruption(format!(
                "truncated dump: header promises {len} bytes, {} present",
                body.len()
            )));
        }
        let body = &body[..len];
        if codec::checksum(body) != expected_checksum {
            return Err(Error::Corruption("dump checksum mismatch".into()));
        }
        let mut buf = Bytes::copy_from_slice(body);
        let version = codec::decode_version(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(Error::Corruption("truncated dump table count".into()));
        }
        let table_count = buf.get_u32() as usize;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let name = read_string16(&mut buf)?;
            if buf.remaining() < 2 {
                return Err(Error::Corruption("truncated dump column count".into()));
            }
            let column_count = buf.get_u16() as usize;
            let mut columns = Vec::with_capacity(column_count);
            for _ in 0..column_count {
                columns.push(read_string16(&mut buf)?);
            }
            if buf.remaining() < 4 {
                return Err(Error::Corruption("truncated dump row count".into()));
            }
            let row_count = buf.get_u32() as usize;
            let mut rows = Vec::with_capacity(row_count.min(1 << 20));
            for _ in 0..row_count {
                let key = codec::decode_key(&mut buf)?;
                let row = codec::decode_row(&mut buf)?;
                rows.push((key, row));
            }
            tables.push(DumpTable {
                name,
                columns,
                rows,
            });
        }
        Ok(DatabaseDump { version, tables })
    }
}

fn read_string16(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 2 {
        return Err(Error::Corruption("truncated string length".into()));
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(Error::Corruption("truncated string payload".into()));
    }
    String::from_utf8(buf.split_to(len).to_vec())
        .map_err(|_| Error::Corruption("invalid utf-8 in dump".into()))
}

#[cfg(test)]
mod tests {
    use tashkent_common::Value;

    use super::*;
    use crate::engine::EngineConfig;

    fn populated_db(rows: i64) -> Database {
        let db = Database::new(EngineConfig::default());
        let accounts = db.create_table("accounts", &["balance"]);
        let history = db.create_table("history", &["delta"]);
        for i in 0..rows {
            let tx = db.begin();
            tx.insert(accounts, i, vec![("balance".into(), Value::Int(i * 10))])
                .unwrap();
            tx.insert(history, (i, i), vec![("delta".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        db
    }

    #[test]
    fn dump_captures_all_visible_rows() {
        let db = populated_db(25);
        let dump = db.dump();
        assert_eq!(dump.version(), Version(25));
        assert_eq!(dump.tables().len(), 2);
        assert_eq!(dump.row_count(), 50);
        assert_eq!(dump.tables()[0].name, "accounts");
        assert_eq!(dump.tables()[0].rows.len(), 25);
    }

    #[test]
    fn dump_roundtrips_through_bytes() {
        let db = populated_db(10);
        let dump = db.dump();
        let bytes = dump.to_bytes();
        let parsed = DatabaseDump::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, dump);
    }

    #[test]
    fn truncated_or_corrupt_dumps_are_rejected() {
        let db = populated_db(5);
        let bytes = db.dump().to_bytes();
        // Truncation at every prefix length either errors or never panics.
        for cut in 0..bytes.len() {
            assert!(
                DatabaseDump::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
        // Bit flip in the body fails the checksum.
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF;
        assert!(DatabaseDump::from_bytes(&corrupted).is_err());
        // Wrong magic.
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(DatabaseDump::from_bytes(&wrong_magic).is_err());
    }

    #[test]
    fn restore_reproduces_contents_and_version() {
        let db = populated_db(12);
        let dump = db.dump();
        let restored = Database::restore_from_dump(EngineConfig::default(), &dump);
        assert_eq!(restored.version(), Version(12));
        let accounts = restored.table_id("accounts").unwrap();
        let history = restored.table_id("history").unwrap();
        assert_eq!(restored.row_count(accounts), 12);
        assert_eq!(restored.row_count(history), 12);
        let row = restored.read_latest(accounts, 7).unwrap();
        assert_eq!(row.get("balance"), Some(&Value::Int(70)));
    }

    #[test]
    fn dump_is_a_consistent_snapshot_despite_later_commits() {
        let db = populated_db(5);
        let accounts = db.table_id("accounts").unwrap();
        let dump = db.dump();
        // Commit more transactions after the dump.
        for i in 100..105 {
            let tx = db.begin();
            tx.insert(accounts, i, vec![("balance".into(), Value::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        // The dump still reflects the earlier version.
        assert_eq!(dump.version(), Version(5));
        assert_eq!(dump.tables()[0].rows.len(), 5);
        let restored = Database::restore_from_dump(EngineConfig::default(), &dump);
        assert_eq!(restored.row_count(restored.table_id("accounts").unwrap()), 5);
    }
}
