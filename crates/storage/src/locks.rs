//! Row-level write locks, blocking waits and deadlock handling.
//!
//! PostgreSQL — and therefore this engine — acquires a write lock on a row
//! *eagerly*, at the moment an update transaction first writes the row,
//! rather than checking for write-write conflicts only at commit time
//! (Section 8.2 of the paper).  The first writer proceeds; competitors block.
//! If the lock holder commits, every blocked competitor is aborted with a
//! write-write conflict (first-committer-wins); if the holder aborts, one
//! competitor is granted the lock and may proceed.
//!
//! Because writers block, deadlocks are possible, both between two local
//! update transactions (the traditional scenario) and between a local update
//! transaction and a remote writeset being applied by the proxy (the
//! replicated scenario of Section 8.2).  The lock manager detects deadlocks
//! by following the wait-for chain whenever a transaction is about to block
//! and aborts the requester that would close the cycle.
//!
//! The proxy's *eager pre-certification* optimisation avoids most of these
//! deadlocks by aborting the conflicting local transaction before the remote
//! writeset ever blocks; it uses [`LockManager::wound`] to do so.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tashkent_common::{Error, Result, RowKey, TableId, TxId};

/// Default bound on one blocking lock wait (see [`LockManager::with_max_wait`]).
pub const DEFAULT_LOCK_WAIT: Duration = Duration::from_secs(1);

/// A lockable resource: one row of one table.
pub type Resource = (TableId, RowKey);

#[derive(Debug)]
struct LockEntry {
    holder: TxId,
    queue: VecDeque<TxId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitDecision {
    /// The lock was transferred to the waiter.
    Granted,
    /// The previous holder committed: the waiter has a write-write conflict.
    Conflict,
}

#[derive(Debug, Default)]
struct LockState {
    locks: HashMap<Resource, LockEntry>,
    /// waiter → transaction it is waiting for (each transaction waits on at
    /// most one lock at a time, so a single edge per waiter suffices).
    waits_for: HashMap<TxId, TxId>,
    /// Decisions published by `release_all` / `wound` for waiting
    /// transactions, consumed inside the `acquire` loop.
    decisions: HashMap<TxId, WaitDecision>,
    /// Transactions that have been wounded (forced to abort) by the
    /// middleware to let a higher-priority remote writeset proceed.
    wounded: HashSet<TxId>,
}

/// The lock manager of one database engine.
#[derive(Debug)]
pub struct LockManager {
    state: Mutex<LockState>,
    changed: Condvar,
    max_wait: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::with_max_wait(DEFAULT_LOCK_WAIT)
    }
}

impl LockManager {
    /// Creates an empty lock manager with the default wait bound.
    #[must_use]
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Creates an empty lock manager whose blocking [`LockManager::acquire`]
    /// gives up after `max_wait`, reporting the requester as a presumed
    /// deadlock victim.
    ///
    /// The wait-for graph only tracks engine-local lock waits, so cycles that
    /// pass through other components (the proxy's apply mutex, the ordered
    /// commit announce order, a thread join in the Tashkent-API pipeline)
    /// are invisible to cycle detection.  The bound converts any such stall
    /// into a retryable abort instead of a permanent hang — the same
    /// fallback real databases employ (cf. PostgreSQL's `deadlock_timeout`).
    #[must_use]
    pub fn with_max_wait(max_wait: Duration) -> Self {
        LockManager {
            state: Mutex::new(LockState::default()),
            changed: Condvar::new(),
            max_wait,
        }
    }

    /// Acquires the write lock on `resource` for `tx`, blocking until the
    /// lock is available.
    ///
    /// # Errors
    ///
    /// * [`Error::WriteConflict`] — the current holder committed while `tx`
    ///   was waiting (first-committer-wins), or `tx` has been
    ///   [wounded](LockManager::wound) by the middleware.
    /// * [`Error::Deadlock`] — blocking would close a wait-for cycle (`tx` is
    ///   chosen as the victim), or the wait exceeded the manager's bound and
    ///   `tx` is presumed to be part of a cycle the engine-local wait-for
    ///   graph cannot see.
    pub fn acquire(&self, tx: TxId, resource: &Resource) -> Result<()> {
        // Established lazily on first block: acquiring a free lock — the hot
        // path, taken once per written row — must not pay for a clock read.
        let mut deadline = None;
        let mut state = self.state.lock();
        let mut enqueued = false;
        loop {
            if state.wounded.contains(&tx) {
                self.cancel_wait(&mut state, tx, resource, enqueued);
                return Err(Error::WriteConflict {
                    tx,
                    detail: "transaction wounded by replication middleware".into(),
                });
            }
            // A decision may have been published while we were waiting.
            if let Some(decision) = state.decisions.remove(&tx) {
                state.waits_for.remove(&tx);
                match decision {
                    WaitDecision::Granted => return Ok(()),
                    WaitDecision::Conflict => {
                        return Err(Error::WriteConflict {
                            tx,
                            detail: format!(
                                "row {}/{} modified by a transaction that committed first",
                                resource.0, resource.1
                            ),
                        })
                    }
                }
            }
            match state.locks.get_mut(resource) {
                None => {
                    state.locks.insert(
                        resource.clone(),
                        LockEntry {
                            holder: tx,
                            queue: VecDeque::new(),
                        },
                    );
                    return Ok(());
                }
                Some(entry) if entry.holder == tx => return Ok(()),
                Some(entry) => {
                    if !enqueued {
                        // About to block: check that doing so would not close
                        // a wait-for cycle.
                        let holder = entry.holder;
                        if self.creates_cycle(&state, tx, holder) {
                            return Err(Error::Deadlock { tx });
                        }
                        let holder = {
                            let entry = state
                                .locks
                                .get_mut(resource)
                                .expect("entry existed moments ago");
                            entry.queue.push_back(tx);
                            entry.holder
                        };
                        state.waits_for.insert(tx, holder);
                        enqueued = true;
                    }
                }
            }
            let current_deadline =
                *deadline.get_or_insert_with(|| Instant::now() + self.max_wait);
            let timeout = current_deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                // The wait bound elapsed and the loop above found neither a
                // published decision nor a free lock: give up as a presumed
                // deadlock victim (retryable by the client).  The abort is
                // deliberately unconditional — a holder-turnover heuristic
                // ("the queue is moving, keep waiting") reintroduces
                // cluster-wide stalls here, because cross-component cycles
                // (row lock ↔ ordered-announce chain) keep adjacent hot-row
                // queues churning while the cycle itself never resolves.
                self.cancel_wait(&mut state, tx, resource, enqueued);
                return Err(Error::Deadlock { tx });
            }
            self.changed.wait_for(&mut state, timeout);
        }
    }

    /// Attempts to acquire without blocking.
    ///
    /// Returns `Ok(true)` if the lock was acquired (or already held),
    /// `Ok(false)` if another transaction holds it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WriteConflict`] if `tx` has been wounded.
    pub fn try_acquire(&self, tx: TxId, resource: &Resource) -> Result<bool> {
        let mut state = self.state.lock();
        if state.wounded.contains(&tx) {
            return Err(Error::WriteConflict {
                tx,
                detail: "transaction wounded by replication middleware".into(),
            });
        }
        match state.locks.get(resource) {
            None => {
                state.locks.insert(
                    resource.clone(),
                    LockEntry {
                        holder: tx,
                        queue: VecDeque::new(),
                    },
                );
                Ok(true)
            }
            Some(entry) if entry.holder == tx => Ok(true),
            Some(_) => Ok(false),
        }
    }

    /// Returns the holder of `resource`, if locked.
    #[must_use]
    pub fn holder(&self, resource: &Resource) -> Option<TxId> {
        self.state.lock().locks.get(resource).map(|e| e.holder)
    }

    /// Releases every lock held by `tx`.
    ///
    /// `committed` selects what happens to competitors that were blocked on
    /// those locks: if the holder committed they are aborted with a
    /// write-write conflict; if it aborted, the first waiter inherits the
    /// lock.
    pub fn release_all(&self, tx: TxId, committed: bool) {
        let mut state = self.state.lock();
        state.wounded.remove(&tx);
        state.waits_for.remove(&tx);
        let resources: Vec<Resource> = state
            .locks
            .iter()
            .filter(|(_, e)| e.holder == tx)
            .map(|(r, _)| r.clone())
            .collect();
        for resource in resources {
            let Some(mut entry) = state.locks.remove(&resource) else {
                continue;
            };
            if committed {
                // First committer wins: everybody queued behind us loses.
                for waiter in entry.queue {
                    state.decisions.insert(waiter, WaitDecision::Conflict);
                    state.waits_for.remove(&waiter);
                }
            } else if let Some(next) = entry.queue.pop_front() {
                state.decisions.insert(next, WaitDecision::Granted);
                state.waits_for.remove(&next);
                // Remaining waiters now wait on the new holder.
                for waiter in &entry.queue {
                    state.waits_for.insert(*waiter, next);
                }
                state.locks.insert(
                    resource,
                    LockEntry {
                        holder: next,
                        queue: entry.queue,
                    },
                );
            }
        }
        self.changed.notify_all();
    }

    /// Marks `tx` as wounded: its next (or current) lock wait fails with a
    /// write-write conflict so that the middleware can abort it and let a
    /// remote writeset proceed (eager pre-certification, Section 8.2).
    pub fn wound(&self, tx: TxId) {
        let mut state = self.state.lock();
        state.wounded.insert(tx);
        self.changed.notify_all();
    }

    /// `true` if `tx` has been wounded and must abort.
    #[must_use]
    pub fn is_wounded(&self, tx: TxId) -> bool {
        self.state.lock().wounded.contains(&tx)
    }

    /// Number of currently held locks (diagnostics / tests).
    #[must_use]
    pub fn held_locks(&self) -> usize {
        self.state.lock().locks.len()
    }

    /// `true` if any transaction is currently blocked waiting for a lock.
    #[must_use]
    pub fn has_waiters(&self) -> bool {
        !self.state.lock().waits_for.is_empty()
    }

    fn creates_cycle(&self, state: &LockState, requester: TxId, holder: TxId) -> bool {
        // Follow the wait-for chain starting at the holder; if it leads back
        // to the requester, blocking would create a cycle.
        let mut current = holder;
        let mut hops = 0;
        while let Some(&next) = state.waits_for.get(&current) {
            if next == requester {
                return true;
            }
            current = next;
            hops += 1;
            if hops > state.waits_for.len() {
                // Defensive: the chain should never be longer than the map.
                return false;
            }
        }
        false
    }

    fn cancel_wait(
        &self,
        state: &mut LockState,
        tx: TxId,
        resource: &Resource,
        enqueued: bool,
    ) {
        state.decisions.remove(&tx);
        state.waits_for.remove(&tx);
        if enqueued {
            if let Some(entry) = state.locks.get_mut(resource) {
                entry.queue.retain(|w| *w != tx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    use super::*;

    fn res(key: i64) -> Resource {
        (TableId(0), RowKey::Int(key))
    }

    #[test]
    fn first_writer_gets_the_lock() {
        let lm = LockManager::new();
        lm.acquire(TxId(1), &res(1)).unwrap();
        assert_eq!(lm.holder(&res(1)), Some(TxId(1)));
        // Re-acquiring a held lock is a no-op.
        lm.acquire(TxId(1), &res(1)).unwrap();
        assert!(lm.try_acquire(TxId(1), &res(1)).unwrap());
        assert!(!lm.try_acquire(TxId(2), &res(1)).unwrap());
        assert_eq!(lm.held_locks(), 1);
    }

    #[test]
    fn waiter_conflicts_when_holder_commits() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxId(1), &res(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.acquire(TxId(2), &res(1)));
        // Give the waiter a moment to block.
        thread::sleep(Duration::from_millis(20));
        assert!(lm.has_waiters());
        lm.release_all(TxId(1), true);
        let result = waiter.join().unwrap();
        assert!(matches!(result, Err(Error::WriteConflict { .. })));
        assert_eq!(lm.held_locks(), 0);
    }

    #[test]
    fn waiter_inherits_lock_when_holder_aborts() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxId(1), &res(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.acquire(TxId(2), &res(1)));
        thread::sleep(Duration::from_millis(20));
        lm.release_all(TxId(1), false);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.holder(&res(1)), Some(TxId(2)));
    }

    #[test]
    fn deadlock_is_detected_and_requester_aborted() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxId(1), &res(1)).unwrap();
        lm.acquire(TxId(2), &res(2)).unwrap();
        // T2 blocks on resource 1 (held by T1).
        let lm2 = Arc::clone(&lm);
        let blocked = thread::spawn(move || lm2.acquire(TxId(2), &res(1)));
        thread::sleep(Duration::from_millis(20));
        // T1 now requests resource 2 (held by T2): cycle → T1 is the victim.
        let result = lm.acquire(TxId(1), &res(2));
        assert!(matches!(result, Err(Error::Deadlock { tx: TxId(1) })));
        // Resolving the deadlock: T1 aborts, releasing resource 1 to T2.
        lm.release_all(TxId(1), false);
        blocked.join().unwrap().unwrap();
        assert_eq!(lm.holder(&res(1)), Some(TxId(2)));
    }

    #[test]
    fn blocked_acquire_times_out_as_presumed_deadlock() {
        // Cycles that pass through non-lock resources (mutexes, thread
        // joins, the ordered announce order) are invisible to the wait-for
        // graph; the wait bound must convert them into retryable aborts.
        let lm = LockManager::with_max_wait(Duration::from_millis(50));
        lm.acquire(TxId(1), &res(1)).unwrap();
        let start = std::time::Instant::now();
        let result = lm.acquire(TxId(2), &res(1));
        assert!(matches!(result, Err(Error::Deadlock { tx: TxId(2) })));
        assert!(start.elapsed() >= Duration::from_millis(50));
        // The timed-out waiter left the queue: when the holder later aborts,
        // nobody inherits the lock.
        lm.release_all(TxId(1), false);
        assert_eq!(lm.held_locks(), 0);
        assert!(!lm.has_waiters());
    }

    #[test]
    fn wounded_transaction_fails_to_acquire() {
        let lm = LockManager::new();
        lm.wound(TxId(7));
        assert!(lm.is_wounded(TxId(7)));
        assert!(matches!(
            lm.acquire(TxId(7), &res(1)),
            Err(Error::WriteConflict { .. })
        ));
        assert!(lm.try_acquire(TxId(7), &res(1)).is_err());
        // Releasing (the abort path) clears the wounded flag.
        lm.release_all(TxId(7), false);
        assert!(!lm.is_wounded(TxId(7)));
        assert!(lm.acquire(TxId(7), &res(1)).is_ok());
    }

    #[test]
    fn wound_wakes_a_blocked_waiter() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxId(1), &res(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = thread::spawn(move || lm2.acquire(TxId(2), &res(1)));
        thread::sleep(Duration::from_millis(20));
        lm.wound(TxId(2));
        let result = waiter.join().unwrap();
        assert!(matches!(result, Err(Error::WriteConflict { .. })));
        // The queue entry of the cancelled waiter must have been cleaned up:
        // when T1 aborts, nobody inherits the lock.
        lm.release_all(TxId(1), false);
        assert_eq!(lm.held_locks(), 0);
    }

    #[test]
    fn queued_waiters_transfer_to_new_holder() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(TxId(1), &res(1)).unwrap();
        let mut handles = Vec::new();
        for tx in [2u64, 3] {
            let lm2 = Arc::clone(&lm);
            handles.push(thread::spawn(move || lm2.acquire(TxId(tx), &res(1))));
            thread::sleep(Duration::from_millis(10));
        }
        // Holder aborts: first waiter (T2) inherits, T3 keeps waiting on T2.
        lm.release_all(TxId(1), false);
        thread::sleep(Duration::from_millis(20));
        assert_eq!(lm.holder(&res(1)), Some(TxId(2)));
        assert!(lm.has_waiters());
        // T2 commits: T3 must get a conflict.
        lm.release_all(TxId(2), true);
        let mut results: Vec<Result<()>> = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        let t3 = results.pop().unwrap();
        let t2 = results.pop().unwrap();
        assert!(t2.is_ok());
        assert!(matches!(t3, Err(Error::WriteConflict { .. })));
    }
}
