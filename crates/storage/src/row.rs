//! Multi-version rows and snapshot visibility.
//!
//! Every row is a chain of immutable versions, each stamped with the global
//! version (snapshot number) created by the committing transaction.  A
//! transaction reading at snapshot `S` sees, for each key, the newest row
//! version whose commit version is `<= S` — exactly the visibility rule of
//! snapshot isolation, with versions counted the way the paper counts them
//! (one per committed update transaction).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tashkent_common::{RowKey, Value, Version};

/// A row image: an ordered list of named column values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row {
    columns: Vec<(String, Value)>,
}

impl Row {
    /// Creates an empty row.
    #[must_use]
    pub fn new() -> Self {
        Row::default()
    }

    /// Creates a row from column / value pairs.
    #[must_use]
    pub fn from_columns(columns: Vec<(String, Value)>) -> Self {
        Row { columns }
    }

    /// Returns the value of a column, if present.
    #[must_use]
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.columns
            .iter()
            .find(|(name, _)| name == column)
            .map(|(_, v)| v)
    }

    /// Sets (or adds) a column value.
    pub fn set(&mut self, column: &str, value: Value) {
        if let Some(slot) = self.columns.iter_mut().find(|(name, _)| name == column) {
            slot.1 = value;
        } else {
            self.columns.push((column.to_owned(), value));
        }
    }

    /// Applies a set of column updates, returning the updated row.
    #[must_use]
    pub fn with_updates(mut self, updates: &[(String, Value)]) -> Row {
        for (name, value) in updates {
            self.set(name, value.clone());
        }
        self
    }

    /// The column / value pairs in insertion order.
    #[must_use]
    pub fn columns(&self) -> &[(String, Value)] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` if the row has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Approximate encoded size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.columns
            .iter()
            .map(|(n, v)| 2 + n.len() + v.encoded_len())
            .sum()
    }
}

impl From<Vec<(String, Value)>> for Row {
    fn from(columns: Vec<(String, Value)>) -> Self {
        Row::from_columns(columns)
    }
}

/// One committed version of a row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowVersion {
    /// Global version created by the committing transaction.
    pub created_at: Version,
    /// The row image, or `None` if this version is a deletion tombstone.
    pub image: Option<Row>,
}

/// The version chain of a single key, newest last.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VersionChain {
    versions: Vec<RowVersion>,
}

impl VersionChain {
    /// Creates an empty chain.
    #[must_use]
    pub fn new() -> Self {
        VersionChain::default()
    }

    /// Installs a new version at the end of the chain.
    ///
    /// Versions must be installed in increasing commit-version order; the
    /// engine guarantees this because commits are announced in global order.
    pub fn install(&mut self, version: Version, image: Option<Row>) {
        debug_assert!(
            self.versions
                .last()
                .is_none_or(|v| v.created_at < version),
            "row versions must be installed in increasing version order"
        );
        self.versions.push(RowVersion {
            created_at: version,
            image,
        });
    }

    /// The row image visible to a snapshot at `snapshot_version`, if any.
    #[must_use]
    pub fn visible_at(&self, snapshot_version: Version) -> Option<&Row> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.created_at <= snapshot_version)
            .and_then(|v| v.image.as_ref())
    }

    /// The commit version of the newest version of this row, if any.
    #[must_use]
    pub fn latest_version(&self) -> Option<Version> {
        self.versions.last().map(|v| v.created_at)
    }

    /// The newest row image regardless of snapshot (used by dumps).
    #[must_use]
    pub fn latest_image(&self) -> Option<&Row> {
        self.versions.last().and_then(|v| v.image.as_ref())
    }

    /// `true` if a version newer than `version` exists — the
    /// first-committer-wins check of snapshot isolation.
    #[must_use]
    pub fn modified_after(&self, version: Version) -> bool {
        self.latest_version().is_some_and(|latest| latest > version)
    }

    /// Number of versions retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` if the chain holds no version at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Discards versions that can no longer be seen by any snapshot at or
    /// after `horizon`, keeping the newest version at or below the horizon.
    ///
    /// Returns the number of versions discarded.  This is the engine's
    /// equivalent of PostgreSQL's vacuum of old snapshots.
    pub fn prune_older_than(&mut self, horizon: Version) -> usize {
        // Find the newest version <= horizon; everything before it is dead.
        let mut keep_from = 0usize;
        for (i, v) in self.versions.iter().enumerate() {
            if v.created_at <= horizon {
                keep_from = i;
            } else {
                break;
            }
        }
        let removed = keep_from;
        if removed > 0 {
            self.versions.drain(0..removed);
        }
        removed
    }
}

/// All version chains of one table, ordered by key to support scans.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableData {
    rows: BTreeMap<RowKey, VersionChain>,
}

impl TableData {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        TableData::default()
    }

    /// Returns the version chain of a key, if the key has ever been written.
    #[must_use]
    pub fn chain(&self, key: &RowKey) -> Option<&VersionChain> {
        self.rows.get(key)
    }

    /// Returns the version chain of a key, creating it if necessary.
    pub fn chain_mut(&mut self, key: RowKey) -> &mut VersionChain {
        self.rows.entry(key).or_default()
    }

    /// The row image visible at `snapshot_version` for `key`.
    #[must_use]
    pub fn read(&self, key: &RowKey, snapshot_version: Version) -> Option<&Row> {
        self.rows.get(key).and_then(|c| c.visible_at(snapshot_version))
    }

    /// `true` if `key` was modified after `version`.
    #[must_use]
    pub fn modified_after(&self, key: &RowKey, version: Version) -> bool {
        self.rows.get(key).is_some_and(|c| c.modified_after(version))
    }

    /// Iterates `(key, row)` pairs visible at `snapshot_version`, in key order.
    pub fn scan_at(
        &self,
        snapshot_version: Version,
    ) -> impl Iterator<Item = (&RowKey, &Row)> {
        self.rows
            .iter()
            .filter_map(move |(k, c)| c.visible_at(snapshot_version).map(|r| (k, r)))
    }

    /// Number of keys that currently have at least one version.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.rows.len()
    }

    /// Prunes all chains against a snapshot horizon, returning the number of
    /// row versions discarded.
    pub fn prune_older_than(&mut self, horizon: Version) -> usize {
        self.rows
            .values_mut()
            .map(|c| c.prune_older_than(horizon))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Row {
        Row::from_columns(vec![("x".into(), Value::Int(v))])
    }

    #[test]
    fn row_get_set_and_updates() {
        let mut r = Row::new();
        assert!(r.is_empty());
        r.set("a", Value::Int(1));
        r.set("b", Value::Int(2));
        r.set("a", Value::Int(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a"), Some(&Value::Int(3)));
        assert_eq!(r.get("missing"), None);
        let r2 = r.clone().with_updates(&[("b".into(), Value::Int(9))]);
        assert_eq!(r2.get("b"), Some(&Value::Int(9)));
        assert!(r.encoded_len() > 0);
    }

    #[test]
    fn chain_visibility_follows_snapshot() {
        let mut c = VersionChain::new();
        assert!(c.is_empty());
        c.install(Version(2), Some(row(20)));
        c.install(Version(5), Some(row(50)));
        assert_eq!(c.len(), 2);
        // Snapshot 1 predates the first version: nothing visible.
        assert!(c.visible_at(Version(1)).is_none());
        assert_eq!(c.visible_at(Version(2)).unwrap().get("x"), Some(&Value::Int(20)));
        assert_eq!(c.visible_at(Version(4)).unwrap().get("x"), Some(&Value::Int(20)));
        assert_eq!(c.visible_at(Version(5)).unwrap().get("x"), Some(&Value::Int(50)));
        assert_eq!(c.visible_at(Version(99)).unwrap().get("x"), Some(&Value::Int(50)));
        assert_eq!(c.latest_version(), Some(Version(5)));
    }

    #[test]
    fn deletion_tombstones_hide_rows() {
        let mut c = VersionChain::new();
        c.install(Version(1), Some(row(1)));
        c.install(Version(3), None);
        assert!(c.visible_at(Version(2)).is_some());
        assert!(c.visible_at(Version(3)).is_none());
        assert!(c.visible_at(Version(10)).is_none());
        assert_eq!(c.latest_image(), None);
    }

    #[test]
    fn modified_after_is_first_committer_wins_check() {
        let mut c = VersionChain::new();
        c.install(Version(4), Some(row(4)));
        assert!(c.modified_after(Version(3)));
        assert!(!c.modified_after(Version(4)));
        assert!(!c.modified_after(Version(9)));
    }

    #[test]
    fn prune_keeps_visible_versions() {
        let mut c = VersionChain::new();
        c.install(Version(1), Some(row(1)));
        c.install(Version(2), Some(row(2)));
        c.install(Version(5), Some(row(5)));
        let removed = c.prune_older_than(Version(4));
        assert_eq!(removed, 1); // Version 1 is dead; version 2 is still the visible one at 4.
        assert_eq!(c.visible_at(Version(4)).unwrap().get("x"), Some(&Value::Int(2)));
        assert_eq!(c.visible_at(Version(5)).unwrap().get("x"), Some(&Value::Int(5)));
        // Pruning at a horizon past everything keeps only the newest version.
        let removed = c.prune_older_than(Version(100));
        assert_eq!(removed, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn table_data_read_scan_and_prune() {
        let mut t = TableData::new();
        t.chain_mut(RowKey::Int(1)).install(Version(1), Some(row(10)));
        t.chain_mut(RowKey::Int(2)).install(Version(2), Some(row(20)));
        t.chain_mut(RowKey::Int(2)).install(Version(3), Some(row(21)));
        assert_eq!(t.key_count(), 2);
        assert_eq!(
            t.read(&RowKey::Int(2), Version(2)).unwrap().get("x"),
            Some(&Value::Int(20))
        );
        assert!(t.read(&RowKey::Int(3), Version(9)).is_none());
        assert!(t.modified_after(&RowKey::Int(2), Version(2)));
        assert!(!t.modified_after(&RowKey::Int(1), Version(1)));

        let visible: Vec<i64> = t
            .scan_at(Version(1))
            .map(|(_, r)| r.get("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(visible, vec![10]);
        let visible: Vec<i64> = t
            .scan_at(Version(3))
            .map(|(_, r)| r.get("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(visible, vec![10, 21]);

        let removed = t.prune_older_than(Version(3));
        assert_eq!(removed, 1);
        assert!(t.chain(&RowKey::Int(2)).is_some());
    }
}
