//! Binary encoding of values, rows and writesets.
//!
//! Used by the write-ahead log, the certifier's persistent log and database
//! dumps.  The format is a simple length-prefixed binary layout built on
//! [`bytes`]; it is not meant to be a stable wire format, only a compact and
//! checkable on-disk representation for the reproduction.
//!
//! Every reader returns [`tashkent_common::Error::Corruption`] rather than
//! panicking when it encounters a truncated or malformed buffer, because
//! recovery code legitimately reads half-written logs after a crash.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tashkent_common::{
    Error, Result, RowKey, TableId, Value, Version, WriteItem, WriteOp, WriteSet,
};

use crate::row::Row;

/// Checks that at least `needed` bytes remain in the buffer.
fn need(buf: &impl Buf, needed: usize, what: &str) -> Result<()> {
    if buf.remaining() < needed {
        return Err(Error::Corruption(format!(
            "truncated {what}: need {needed} bytes, {} remaining",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Encodes a [`Value`].
pub fn encode_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(4);
            buf.put_u32(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

/// Decodes a [`Value`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated or unknown encoding.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    need(buf, 1, "value tag")?;
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            need(buf, 8, "int value")?;
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            need(buf, 8, "float value")?;
            Ok(Value::Float(buf.get_f64()))
        }
        3 => {
            need(buf, 4, "text length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "text payload")?;
            let raw = buf.split_to(len);
            String::from_utf8(raw.to_vec())
                .map(Value::Text)
                .map_err(|_| Error::Corruption("invalid utf-8 in text value".into()))
        }
        4 => {
            need(buf, 4, "bytes length")?;
            let len = buf.get_u32() as usize;
            need(buf, len, "bytes payload")?;
            Ok(Value::Bytes(buf.split_to(len).to_vec()))
        }
        tag => Err(Error::Corruption(format!("unknown value tag {tag}"))),
    }
}

/// Encodes a string with a u16 length prefix.
fn encode_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn decode_str(buf: &mut Bytes) -> Result<String> {
    need(buf, 2, "string length")?;
    let len = buf.get_u16() as usize;
    need(buf, len, "string payload")?;
    String::from_utf8(buf.split_to(len).to_vec())
        .map_err(|_| Error::Corruption("invalid utf-8 in string".into()))
}

/// Encodes a [`RowKey`].
pub fn encode_key(buf: &mut BytesMut, key: &RowKey) {
    match key {
        RowKey::Int(i) => {
            buf.put_u8(0);
            buf.put_i64(*i);
        }
        RowKey::Pair(a, b) => {
            buf.put_u8(1);
            buf.put_i64(*a);
            buf.put_i64(*b);
        }
        RowKey::Text(s) => {
            buf.put_u8(2);
            encode_str(buf, s);
        }
    }
}

/// Decodes a [`RowKey`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated or unknown encoding.
pub fn decode_key(buf: &mut Bytes) -> Result<RowKey> {
    need(buf, 1, "key tag")?;
    match buf.get_u8() {
        0 => {
            need(buf, 8, "int key")?;
            Ok(RowKey::Int(buf.get_i64()))
        }
        1 => {
            need(buf, 16, "pair key")?;
            Ok(RowKey::Pair(buf.get_i64(), buf.get_i64()))
        }
        2 => Ok(RowKey::Text(decode_str(buf)?)),
        tag => Err(Error::Corruption(format!("unknown key tag {tag}"))),
    }
}

fn encode_columns(buf: &mut BytesMut, columns: &[(String, Value)]) {
    buf.put_u16(columns.len() as u16);
    for (name, value) in columns {
        encode_str(buf, name);
        encode_value(buf, value);
    }
}

fn decode_columns(buf: &mut Bytes) -> Result<Vec<(String, Value)>> {
    need(buf, 2, "column count")?;
    let count = buf.get_u16() as usize;
    let mut columns = Vec::with_capacity(count);
    for _ in 0..count {
        let name = decode_str(buf)?;
        let value = decode_value(buf)?;
        columns.push((name, value));
    }
    Ok(columns)
}

/// Encodes a [`Row`].
pub fn encode_row(buf: &mut BytesMut, row: &Row) {
    encode_columns(buf, row.columns());
}

/// Decodes a [`Row`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated encoding.
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    Ok(Row::from_columns(decode_columns(buf)?))
}

/// Encodes a [`WriteItem`].
pub fn encode_write_item(buf: &mut BytesMut, item: &WriteItem) {
    buf.put_u32(item.table.0);
    encode_key(buf, &item.key);
    match &item.op {
        WriteOp::Insert { row } => {
            buf.put_u8(0);
            encode_columns(buf, row);
        }
        WriteOp::Update { columns } => {
            buf.put_u8(1);
            encode_columns(buf, columns);
        }
        WriteOp::Delete => buf.put_u8(2),
    }
}

/// Decodes a [`WriteItem`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated or unknown encoding.
pub fn decode_write_item(buf: &mut Bytes) -> Result<WriteItem> {
    need(buf, 4, "table id")?;
    let table = TableId(buf.get_u32());
    let key = decode_key(buf)?;
    need(buf, 1, "write op tag")?;
    let op = match buf.get_u8() {
        0 => WriteOp::Insert {
            row: decode_columns(buf)?,
        },
        1 => WriteOp::Update {
            columns: decode_columns(buf)?,
        },
        2 => WriteOp::Delete,
        tag => return Err(Error::Corruption(format!("unknown write op tag {tag}"))),
    };
    Ok(WriteItem { table, key, op })
}

/// Encodes a [`WriteSet`].
pub fn encode_writeset(buf: &mut BytesMut, ws: &WriteSet) {
    buf.put_u32(ws.len() as u32);
    for item in ws.items() {
        encode_write_item(buf, item);
    }
}

/// Decodes a [`WriteSet`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated encoding.
pub fn decode_writeset(buf: &mut Bytes) -> Result<WriteSet> {
    need(buf, 4, "writeset length")?;
    let count = buf.get_u32() as usize;
    let mut items = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        items.push(decode_write_item(buf)?);
    }
    Ok(WriteSet::from_items(items))
}

/// Encodes a [`Version`].
pub fn encode_version(buf: &mut BytesMut, version: Version) {
    buf.put_u64(version.0);
}

/// Decodes a [`Version`].
///
/// # Errors
///
/// Returns [`Error::Corruption`] on a truncated encoding.
pub fn decode_version(buf: &mut Bytes) -> Result<Version> {
    need(buf, 8, "version")?;
    Ok(Version(buf.get_u64()))
}

/// A simple 32-bit FNV-1a checksum over a byte slice, used to detect torn
/// writes at the tail of logs and dumps.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        assert_eq!(decode_value(&mut bytes).unwrap(), v);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Null);
        roundtrip_value(Value::Int(-42));
        roundtrip_value(Value::Float(2.75));
        roundtrip_value(Value::Text("héllo".into()));
        roundtrip_value(Value::Bytes(vec![0, 1, 2, 255]));
    }

    #[test]
    fn key_roundtrips() {
        for key in [
            RowKey::Int(7),
            RowKey::Pair(1, -2),
            RowKey::Text("user".into()),
        ] {
            let mut buf = BytesMut::new();
            encode_key(&mut buf, &key);
            let mut bytes = buf.freeze();
            assert_eq!(decode_key(&mut bytes).unwrap(), key);
        }
    }

    #[test]
    fn writeset_roundtrips() {
        let ws = WriteSet::from_items(vec![
            WriteItem::insert(
                TableId(1),
                5,
                vec![("a".into(), Value::Int(1)), ("b".into(), Value::Text("x".into()))],
            ),
            WriteItem::update(TableId(2), (3, 4), vec![("c".into(), Value::Float(0.5))]),
            WriteItem::delete(TableId(3), "key"),
        ]);
        let mut buf = BytesMut::new();
        encode_writeset(&mut buf, &ws);
        let mut bytes = buf.freeze();
        assert_eq!(decode_writeset(&mut bytes).unwrap(), ws);
    }

    #[test]
    fn row_roundtrips() {
        let row = Row::from_columns(vec![
            ("balance".into(), Value::Int(100)),
            ("filler".into(), Value::Bytes(vec![7; 20])),
        ]);
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &row);
        let mut bytes = buf.freeze();
        assert_eq!(decode_row(&mut bytes).unwrap(), row);
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &Value::Text("hello world".into()));
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            // Either an error, or (never) a wrong success.
            if let Ok(v) = decode_value(&mut partial) {
                panic!("decoded {v:?} from truncated buffer of {cut} bytes");
            }
        }
    }

    #[test]
    fn unknown_tags_are_corruption() {
        let mut bytes = Bytes::from_static(&[9u8]);
        assert!(matches!(
            decode_value(&mut bytes),
            Err(Error::Corruption(_))
        ));
        let mut bytes = Bytes::from_static(&[9u8]);
        assert!(decode_key(&mut bytes).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data = b"the quick brown fox";
        let c = checksum(data);
        let mut flipped = data.to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(c, checksum(&flipped));
        assert_eq!(c, checksum(data));
    }

    #[test]
    fn version_roundtrips() {
        let mut buf = BytesMut::new();
        encode_version(&mut buf, Version(123_456));
        let mut bytes = buf.freeze();
        assert_eq!(decode_version(&mut bytes).unwrap(), Version(123_456));
    }
}
