//! A snapshot-isolated, multi-version storage engine with write-ahead
//! logging, group commit, externally ordered commits and crash recovery.
//!
//! This crate is the PostgreSQL stand-in of the Tashkent reproduction.  The
//! replication protocol in the paper only relies on three properties of the
//! underlying database (Section 3):
//!
//! 1. it supports the snapshot-isolation concurrency-control model,
//! 2. it can capture and extract the writesets of update transactions, and
//! 3. synchronous writes to disk can be enabled or disabled.
//!
//! The engine here provides exactly these, plus the one extension the paper
//! adds for Tashkent-API: a commit that carries an explicit global sequence
//! number (`COMMIT <seq>`, see [`engine::TxHandle::commit_ordered`]), which
//! lets the middleware submit commits concurrently while the engine groups
//! the commit records into a single synchronous write and *announces* the
//! commits in the prescribed order.
//!
//! # Architecture
//!
//! * [`schema`] — table catalogue.
//! * [`row`] — multi-version row chains and snapshot visibility.
//! * [`disk`] — the simulated log device (configurable fsync latency, shared
//!   vs dedicated IO channel, crash semantics).
//! * [`wal`] — write-ahead log records, the group-commit writer and replay.
//! * [`locks`] — row-level write locks with wait-for-graph deadlock
//!   detection (PostgreSQL acquires write locks eagerly, which is what makes
//!   the local-vs-remote writeset deadlock of Section 8.2 possible).
//! * [`txn`] — per-transaction state: snapshot, write buffer, captured
//!   writeset.
//! * [`engine`] — the [`engine::Database`] façade: begin / read / write /
//!   commit / ordered commit / apply-writeset / dump / crash / recover.
//! * [`dump`] — full-database dumps used by Tashkent-MW replica recovery.
//! * [`checkpoint`] — sealed, versioned checkpoint images behind an atomic
//!   manifest pointer flip; the durable artifact watermark-driven log
//!   truncation restarts from.
//!
//! # Example
//!
//! ```
//! use tashkent_storage::{Database, EngineConfig};
//! use tashkent_common::Value;
//!
//! let db = Database::new(EngineConfig::default());
//! let accounts = db.create_table("accounts", &["balance"]);
//!
//! // Load one row.
//! let tx = db.begin();
//! tx.insert(accounts, 1, vec![("balance".into(), Value::Int(100))]).unwrap();
//! tx.commit().unwrap();
//!
//! // Update it in a second transaction and inspect the captured writeset.
//! let tx = db.begin();
//! let row = tx.read(accounts, 1).unwrap().unwrap();
//! let balance = row.get("balance").unwrap().as_int().unwrap();
//! tx.update(accounts, 1, vec![("balance".into(), Value::Int(balance - 10))]).unwrap();
//! let ws = tx.writeset();
//! assert_eq!(ws.len(), 1);
//! tx.commit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod disk;
pub mod dump;
pub mod engine;
pub mod locks;
pub mod row;
pub mod schema;
pub mod txn;
pub mod wal;

pub use checkpoint::{CheckpointStore, SealedCheckpoint};
pub use disk::{DiskStats, LogDevice, SimulatedDisk};
pub use dump::DatabaseDump;
pub use engine::{Database, EngineConfig, EngineStats, TxHandle};
pub use row::Row;
pub use schema::TableSchema;
pub use wal::{WalRecord, WalWriter};
