//! Write-ahead log with group commit.
//!
//! Every committing update transaction appends a [`WalRecord::Commit`] record
//! carrying its commit version and writeset.  Whether the commit then *waits*
//! for the record to become durable depends on the engine's
//! [`SyncMode`](tashkent_common::SyncMode):
//!
//! * `Durable` — the commit participates in **group commit**: it requests a
//!   flush, and whichever committer becomes the flusher syncs every record
//!   appended so far in a single `fsync`.  Committers whose records were
//!   covered by somebody else's flush do not issue their own.  This is the
//!   standard optimisation the paper's Section 3 describes for standalone
//!   databases, and the mechanism Tashkent-API re-enables for replicas.
//! * `NoSyncOnCommit` — the record is appended but the commit returns
//!   immediately; a later flush (checkpoint or another durable commit) will
//!   make it durable.  Physical integrity is preserved, durability is not.
//! * `Off` — as above, and recovery makes no attempt to use the log at all
//!   (Tashkent-MW relies on middleware dumps plus the certifier log instead).
//!
//! The same `WalWriter` type also backs the certifier's persistent log in
//! `tashkent-certifier`, which is how the certifier gets its "single writer
//! thread … batching all outstanding writesets to disk via a single fsync"
//! behaviour for free.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use tashkent_common::metrics::{CounterId, GaugeId};
use tashkent_common::{
    Component, Error, Event, EventKind, MetricsRegistry, Result, Version, WriteSet,
};

use crate::codec;
use crate::disk::{DiskStats, LogDevice};

/// One record of the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed update transaction: the version it created and its
    /// writeset (enough to redo the transaction on recovery).
    Commit {
        /// Version created by this commit.
        version: Version,
        /// Redo information.
        writeset: WriteSet,
    },
    /// A checkpoint marker: all effects up to and including `version` have
    /// been written to the data store / dump, so recovery may start here.
    Checkpoint {
        /// Version covered by the checkpoint.
        version: Version,
    },
}

impl WalRecord {
    /// The version this record refers to.
    #[must_use]
    pub fn version(&self) -> Version {
        match self {
            WalRecord::Commit { version, .. } | WalRecord::Checkpoint { version } => *version,
        }
    }

    /// Encodes the record as a length-prefixed, checksummed frame.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = BytesMut::new();
        match self {
            WalRecord::Commit { version, writeset } => {
                payload.put_u8(0);
                codec::encode_version(&mut payload, *version);
                codec::encode_writeset(&mut payload, writeset);
            }
            WalRecord::Checkpoint { version } => {
                payload.put_u8(1);
                codec::encode_version(&mut payload, *version);
            }
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&codec::checksum(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one frame from the front of `buf`, advancing it.
    ///
    /// Returns `Ok(None)` on a clean end of log and `Err` on corruption in
    /// the middle of the log.  A *truncated* trailing frame (torn write at
    /// the moment of a crash) is also reported as `Ok(None)`, because that is
    /// the expected state of the tail after a crash and recovery must simply
    /// stop there.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if a complete frame fails its checksum
    /// or contains an undecodable payload.
    pub fn decode_from(buf: &mut Bytes) -> Result<Option<WalRecord>> {
        if buf.remaining() == 0 {
            return Ok(None);
        }
        if buf.remaining() < 8 {
            // Torn frame header at the tail.
            return Ok(None);
        }
        let len = buf.get_u32() as usize;
        let expected_checksum = buf.get_u32();
        if buf.remaining() < len {
            // Torn payload at the tail.
            return Ok(None);
        }
        let payload = buf.split_to(len);
        if codec::checksum(&payload) != expected_checksum {
            return Err(Error::Corruption("wal frame checksum mismatch".into()));
        }
        let mut payload = payload;
        let kind = payload.get_u8();
        match kind {
            0 => {
                let version = codec::decode_version(&mut payload)?;
                let writeset = codec::decode_writeset(&mut payload)?;
                Ok(Some(WalRecord::Commit { version, writeset }))
            }
            1 => {
                let version = codec::decode_version(&mut payload)?;
                Ok(Some(WalRecord::Checkpoint { version }))
            }
            k => Err(Error::Corruption(format!("unknown wal record kind {k}"))),
        }
    }

    /// Decodes every complete record from a log image (e.g. the durable
    /// contents of a crashed device).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if a complete frame in the middle of the
    /// log is malformed.
    pub fn decode_all(log: &[u8]) -> Result<Vec<WalRecord>> {
        let mut buf = Bytes::copy_from_slice(log);
        let mut out = Vec::new();
        while let Some(record) = WalRecord::decode_from(&mut buf)? {
            out.push(record);
        }
        Ok(out)
    }
}

#[derive(Debug, Default)]
struct WalState {
    /// Bytes appended to the device so far (the next record's LSN).
    appended_lsn: u64,
    /// Bytes known durable.
    durable_lsn: u64,
    /// Records appended since the last flush (for group-size statistics).
    records_since_flush: u64,
    /// `true` while some thread is inside `fsync`.
    flush_in_progress: bool,
}

/// Group-commit log writer on top of a [`LogDevice`].
pub struct WalWriter {
    device: Arc<dyn LogDevice>,
    state: Mutex<WalState>,
    flushed: Condvar,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("WalWriter")
            .field("appended_lsn", &state.appended_lsn)
            .field("durable_lsn", &state.durable_lsn)
            .finish()
    }
}

impl WalWriter {
    /// Creates a writer on top of a log device.
    #[must_use]
    pub fn new(device: Arc<dyn LogDevice>) -> Self {
        WalWriter::with_metrics(device, Arc::new(MetricsRegistry::disabled()))
    }

    /// Creates a writer that reports fsync / record counts and group-commit
    /// batch sizes into a metrics registry.
    #[must_use]
    pub fn with_metrics(device: Arc<dyn LogDevice>, metrics: Arc<MetricsRegistry>) -> Self {
        WalWriter {
            device,
            state: Mutex::new(WalState::default()),
            flushed: Condvar::new(),
            metrics,
        }
    }

    /// Appends a record without waiting for durability.  Returns the LSN just
    /// past the record (the point that must become durable for the record to
    /// be safe).
    pub fn append(&self, record: &WalRecord) -> u64 {
        let frame = record.encode();
        let mut state = self.state.lock();
        // Appending under the state lock keeps the LSN bookkeeping and the
        // device contents consistent; the device append itself is an
        // in-memory buffer extension and therefore cheap.
        self.device.append(&frame);
        state.appended_lsn += frame.len() as u64;
        state.records_since_flush += 1;
        self.metrics.incr(CounterId::WalRecords);
        state.appended_lsn
    }

    /// Waits until everything appended up to `lsn` is durable, participating
    /// in group commit: if another thread's flush covers `lsn` this call
    /// simply waits for it; otherwise this thread performs one flush for all
    /// currently appended records.
    pub fn sync_to(&self, lsn: u64) {
        let mut state = self.state.lock();
        loop {
            if state.durable_lsn >= lsn {
                return;
            }
            if lsn > state.appended_lsn {
                // A concurrent truncation rewrote the log below our LSN.
                // Truncation flushes everything first and only removes
                // durable records, so the record behind this `lsn` is either
                // durable (and below the watermark) or retained in the
                // rewritten suffix — never lost.  Without this check the
                // flusher loop below could never reach a stale high `lsn`.
                return;
            }
            if state.flush_in_progress {
                // Somebody else is flushing; their flush may or may not cover
                // us — re-check after it completes.
                self.flushed.wait(&mut state);
                continue;
            }
            // Become the flusher for every record appended so far.
            state.flush_in_progress = true;
            let target = state.appended_lsn;
            let records = state.records_since_flush;
            state.records_since_flush = 0;
            drop(state);

            self.metrics.incr(CounterId::WalFsyncs);
            self.metrics
                .emit(Event::new(Component::Wal, EventKind::WalFsync));
            // Gauge value = size of the batch this fsync covers; the gauge's
            // high-water mark therefore tracks the largest group commit.
            self.metrics
                .gauge_set(GaugeId::WalGroupBatch, records as i64);
            self.device.fsync(records);

            state = self.state.lock();
            state.durable_lsn = state.durable_lsn.max(target);
            state.flush_in_progress = false;
            self.flushed.notify_all();
        }
    }

    /// Appends a record and waits for it to be durable (group committed).
    pub fn append_durable(&self, record: &WalRecord) -> u64 {
        let lsn = self.append(record);
        self.sync_to(lsn);
        lsn
    }

    /// Flushes everything appended so far (used by checkpoints and by
    /// `NoSyncOnCommit` background flushing).
    pub fn flush_all(&self) {
        let lsn = self.state.lock().appended_lsn;
        self.sync_to(lsn);
    }

    /// Durably removes every record with version at or below `watermark`,
    /// rewriting the log as the retained suffix.  Returns the number of
    /// records removed.
    ///
    /// Everything buffered is flushed first, so no record can be lost: a
    /// record is either retained (version above the watermark) or durable
    /// and covered by a sealed checkpoint at or above the watermark (the
    /// caller's contract).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the durable log cannot be decoded;
    /// nothing is rewritten in that case.
    pub fn truncate_below(&self, watermark: Version) -> Result<usize> {
        loop {
            self.flush_all();
            let mut state = self.state.lock();
            if state.appended_lsn != state.durable_lsn {
                // An append raced in between the flush and the lock; flush
                // again so the rewrite below covers the full log.
                drop(state);
                continue;
            }
            let records = WalRecord::decode_all(&self.device.durable_contents())?;
            let retained: Vec<&WalRecord> = records
                .iter()
                .filter(|r| r.version() > watermark)
                .collect();
            let dropped = records.len() - retained.len();
            if dropped == 0 {
                return Ok(0);
            }
            let mut image = Vec::new();
            for record in &retained {
                image.extend_from_slice(&record.encode());
            }
            let len = image.len() as u64;
            self.device.replace(image);
            state.appended_lsn = len;
            state.durable_lsn = len;
            state.records_since_flush = 0;
            return Ok(dropped);
        }
    }

    /// Durably rewrites the log to contain exactly `records`, in order.
    /// Used by certifier-node state transfer, which rebuilds a recovering
    /// node's log from a donor (or, after a total outage, from the union of
    /// the surviving logs and the shard checkpoint).
    pub fn rewrite(&self, records: &[WalRecord]) {
        let mut state = self.state.lock();
        let mut image = Vec::new();
        for record in records {
            image.extend_from_slice(&record.encode());
        }
        let len = image.len() as u64;
        self.device.replace(image);
        state.appended_lsn = len;
        state.durable_lsn = len;
        state.records_since_flush = 0;
    }

    /// The LSN up to which the log is known durable.
    #[must_use]
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().durable_lsn
    }

    /// Statistics of the underlying device.
    #[must_use]
    pub fn device_stats(&self) -> DiskStats {
        self.device.stats()
    }

    /// Reads back every record currently *durable* on the device.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Corruption`] from decoding.
    pub fn durable_records(&self) -> Result<Vec<WalRecord>> {
        WalRecord::decode_all(&self.device.durable_contents())
    }

    /// The underlying device (shared with the engine for crash simulation).
    #[must_use]
    pub fn device(&self) -> Arc<dyn LogDevice> {
        Arc::clone(&self.device)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;
    use std::thread;

    use tashkent_common::{TableId, Value, WriteItem};

    use super::*;
    use crate::disk::SimulatedDisk;

    fn commit_record(version: u64, key: i64) -> WalRecord {
        WalRecord::Commit {
            version: Version(version),
            writeset: WriteSet::from_items(vec![WriteItem::update(
                TableId(0),
                key,
                vec![("x".into(), Value::Int(key))],
            )]),
        }
    }

    #[test]
    fn record_roundtrip() {
        let records = vec![
            commit_record(1, 10),
            WalRecord::Checkpoint {
                version: Version(1),
            },
            commit_record(2, 20),
        ];
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&r.encode());
        }
        let decoded = WalRecord::decode_all(&log).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(decoded[0].version(), Version(1));
        assert_eq!(decoded[1].version(), Version(1));
    }

    #[test]
    fn torn_tail_is_silently_dropped() {
        let mut log = commit_record(1, 1).encode();
        let second = commit_record(2, 2).encode();
        log.extend_from_slice(&second[..second.len() / 2]);
        let decoded = WalRecord::decode_all(&log).unwrap();
        assert_eq!(decoded.len(), 1);
    }

    #[test]
    fn corrupt_frame_is_detected() {
        let mut log = commit_record(1, 1).encode();
        let len = log.len();
        log[len - 1] ^= 0xFF; // Flip a payload byte: checksum must fail.
        assert!(matches!(
            WalRecord::decode_all(&log),
            Err(Error::Corruption(_))
        ));
    }

    #[test]
    fn append_durable_persists_records() {
        let disk = Arc::new(SimulatedDisk::instant());
        let wal = WalWriter::new(disk.clone());
        wal.append_durable(&commit_record(1, 1));
        wal.append(&commit_record(2, 2));
        // Record 2 was appended but not synced: a crash loses it.
        disk.crash();
        let recovered = WalRecord::decode_all(&disk.durable_contents()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].version(), Version(1));
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        let disk = Arc::new(SimulatedDisk::new(crate::disk::DiskConfig {
            fsync_latency: std::time::Duration::from_millis(2),
            sleep: true,
            ..crate::disk::DiskConfig::default()
        }));
        let wal = Arc::new(WalWriter::new(disk.clone()));
        let threads: Vec<_> = (0..16)
            .map(|i| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || {
                    wal.append_durable(&commit_record(i + 1, i as i64));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = disk.stats();
        // All 16 records are durable…
        assert_eq!(stats.group_commit.records, 16);
        assert_eq!(wal.durable_records().unwrap().len(), 16);
        // …but group commit needed far fewer fsyncs than records.
        assert!(
            stats.fsyncs < 16,
            "expected grouping, got {} fsyncs",
            stats.fsyncs
        );
    }

    #[test]
    fn truncate_below_drops_only_covered_records() {
        let disk = Arc::new(SimulatedDisk::instant());
        let wal = WalWriter::new(disk.clone());
        for v in 1..=6 {
            wal.append(&commit_record(v, v as i64));
        }
        // Truncation flushes the buffered records before rewriting.
        let dropped = wal.truncate_below(Version(4)).unwrap();
        assert_eq!(dropped, 4);
        let survivors = wal.durable_records().unwrap();
        assert_eq!(survivors.len(), 2);
        assert_eq!(survivors[0].version(), Version(5));
        assert_eq!(survivors[1].version(), Version(6));
        // Appends keep working after the rewrite, and a stale high LSN from
        // before the truncation does not wedge the group-commit loop.
        wal.sync_to(u64::MAX / 2);
        let lsn = wal.append(&commit_record(7, 7));
        wal.sync_to(lsn);
        assert_eq!(wal.durable_records().unwrap().len(), 3);
        // Nothing at or below the watermark: a no-op.
        assert_eq!(wal.truncate_below(Version(4)).unwrap(), 0);
        // A watermark above everything empties the log.
        assert_eq!(wal.truncate_below(Version(10)).unwrap(), 3);
        assert!(wal.durable_records().unwrap().is_empty());
    }

    #[test]
    fn rewrite_replaces_the_log_exactly() {
        let disk = Arc::new(SimulatedDisk::instant());
        let wal = WalWriter::new(disk.clone());
        wal.append_durable(&commit_record(1, 1));
        let fresh = vec![commit_record(5, 5), commit_record(6, 6)];
        wal.rewrite(&fresh);
        assert_eq!(wal.durable_records().unwrap(), fresh);
        disk.crash();
        assert_eq!(wal.durable_records().unwrap(), fresh);
    }

    #[test]
    fn flush_all_covers_unsynced_records() {
        let disk = Arc::new(SimulatedDisk::instant());
        let wal = WalWriter::new(disk.clone());
        wal.append(&commit_record(1, 1));
        wal.append(&commit_record(2, 2));
        assert_eq!(wal.durable_records().unwrap().len(), 0);
        wal.flush_all();
        assert_eq!(wal.durable_records().unwrap().len(), 2);
        assert!(wal.durable_lsn() > 0);
    }
}
