//! Regression tests for the drain-tail stall.
//!
//! The historical signature (first seen as a rare relapse in 2-shard TPC-B
//! flight recordings): commits stop, the WAL keeps a ~1 Hz heartbeat of
//! fsyncs, and the cluster sits stalled for 15–60 s until one stuck
//! in-flight ordered commit resolves.
//!
//! Root cause: two *sequential* certified writesets that touch the same row
//! can be scheduled by different apply-pipeline rounds and race their row
//! locks.  When the later-ordered apply grabbed the row first, it parked in
//! its ordered-announce wait (holding the row) while the earlier-ordered
//! apply blocked on the row lock — a cycle through the announce chain that
//! the engine's wait-for-graph cannot see.  The earlier apply aborted after
//! the 1 s lock-wait as a presumed deadlock and was retried by the proxy
//! (the ~1 Hz heartbeat); the later one only gave way at its 5 s ordered
//! -commit timeout, and the retry could re-establish the same interleaving.
//!
//! The fix: remote applies record their announce-order index, the row-lock
//! arbitration wounds a later-ordered remote holder (it cannot commit first
//! anyway), and `apply_writeset_ordered` transparently retries the wounded
//! apply once its predecessor is through.  These tests replay the stalling
//! schedule deterministically and assert it now resolves in milliseconds,
//! with no presumed-deadlock aborts at all.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tashkent_common::{TableId, Value, Version, WriteItem, WriteSet};
use tashkent_storage::{Database, EngineConfig};

fn update(table: TableId, key: i64, value: i64) -> WriteSet {
    WriteSet::from_items(vec![WriteItem::update(
        table,
        key,
        vec![("x".into(), Value::Int(value))],
    )])
}

fn seeded_db() -> (Arc<Database>, TableId) {
    let db = Database::new(EngineConfig::default());
    let t = db.create_table("t", &["x"]);
    let tx = db.begin();
    tx.insert(t, 1, vec![("x".into(), Value::Int(0))]).unwrap();
    tx.commit().unwrap(); // version 1
    (Arc::new(db), t)
}

/// The exact two-apply interleaving of the stall: the later-ordered apply
/// (order 2) starts first and holds the contended row across its announce
/// wait; the earlier-ordered apply (order 1) then needs that row.  Before
/// the fix this took `lock_wait_timeout` (1 s) to fail the earlier apply as
/// a presumed deadlock and `ordered_commit_timeout` (5 s) to unstick the
/// later one; now the earlier apply wounds the later, commits, and the
/// later retries behind it.
#[test]
fn later_ordered_apply_yields_the_row_to_its_predecessor() {
    let (db, t) = seeded_db();
    let started = Instant::now();

    let later = {
        let db = Arc::clone(&db);
        thread::spawn(move || db.apply_writeset_ordered(&update(t, 1, 30), Version(3), 2))
    };
    // Let the later-ordered apply take the row lock and park in its
    // announce wait (all its steps are microsecond-scale; the sleep only
    // orders the two applies, it is not load-bearing for correctness —
    // if the earlier apply won the race the schedule is trivially fine).
    thread::sleep(Duration::from_millis(200));

    let earlier = db.apply_writeset_ordered(&update(t, 1, 20), Version(2), 1);
    assert_eq!(earlier.unwrap(), Version(2));
    assert_eq!(later.join().unwrap().unwrap(), Version(3));

    // The stall signature is gone: sub-second resolution (pre-fix this
    // schedule needed the 5 s ordered-commit timeout to break the cycle)
    // and zero presumed-deadlock aborts (pre-fix: one per 1 s retry beat).
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "drain-tail schedule took {:?}",
        started.elapsed()
    );
    assert_eq!(db.stats().deadlocks, 0);
    assert_eq!(db.version(), Version(3));
    // The announce order won: the row carries the later apply's image.
    let row = db.read_latest(t, 1).unwrap();
    assert_eq!(row.get("x"), Some(&Value::Int(30)));
}

/// A three-deep inversion: orders 3, 2, 1 all write the same row and start
/// in reverse announce order, so every apply initially holds a row its
/// predecessor needs.  Each predecessor must wound its successor, and each
/// wounded successor must retry and land — the whole chain drains without
/// a single presumed-deadlock abort.
#[test]
fn reversed_apply_chain_drains_without_deadlock_beats() {
    let (db, t) = seeded_db();
    let started = Instant::now();

    let mut handles = Vec::new();
    for order in (2..=3u64).rev() {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            db.apply_writeset_ordered(
                &update(t, 1, order as i64 * 10),
                Version(order + 1),
                order,
            )
        }));
        thread::sleep(Duration::from_millis(100));
    }
    let first = db.apply_writeset_ordered(&update(t, 1, 10), Version(2), 1);

    assert_eq!(first.unwrap(), Version(2));
    for handle in handles {
        assert!(handle.join().unwrap().is_ok());
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "reversed chain took {:?}",
        started.elapsed()
    );
    assert_eq!(db.stats().deadlocks, 0);
    assert_eq!(db.version(), Version(4));
    let row = db.read_latest(t, 1).unwrap();
    assert_eq!(row.get("x"), Some(&Value::Int(30)));
}

/// Earlier-ordered holders are NOT wounded: an apply that blocks on its
/// predecessor's row simply waits out the predecessor's (quick) announce.
/// Pins the asymmetry of the arbitration — wounding in both directions
/// would livelock the chain.
#[test]
fn earlier_ordered_holder_is_waited_out_not_wounded() {
    let (db, t) = seeded_db();

    // Order 1 starts first and holds the row briefly (it announces
    // immediately: announce_counter is 0, its turn).  Order 2 must wait,
    // not wound.
    let r1 = db.apply_writeset_ordered(&update(t, 1, 10), Version(2), 1);
    assert_eq!(r1.unwrap(), Version(2));
    let r2 = db.apply_writeset_ordered(&update(t, 1, 20), Version(3), 2);
    assert_eq!(r2.unwrap(), Version(3));
    assert_eq!(db.stats().deadlocks, 0);
    let row = db.read_latest(t, 1).unwrap();
    assert_eq!(row.get("x"), Some(&Value::Int(20)));
}
