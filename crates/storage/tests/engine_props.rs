//! Property-based tests for the storage engine's core invariants.
//!
//! * WAL records and dumps round-trip through their binary encodings.
//! * Recovery after a crash reproduces exactly the committed, durable state.
//! * Snapshot isolation: serial counter increments are never lost, and a
//!   transaction's reads are unaffected by concurrent commits.

use proptest::prelude::*;
use tashkent_common::{SyncMode, TableId, Value, Version, WriteItem, WriteSet};
use tashkent_storage::wal::WalRecord;
use tashkent_storage::{Database, DatabaseDump, EngineConfig};

fn arb_writeset() -> impl Strategy<Value = WriteSet> {
    prop::collection::vec((0u32..2, 0i64..40, -1000i64..1000), 1..6).prop_map(|items| {
        WriteSet::from_items(
            items
                .into_iter()
                .map(|(t, k, v)| {
                    WriteItem::update(TableId(t), k, vec![("x".to_string(), Value::Int(v))])
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_records_roundtrip(writesets in prop::collection::vec(arb_writeset(), 1..10)) {
        let mut log = Vec::new();
        let mut records = Vec::new();
        for (i, ws) in writesets.into_iter().enumerate() {
            let record = WalRecord::Commit { version: Version(i as u64 + 1), writeset: ws };
            log.extend_from_slice(&record.encode());
            records.push(record);
        }
        let decoded = WalRecord::decode_all(&log).unwrap();
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn recovery_reproduces_committed_state(values in prop::collection::vec((0i64..20, 0i64..1000), 1..30)) {
        // Apply a sequence of single-row upserts, crash, recover, and compare
        // the recovered contents with a shadow model of the committed state.
        let db = Database::new(EngineConfig::default());
        let t = db.create_table("t", &["x"]);
        let mut model = std::collections::HashMap::new();
        for (key, value) in &values {
            let tx = db.begin();
            tx.insert(t, *key, vec![("x".into(), Value::Int(*value))]).unwrap();
            tx.commit().unwrap();
            model.insert(*key, *value);
        }
        db.crash();
        let recovered = Database::recover(EngineConfig::default(), db.log_device(), &[("t", vec!["x"])]).unwrap();
        let t2 = recovered.table_id("t").unwrap();
        prop_assert_eq!(recovered.version(), Version(values.len() as u64));
        for (key, value) in model {
            let row = recovered.read_latest(t2, key).unwrap();
            prop_assert_eq!(row.get("x"), Some(&Value::Int(value)));
        }
    }

    #[test]
    fn unsynced_commits_are_lost_but_prefix_is_consistent(count in 1usize..20) {
        // With synchronous commits disabled, a crash may lose transactions,
        // but recovery must still produce a clean prefix (never a torn row).
        let db = Database::new(EngineConfig::with_sync_mode(SyncMode::Off));
        let t = db.create_table("t", &["x"]);
        for i in 0..count {
            let tx = db.begin();
            tx.insert(t, i as i64, vec![("x".into(), Value::Int(i as i64))]).unwrap();
            tx.commit().unwrap();
        }
        db.crash();
        let recovered = Database::recover(EngineConfig::default(), db.log_device(), &[("t", vec!["x"])]).unwrap();
        let recovered_version = recovered.version().value() as usize;
        prop_assert!(recovered_version <= count);
        let t2 = recovered.table_id("t").unwrap();
        // Every version up to the recovered one is present and intact.
        for i in 0..recovered_version {
            let row = recovered.read_latest(t2, i as i64).unwrap();
            prop_assert_eq!(row.get("x"), Some(&Value::Int(i as i64)));
        }
    }

    #[test]
    fn dumps_roundtrip(values in prop::collection::vec((0i64..50, -50i64..50), 0..40)) {
        let db = Database::new(EngineConfig::default());
        let t = db.create_table("t", &["x"]);
        for (key, value) in &values {
            let tx = db.begin();
            tx.insert(t, *key, vec![("x".into(), Value::Int(*value))]).unwrap();
            tx.commit().unwrap();
        }
        let dump = db.dump();
        let bytes = dump.to_bytes();
        let parsed = DatabaseDump::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&parsed, &dump);
        let restored = Database::restore_from_dump(EngineConfig::default(), &parsed);
        prop_assert_eq!(restored.version(), db.version());
        prop_assert_eq!(restored.row_count(restored.table_id("t").unwrap()), db.row_count(t));
    }

    #[test]
    fn concurrent_counter_increments_are_never_lost(threads in 2usize..5, per_thread in 1usize..15) {
        // Serializable-counter test: concurrent increments with retries must
        // sum exactly, demonstrating first-committer-wins prevents lost
        // updates.
        use std::sync::Arc;
        let db = Database::new(EngineConfig::default());
        let t = db.create_table("counter", &["n"]);
        let setup = db.begin();
        setup.insert(t, 0, vec![("n".into(), Value::Int(0))]).unwrap();
        setup.commit().unwrap();
        let db = Arc::new(db);
        let handles: Vec<_> = (0..threads).map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let tx = db.begin();
                        let current = match tx.read(t, 0) {
                            Ok(Some(row)) => row.get("n").unwrap().as_int().unwrap(),
                            _ => { tx.abort(); continue; }
                        };
                        if tx.update(t, 0, vec![("n".into(), Value::Int(current + 1))]).is_err() {
                            tx.abort();
                            continue;
                        }
                        if tx.commit().is_ok() {
                            break;
                        }
                    }
                }
            })
        }).collect();
        for h in handles {
            h.join().unwrap();
        }
        let final_value = db.read_latest(t, 0).unwrap().get("n").unwrap().as_int().unwrap();
        prop_assert_eq!(final_value as usize, threads * per_thread);
    }
}
