//! Dumps a captured diagnostic bundle (`*.tdb`) as human-readable text:
//! the verdict, the counter snapshot, per-replica progress, the tail of the
//! event journal and the recent commit-path traces.
//!
//! Usage: `cargo run -p tashkent --example dump_bundle -- <bundle.tdb>...`

use tashkent::DiagnosticBundle;
use tashkent_common::metrics::{CounterId, GaugeId, Stage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: dump_bundle <bundle.tdb>...");
        std::process::exit(2);
    }
    for path in &args {
        let bundle = match DiagnosticBundle::read_from(path.as_ref()) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{path}: {e}");
                continue;
            }
        };
        println!("==== {path} ====");
        println!("kind:   {}", bundle.kind);
        println!("detail: {}", bundle.detail);
        println!("progress: {:?}", bundle.progress);
        println!("elapsed: {:?}", bundle.snapshot.elapsed);
        println!("-- counters --");
        for id in CounterId::ALL {
            let value = bundle.snapshot.counter(id);
            if value != 0 {
                println!("  {:<28} {value}", id.label());
            }
        }
        println!("shard_commits: {:?}", bundle.snapshot.shard_commits);
        println!("-- gauges --");
        for id in GaugeId::ALL {
            let (value, high) = bundle.snapshot.gauge(id);
            if value != 0 || high != 0 {
                println!("  {:<28} {value} (high {high})", id.label());
            }
        }
        println!("-- stages (count/p50us/maxus) --");
        for id in Stage::ALL {
            let hist = bundle.snapshot.stage(id);
            if hist.count() > 0 {
                println!(
                    "  {:<12} {:>8} {:>10.0} {:>12.0}",
                    id.label(),
                    hist.count(),
                    hist.median().as_secs_f64() * 1e6,
                    hist.max().as_secs_f64() * 1e6,
                );
            }
        }
        let lw = &bundle.snapshot.lock_wait;
        if lw.count() > 0 {
            println!(
                "lock_wait: count {} p50 {:?} max {:?}",
                lw.count(),
                lw.median(),
                lw.max()
            );
        }
        println!("-- events ({}) tail --", bundle.events.len());
        for event in bundle.events.iter().rev().take(60).rev() {
            println!("  {event:?}");
        }
        println!("-- traces ({}) tail --", bundle.traces.len());
        for trace in bundle.traces.iter().rev().take(12).rev() {
            println!("  {trace:?}");
        }
        println!();
    }
}
