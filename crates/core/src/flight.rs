//! The flight recorder: periodic metrics sampling into a bounded ring.
//!
//! A [`FlightRecorder`] snapshots a [`MetricsRegistry`] on a fixed interval
//! from a background thread, keeping the most recent samples in a bounded
//! ring buffer.  Reading the ring back after an incident (or after a
//! benchmark run) gives a timeline of per-stage latency distributions,
//! counter rates and queue depths — which is how the TPC-B throughput
//! bimodality was tracked down to its stage (see ROADMAP).
//!
//! The recorder is deliberately kept out of `tashkent-common`: the data
//! plane there is thread- and IO-free, whereas the recorder owns a sampling
//! thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tashkent_common::{MetricsRegistry, MetricsSnapshot};

/// Default sampling interval: fine enough to resolve sub-second throughput
/// modes, coarse enough that sampling cost is noise.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(250);

/// Default ring capacity (at the default interval: ~4 minutes of history).
pub const DEFAULT_SAMPLE_CAPACITY: usize = 1024;

/// One timeline entry: when the sample was taken (relative to recorder
/// start) and the full registry snapshot at that instant.
#[derive(Debug, Clone)]
pub struct FlightSample {
    /// Time since the recorder started.
    pub at: Duration,
    /// The registry snapshot taken at that instant.
    pub snapshot: MetricsSnapshot,
}

struct RecorderShared {
    samples: Mutex<VecDeque<FlightSample>>,
    stop: AtomicBool,
}

/// A background sampler turning a [`MetricsRegistry`] into a bounded
/// timeline of [`FlightSample`]s.
///
/// Dropping the recorder stops and joins the sampling thread.
pub struct FlightRecorder {
    shared: Arc<RecorderShared>,
    handle: Option<thread::JoinHandle<()>>,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("samples", &self.shared.samples.lock().len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl FlightRecorder {
    /// Starts sampling `registry` every `interval` into a ring of at most
    /// `capacity` samples (oldest evicted first).
    #[must_use]
    pub fn start(
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        capacity: usize,
    ) -> Self {
        let capacity = capacity.max(1);
        let shared = Arc::new(RecorderShared {
            samples: Mutex::new(VecDeque::with_capacity(capacity)),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("flight-recorder".into())
            .spawn(move || {
                let started = Instant::now();
                // Wake at least every 10 ms so stop() never waits out a long
                // sampling interval.
                let tick = interval.min(Duration::from_millis(10)).max(Duration::from_millis(1));
                let mut next_sample = started + interval;
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    thread::sleep(tick);
                    if Instant::now() < next_sample {
                        continue;
                    }
                    next_sample += interval;
                    let sample = FlightSample {
                        at: started.elapsed(),
                        snapshot: registry.snapshot(),
                    };
                    let mut samples = thread_shared.samples.lock();
                    if samples.len() == capacity {
                        samples.pop_front();
                    }
                    samples.push_back(sample);
                }
            })
            .expect("spawning the flight-recorder thread");
        FlightRecorder {
            shared,
            handle: Some(handle),
            capacity,
        }
    }

    /// Starts sampling with the default interval and capacity.
    #[must_use]
    pub fn start_default(registry: Arc<MetricsRegistry>) -> Self {
        FlightRecorder::start(registry, DEFAULT_SAMPLE_INTERVAL, DEFAULT_SAMPLE_CAPACITY)
    }

    /// The timeline recorded so far, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<FlightSample> {
        self.shared.samples.lock().iter().cloned().collect()
    }

    /// Stops the sampling thread and returns the recorded timeline.
    #[must_use]
    pub fn stop(mut self) -> Vec<FlightSample> {
        self.stop_thread();
        self.shared.samples.lock().drain(..).collect()
    }

    fn stop_thread(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use tashkent_common::metrics::{CounterId, Stage};

    use super::*;

    #[test]
    fn recorder_samples_on_the_interval_and_stays_bounded() {
        let registry = Arc::new(MetricsRegistry::enabled());
        let recorder =
            FlightRecorder::start(Arc::clone(&registry), Duration::from_millis(5), 4);
        for i in 0..40u64 {
            registry.incr(CounterId::TxCommitted);
            registry.record_stage(Stage::Execute, Duration::from_micros(100 + i));
            std::thread::sleep(Duration::from_millis(2));
        }
        let samples = recorder.stop();
        assert!(!samples.is_empty(), "expected at least one sample");
        assert!(samples.len() <= 4, "ring exceeded capacity: {}", samples.len());
        // Samples are ordered and counters never regress along the timeline.
        for pair in samples.windows(2) {
            assert!(pair[0].at < pair[1].at);
            assert!(
                pair[0].snapshot.counter(CounterId::TxCommitted)
                    <= pair[1].snapshot.counter(CounterId::TxCommitted)
            );
        }
        let last = samples.last().unwrap();
        assert!(last.snapshot.counter(CounterId::TxCommitted) > 0);
        assert!(last.snapshot.stage(Stage::Execute).count() > 0);
    }

    #[test]
    fn dropping_a_recorder_stops_its_thread() {
        let registry = Arc::new(MetricsRegistry::enabled());
        let recorder =
            FlightRecorder::start(registry, Duration::from_millis(1), 16);
        std::thread::sleep(Duration::from_millis(10));
        drop(recorder); // must not hang
    }
}
