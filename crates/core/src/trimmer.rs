//! Watermark-driven checkpointing and log truncation.
//!
//! Without truncation the certifier's ordered log and every replica's WAL
//! grow without bound — fine for a benchmark run, fatal for a long-lived
//! cluster.  This module computes the cluster-wide **truncation watermark**
//! and advances it from a background [`Trimmer`] thread:
//!
//! ```text
//! watermark = min( every live replica's installed version,
//!                  every replica's newest sealed checkpoint,
//!                  the certifier's newest sealed checkpoint )
//! ```
//!
//! The first term keeps the log suffix every *live* replica still needs for
//! its bounded-staleness refresh.  The second term is the recovery
//! guarantee: a crashed replica restarts from its newest checkpoint image,
//! so the watermark may never pass a checkpoint any replica would have to
//! recover from — including replicas that are currently down.  The third
//! term guarantees the certifier itself can rebuild its trimmed prefix
//! from an image during incremental state transfer.
//!
//! Each layer additionally clamps to its *own* newest checkpoint when it
//! actually drops records ([`tashkent_certifier::Certifier::truncate_below`],
//! [`crate::ReplicaNode::truncate_wal_below`]), so the cluster-wide
//! watermark is a liveness optimisation, not the only line of defence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tashkent_common::metrics::{CounterId, GaugeId};
use tashkent_common::{MetricsRegistry, Result, Version};
use tashkent_proxy::CertifierHandle;

use crate::replica::ReplicaNode;

/// Default checkpoint-and-trim cadence of the background trimmer.
pub const DEFAULT_TRIM_INTERVAL: Duration = Duration::from_millis(25);

/// Seals a durable checkpoint on every live replica and on every certifier
/// shard, counting each sealed image in `CounterId::CheckpointsSealed`.
/// Crashed replicas are skipped — their newest earlier image keeps holding
/// the watermark back until they recover.  Returns the version stamped on
/// the certifier's images.
pub(crate) fn seal_checkpoints(
    certifier: &CertifierHandle,
    replicas: &[Arc<ReplicaNode>],
    metrics: &MetricsRegistry,
) -> Version {
    let mut sealed = 0u64;
    for replica in replicas {
        if !replica.is_crashed() {
            let _ = replica.seal_checkpoint();
            sealed += 1;
        }
    }
    let version = certifier.seal_checkpoint();
    sealed += certifier.shard_count() as u64;
    metrics.add(CounterId::CheckpointsSealed, sealed);
    version
}

/// The highest version the cluster may truncate up to (inclusive); see the
/// module docs for the rule.  [`Version::ZERO`] until every replica and the
/// certifier have sealed at least one checkpoint.
pub(crate) fn watermark(certifier: &CertifierHandle, replicas: &[Arc<ReplicaNode>]) -> Version {
    let mut watermark = Version(u64::MAX);
    for replica in replicas {
        // Every replica — up or down — must be able to restart from its
        // newest checkpoint and catch up from there.
        watermark = watermark.min(replica.checkpoint_version());
        if !replica.is_crashed() {
            // A live replica still fetches the suffix past its installed
            // version on every refresh.
            watermark = watermark.min(replica.version());
        }
    }
    watermark.min(certifier.checkpoint_version())
}

/// Truncates the certifier shard logs and every live replica's WAL below
/// the current watermark, updating the trim counters and the
/// `TruncationWatermark` gauge.  Returns `(certifier entries, WAL records)`
/// dropped.
pub(crate) fn trim(
    certifier: &CertifierHandle,
    replicas: &[Arc<ReplicaNode>],
    metrics: &MetricsRegistry,
) -> Result<(usize, usize)> {
    let watermark = watermark(certifier, replicas);
    if watermark.is_zero() {
        return Ok((0, 0));
    }
    let entries = certifier.truncate_below(watermark)?;
    let mut wal_records = 0usize;
    for replica in replicas {
        if !replica.is_crashed() {
            wal_records += replica.truncate_wal_below(watermark)?;
        }
    }
    if entries > 0 {
        metrics.add(CounterId::TrimmedLogEntries, entries as u64);
    }
    if wal_records > 0 {
        metrics.add(CounterId::TrimmedWalRecords, wal_records as u64);
    }
    metrics.gauge_set(
        GaugeId::TruncationWatermark,
        i64::try_from(watermark.0).unwrap_or(i64::MAX),
    );
    Ok((entries, wal_records))
}

/// A background thread that periodically seals checkpoints and advances the
/// truncation watermark over a cluster's replicas and certifier.
///
/// Dropping the trimmer stops and joins the thread.  Trim errors (a
/// certifier group rewrite failing mid-fault-schedule, say) are swallowed:
/// truncation is garbage collection, and the next cycle retries.
pub struct Trimmer {
    stop: Arc<AtomicBool>,
    cycles: Arc<AtomicU64>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Trimmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trimmer")
            .field("cycles", &self.cycles())
            .finish()
    }
}

impl Trimmer {
    /// Starts checkpointing and trimming every `interval`.
    #[must_use]
    pub fn start(
        certifier: CertifierHandle,
        replicas: Vec<Arc<ReplicaNode>>,
        metrics: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let cycles = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_cycles = Arc::clone(&cycles);
        let handle = thread::Builder::new()
            .name("truncation-trimmer".into())
            .spawn(move || {
                // Wake at least every 10 ms so stop() never waits out a long
                // trim interval.
                let tick = interval
                    .min(Duration::from_millis(10))
                    .max(Duration::from_millis(1));
                let mut next_cycle = Instant::now() + interval;
                while !thread_stop.load(Ordering::Relaxed) {
                    thread::sleep(tick);
                    if Instant::now() < next_cycle {
                        continue;
                    }
                    next_cycle = Instant::now() + interval;
                    seal_checkpoints(&certifier, &replicas, &metrics);
                    let _ = trim(&certifier, &replicas, &metrics);
                    thread_cycles.fetch_add(1, Ordering::Relaxed);
                }
            })
            .expect("spawn trimmer thread");
        Trimmer {
            stop,
            cycles,
            handle: Some(handle),
        }
    }

    /// Number of completed checkpoint-and-trim cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Stops the trimmer and joins its thread (also done on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Trimmer {
    fn drop(&mut self) {
        self.stop();
    }
}
