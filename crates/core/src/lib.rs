//! Tashkent: replicated snapshot-isolated databases that unite durability
//! with transaction ordering.
//!
//! This crate is the public API of the reproduction of *"Tashkent: Uniting
//! Durability with Transaction Ordering for High-Performance Scalable
//! Database Replication"* (EuroSys 2006).  It assembles the storage engine
//! ([`tashkent_storage`]), the certifier ([`tashkent_certifier`]) and the
//! transparent proxy ([`tashkent_proxy`]) into a running in-process cluster
//! of database replicas that clients talk to exactly as they would talk to a
//! single snapshot-isolated database.
//!
//! Three replication designs are available, selected by
//! [`SystemKind`]:
//!
//! * [`SystemKind::Base`] — ordering in the middleware, durability in the
//!   database, serial commits (the control system).
//! * [`SystemKind::TashkentMw`] — durability moved into the certifier's
//!   group-committed log; replica commits become in-memory operations.
//! * [`SystemKind::TashkentApi`] — durability stays in the database, which
//!   is handed the global commit order through the extended `COMMIT <seq>`
//!   API so it can group commit records while announcing commits in order.
//!
//! # Quick start
//!
//! ```
//! use tashkent::{Cluster, ClusterConfig, SystemKind, Value};
//!
//! // A two-replica Tashkent-MW cluster with an in-process certifier group.
//! let cluster = Cluster::new(ClusterConfig::small(SystemKind::TashkentMw)).unwrap();
//! let accounts = cluster.create_table("accounts", &["balance"]);
//!
//! // Write through replica 0.
//! let session = cluster.session(0);
//! let tx = session.begin();
//! tx.insert(accounts, 1, vec![("balance".into(), Value::Int(100))]).unwrap();
//! tx.commit().unwrap();
//!
//! // Read the same row through replica 1 after it synchronises.
//! cluster.sync_all().unwrap();
//! let session = cluster.session(1);
//! let tx = session.begin();
//! let row = tx.read(accounts, 1).unwrap().unwrap();
//! assert_eq!(row.get("balance"), Some(&Value::Int(100)));
//! tx.commit().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod cluster;
pub mod flight;
pub mod replica;
pub mod trimmer;
pub mod watchdog;

pub use bundle::DiagnosticBundle;
pub use cluster::{Cluster, ClusterStats};
pub use flight::{FlightRecorder, FlightSample};
pub use replica::ReplicaNode;
pub use trimmer::{Trimmer, DEFAULT_TRIM_INTERVAL};
pub use watchdog::{detect, AnomalyKind, FiredAnomaly, Verdict, Watchdog, WatchdogConfig};

pub use tashkent_certifier::{
    Certifier, CertifierConfig, CertifierNodeId, ShardedCertifier, ShardedCertifierConfig,
};
pub use tashkent_common::{
    chrome_trace_json, text_timeline, ClusterConfig, CommitPathTrace, Component, CounterId, Error,
    Event, EventKind, GaugeId, IoChannelMode, MetricsRegistry, MetricsSnapshot, ReplicaId, Result,
    RowKey, ShardId, ShardMap, Stage, SyncMode, SystemKind, TableId, TransportKind, Value,
    Version, WriteSet,
};
pub use tashkent_proxy::{CertifierHandle, CommitOutcome, Proxy, ProxyConfig, ProxyTransaction};
pub use tashkent_storage::{Database, EngineConfig, Row};
